//! Offline vendored subset of the `rand` crate API used by this workspace.
//!
//! The build environment has no network access, so the workspace ships the
//! small slice of `rand` it actually uses: a deterministic [`StdRng`]
//! seedable from a `u64`, the [`Rng`]/[`RngExt`] traits with a uniform
//! `random::<T>()` draw, and nothing else. [`StdRng`] is a fixed
//! xoshiro256** generator: the same seed always yields the same stream on
//! every platform, which is the property the simulator's bit-for-bit
//! determinism guarantee rests on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types drawable uniformly from an [`Rng`] via [`Rng::random`].
pub trait Uniform: Sized {
    /// Draws one value from `rng`'s uniform distribution for this type
    /// (`[0, 1)` for floats, the full range for integers).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Uniform for u64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Uniform for bool {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing random-number trait.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value (`[0, 1)` for floats).
    fn random<T: Uniform>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// Draws a uniform value in `[low, high)`.
    fn random_range(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.random::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension alias kept for drop-in compatibility with call sites that
/// import `rand::RngExt`; every method lives on [`Rng`] itself.
pub trait RngExt: Rng {}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard deterministic generator (xoshiro256**,
/// seeded through SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn generic_bounds_allow_unsized_receivers() {
        fn via_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = via_dynish(&mut rng);
        let _: bool = rng.random();
        let _: u32 = rng.random();
        let _: f32 = rng.random();
        let _: u64 = rng.random();
        let r = rng.random_range(2.0, 3.0);
        assert!((2.0..3.0).contains(&r));
    }
}
