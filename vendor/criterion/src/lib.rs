//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Provides the same bench-authoring surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`) with a plain wall-clock harness: per benchmark it
//! warms up, runs `sample_size` samples, and prints min/median/mean times.
//! Statistical analysis, plots and baseline comparison of real criterion
//! are intentionally out of scope.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Nanoseconds per iteration observed for each sample.
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running enough iterations per sample for a stable
    /// reading.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: find an iteration count taking ≥ ~5 ms, capped so a
        // slow routine still completes quickly.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / iters as f64);
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark (criterion's default is 100;
    /// this harness defaults to 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs `routine` as the benchmark `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnMut(&mut Bencher),
    ) {
        self.run(id.into(), routine);
    }

    /// Runs `routine` with an input value as the benchmark `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.into(), |b| routine(b, input));
    }

    fn run(&mut self, id: BenchmarkId, mut routine: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples_ns: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        let full = format!("{}/{}", self.name, id.id);
        report(self.criterion, &full, &mut b.samples_ns);
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}
}

fn report(criterion: &mut Criterion, name: &str, samples_ns: &mut [f64]) {
    if samples_ns.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let min = samples_ns[0];
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "{name:<48} min {:>12} | median {:>12} | mean {:>12}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
    criterion.results.push(BenchResult {
        name: name.to_string(),
        min_ns: min,
        median_ns: median,
        mean_ns: mean,
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// One finished benchmark's summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/function/parameter` id.
    pub name: String,
    /// Fastest sample (ns per iteration).
    pub min_ns: f64,
    /// Median sample (ns per iteration).
    pub median_ns: f64,
    /// Mean over all samples (ns per iteration).
    pub mean_ns: f64,
}

/// The top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Every result reported so far (drives machine-readable summaries).
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs `routine` as a stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group(id.to_string());
        // Avoid a doubled name: stand-alone benches report as `id/id`-free.
        group.name = String::new();
        let trimmed = id.trim_start_matches('/');
        group.bench_function(trimmed, &mut routine);
    }

    /// Kept for drop-in compatibility with generated mains.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Kept for drop-in compatibility with generated mains.
    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("times", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_collects_results() {
        let mut criterion = Criterion::default();
        bench_demo(&mut criterion);
        assert_eq!(criterion.results.len(), 2);
        assert!(criterion.results[0].name.starts_with("demo/"));
        assert!(criterion.results.iter().all(|r| r.min_ns > 0.0));
    }
}
