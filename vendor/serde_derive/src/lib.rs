//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Hand-parses the item definition from the raw [`proc_macro`] token stream
//! (no `syn`/`quote`, which are unavailable offline) and emits impls of the
//! vendored `serde::Serialize` / `serde::Deserialize` traits, which convert
//! through the concrete `serde::Value` JSON data model.
//!
//! Supported item shapes — exactly what this workspace derives on:
//! - named-field structs (unknown JSON keys are ignored, missing keys error
//!   unless the field type accepts `null`, so `Option` fields default to
//!   `None` like real serde);
//! - tuple structs: one field is "transparent" (newtype serializes as its
//!   inner value), several fields map to a JSON array;
//! - enums with unit variants only, mapped to the variant name as a string.
//!
//! Field attribute support: `#[serde(default = "path")]` — a missing key
//! calls `path()` instead of erroring.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier and the optional
/// `#[serde(default = "path")]` fallback.
struct Field {
    name: String,
    default_path: Option<String>,
}

/// The shapes of item this derive understands.
enum Item {
    Named { name: String, fields: Vec<Field> },
    Tuple { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Named { name, fields } => {
            let mut entries = String::new();
            for f in fields {
                entries.push_str(&format!(
                    "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})),",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Tuple { name, arity } => {
            let mut entries = String::new();
            for i in 0..*arity {
                entries.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Named { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                // Missing key: prefer the declared default; otherwise probe
                // with `null` so `Option` fields fall back to `None` (this
                // mirrors real serde's `missing_field` behaviour).
                let missing = match &f.default_path {
                    Some(path) => format!("{path}()"),
                    None => format!(
                        "match ::serde::Deserialize::from_value(&::serde::Value::Null) {{\n\
                             Ok(v) => v,\n\
                             Err(_) => return Err(::serde::Error::custom(\n\
                                 \"missing field `{0}` in {name}\")),\n\
                         }}",
                        f.name
                    ),
                };
                inits.push_str(&format!(
                    "{0}: match value.get(\"{0}\") {{\n\
                         Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                         None => {missing},\n\
                     }},",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Object(_) => Ok({name} {{ {inits} }}),\n\
                             other => Err(::serde::Error::custom(format!(\n\
                                 \"expected object for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Item::Tuple { name, arity } => {
            let mut inits = String::new();
            for i in 0..*arity {
                inits.push_str(&format!("::serde::Deserialize::from_value(&items[{i}])?,"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} =>\n\
                                 Ok({name}({inits})),\n\
                             other => Err(::serde::Error::custom(format!(\n\
                                 \"expected {arity}-element array for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             other => Err(::serde::Error::custom(format!(\n\
                                 \"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Deserialize): generated code failed to parse")
}

/// Parses the derive input down to the [`Item`] shapes we support.
///
/// Panics (a compile error at the derive site) on anything else — better a
/// loud failure than silently wrong (de)serialization.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility until the `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => i += 1,
            None => panic!("derive(serde): no struct or enum found in input"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(serde): expected item name, got {other:?}"),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Item::Named {
                    name,
                    fields: parse_named_fields(&body),
                }
            } else {
                Item::UnitEnum {
                    name,
                    variants: parse_unit_variants(&body),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(
                kind, "struct",
                "derive(serde): unexpected parenthesized enum body"
            );
            Item::Tuple {
                name,
                arity: count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            }
        }
        other => panic!(
            "derive(serde): unsupported body for `{name}` (unit structs \
             and generics are not supported): {other:?}"
        ),
    }
}

/// Parses `name: Type` fields (with optional attributes and visibility)
/// from the token list inside a struct's braces.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default_path = None;
        // Field attributes: doc comments and `#[serde(...)]`.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(attr)) = tokens.get(i + 1) {
                if let Some(path) =
                    parse_serde_default(&attr.stream().into_iter().collect::<Vec<_>>())
                {
                    default_path = Some(path);
                }
            }
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("derive(serde): expected field name, got {other:?}"),
        };
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "derive(serde): expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: scan to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default_path });
    }
    fields
}

/// Extracts `path` from attribute content `serde(default = "path")`;
/// `None` for any other attribute (e.g. doc comments).
fn parse_serde_default(tokens: &[TokenTree]) -> Option<String> {
    match tokens {
        [TokenTree::Ident(id), TokenTree::Group(args)] if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                    if key.to_string() == "default" && eq.as_char() == '=' =>
                {
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                other => panic!(
                    "derive(serde): only `default = \"path\"` is supported \
                     inside #[serde(...)], got {other:?}"
                ),
            }
        }
        _ => None,
    }
}

/// Counts comma-separated fields of a tuple struct body.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut arity = 0;
    let mut seen_any = false;
    let mut angle_depth = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                seen_any = false;
            }
            _ => seen_any = true,
        }
    }
    if seen_any {
        arity += 1;
    }
    assert!(
        arity > 0,
        "derive(serde): empty tuple struct is not supported"
    );
    arity
}

/// Parses unit variant names from an enum body; panics on data variants.
fn parse_unit_variants(tokens: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("derive(serde): expected enum variant, got {other:?}"),
        }
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            other => panic!("derive(serde): only unit enum variants are supported, got {other:?}"),
        }
    }
    variants
}
