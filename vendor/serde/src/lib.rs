//! Offline vendored subset of the `serde` API used by this workspace.
//!
//! Real serde abstracts over data formats with generic
//! `Serializer`/`Deserializer` traits; the only format this workspace uses
//! is JSON, so the vendored version collapses the data model to one
//! concrete [`Value`] tree. `#[derive(Serialize, Deserialize)]` (from the
//! sibling `serde_derive` crate, re-exported here) generates conversions
//! to and from [`Value`]; `serde_json` renders and parses the tree.
//!
//! Supported surface: named-field structs, tuple structs, unit-variant
//! enums, the `#[serde(default = "path")]` field attribute, and
//! `Serialize`/`Deserialize` impls for the primitive, `String`, `Option`
//! and `Vec` types the workspace's configuration structs contain.

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of serde's `de` module for the names downstream code imports.
pub mod de {
    /// In real serde `DeserializeOwned` distinguishes owned from borrowed
    /// deserialization; the vendored data model is always owned, so the
    /// bound is just [`Deserialize`](crate::Deserialize).
    pub use crate::Deserialize as DeserializeOwned;
}

/// The JSON-shaped data model all (de)serialization flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON numbers (stored as `f64`, like JavaScript).
    Number(f64),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Errors produced while mapping a [`Value`] onto a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types constructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! serde_number {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(*n as $ty),
                    other => Err(Error::custom(format!(
                        concat!("expected number for ", stringify!($ty), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

serde_number!(f64, f32, u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(f64::from_value(&(3.5f64).to_value()).unwrap(), 3.5);
        assert_eq!(u64::from_value(&(7u64).to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hi".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
        let v = vec![1.0f64, 2.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(f64::from_value(&Value::Bool(true)).is_err());
        assert!(String::from_value(&Value::Number(1.0)).is_err());
        assert!(Vec::<f64>::from_value(&Value::Null).is_err());
    }

    #[test]
    fn object_lookup_finds_keys() {
        let v = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(v.get("a"), Some(&Value::Number(1.0)));
        assert_eq!(v.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }
}
