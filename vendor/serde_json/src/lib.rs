//! Offline vendored JSON front-end for the vendored `serde`.
//!
//! Renders `serde::Value` trees to JSON text and parses JSON text back,
//! exposing the two entry points the workspace uses: [`to_string`] and
//! [`from_str`]. Numbers are written with Rust's shortest-roundtrip float
//! formatting, so every finite `f64` survives a round trip bit-exactly.

use serde::{Deserialize, Serialize, Value};

/// Error raised by JSON parsing or data-model mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite number, which JSON
/// cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, trailing garbage, or a JSON shape
/// that does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(Error::new(format!(
                    "cannot serialize non-finite number {n}"
                )));
            }
            // `{}` on f64 is the shortest decimal that parses back exactly.
            if *n == n.trunc() && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {} of JSON input",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {} of JSON input",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {} of JSON input",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error::new(format!("invalid number {text:?}: {e}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated JSON string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' in array, got {other:?}"
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' in object, got {other:?}"
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("idc \"east\"\n".into())),
            ("count".into(), Value::Number(42.0)),
            ("price".into(), Value::Number(-36.5781)),
            ("on".into(), Value::Bool(true)),
            ("limit".into(), Value::Null),
            (
                "hourly".into(),
                Value::Array(vec![Value::Number(1.5), Value::Number(2.25)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[
            36.5781,
            -28.8753,
            1e-300,
            123456789.000001,
            f64::MIN_POSITIVE,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "text was {text}");
        }
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
        assert!(from_str::<f64>("true").is_err());
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v: Value = from_str(" { \"a\" : [ 1 , \"x\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![
                Value::Number(1.0),
                Value::String("xA".into())
            ]))
        );
    }

    #[test]
    fn non_finite_numbers_refuse_to_serialize() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
