//! Offline vendored subset of the `proptest` API used by this workspace.
//!
//! Implements the slice of proptest the property tests rely on — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! [`Just`], range strategies, `prop::collection::vec` and the
//! `prop_assert*` macros — on top of a deterministic [`rand::StdRng`].
//! Each test case draws from a seed derived from the case index, so runs
//! are reproducible. Shrinking is not implemented: a failing case panics
//! with the drawn inputs included in the assertion message.

use rand::{Rng, SeedableRng};

/// Runtime configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to draw per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy draws.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut rand::StdRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Draws a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Redraws until `pred` accepts the value (up to an internal retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut rand::StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut rand::StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut rand::StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut rand::StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut rand::StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

macro_rules! float_range_strategy {
    ($ty:ty) => {
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut rand::StdRng) -> $ty {
                let u: f64 = rng.random();
                self.start + (self.end - self.start) * u as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut rand::StdRng) -> $ty {
                let u: f64 = rng.random();
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * u as $ty
            }
        }
    };
}

float_range_strategy!(f64);

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut rand::StdRng) -> $ty {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.random::<u64>() % span) as $ty
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut rand::StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;

    /// A count or count range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut rand::StdRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let n = if span <= 1 {
                self.size.lo
            } else {
                self.size.lo + (rand::Rng::random::<u64>(rng) % span as u64) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Draws `Vec`s of `size` elements of `element` (the count may be a
    /// fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace alias mirroring `proptest::prop`.
pub mod prop {
    pub use super::collection;
}

/// The per-test driver behind the [`proptest!`] macro.
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Draws `config.cases` values and runs `test` on each.
    pub fn run<S: Strategy>(&mut self, strategy: &S, mut test: impl FnMut(S::Value)) {
        for case in 0..self.config.cases {
            // Deterministic per-case seed: reruns reproduce failures.
            let mut rng = rand::StdRng::seed_from_u64(0x5EED_0000_0000_0000 | case as u64);
            let value = strategy.generate(&mut rng);
            test(value);
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                let mut runner = $crate::TestRunner::new(config);
                runner.run(&strategy, |($($pat,)+)| $body);
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_draw_within_bounds() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(
            &(-1.0f64..1.0, prop::collection::vec(0.5f64..5.0, 1..4)),
            |(x, v)| {
                assert!((-1.0..1.0).contains(&x));
                assert!(!v.is_empty() && v.len() < 4);
                assert!(v.iter().all(|e| (0.5..5.0).contains(e)));
            },
        );
    }

    #[test]
    fn combinators_compose() {
        let strat = (0.0f64..1.0)
            .prop_flat_map(|a| (Just(a), prop::collection::vec(0.0f64..a.max(1e-6), 3)));
        let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
        runner.run(&strat, |(a, v)| {
            assert_eq!(v.len(), 3);
            assert!(v.iter().all(|&e| e <= a.max(1e-6)));
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_single_arg(x in 0.0f64..10.0) {
            prop_assert!((0.0..10.0).contains(&x));
        }

        #[test]
        fn macro_tuple_pattern((a, b) in (0.0f64..1.0).prop_flat_map(|a| (Just(a), 0.0f64..1.0))) {
            prop_assert!(a < 1.0);
            prop_assert_eq!(b.is_nan(), false);
        }

        #[test]
        fn macro_mapped(v in prop::collection::vec(1.0f64..2.0, 4).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 4);
        }
    }
}
