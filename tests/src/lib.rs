//! Placeholder library target; the content of this package lives in its integration tests.
