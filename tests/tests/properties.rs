//! Property-based integration tests across the whole stack.

use idc_control::mpc::{MpcConfig, MpcController, MpcProblem};
use idc_control::reference::{optimal_reference, price_greedy_reference};
use idc_datacenter::idc::IdcConfig;
use idc_datacenter::server::ServerSpec;
use proptest::prelude::*;

/// Strategy: a small random fleet of 2–4 IDCs with sane parameters.
fn idcs_strategy() -> impl Strategy<Value = Vec<IdcConfig>> {
    prop::collection::vec(
        (10_000u64..50_000, 1.0f64..3.0).prop_map(|(m, mu)| {
            IdcConfig::new(
                "gen",
                m,
                ServerSpec::new(150.0, 285.0, mu).expect("valid range"),
                0.001,
            )
            .expect("valid range")
        }),
        2..=4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The eq. 46 LP optimum is never beaten by price-greedy filling, and
    /// both conserve workload and respect capacities, for random fleets,
    /// prices and loads.
    #[test]
    fn lp_dominates_greedy_on_random_instances(
        idcs in idcs_strategy(),
        prices_raw in prop::collection::vec(5.0f64..120.0, 4),
        load_frac in 0.2f64..0.9,
    ) {
        let n = idcs.len();
        let prices = &prices_raw[..n];
        let capacity: f64 = idcs.iter().map(|i| i.max_workload()).sum();
        let offered = [capacity * load_frac * 0.6, capacity * load_frac * 0.4];

        let lp = optimal_reference(&idcs, &offered, prices).unwrap();
        let greedy = price_greedy_reference(&idcs, &offered, prices).unwrap();
        prop_assert!(lp.cost_rate_per_hour() <= greedy.cost_rate_per_hour() + 1e-6);

        for sol in [&lp, &greedy] {
            let lam = sol.idc_workloads(2);
            let total: f64 = lam.iter().sum();
            prop_assert!((total - offered.iter().sum::<f64>()).abs() < 1e-6);
            for (j, idc) in idcs.iter().enumerate() {
                prop_assert!(lam[j] <= idc.max_workload() + 1e-6);
            }
            prop_assert!(sol.allocation().iter().all(|&v| v >= -1e-9));
        }
    }

    /// One MPC step from a random feasible interior point always conserves
    /// workload, keeps inputs non-negative and respects capacities.
    #[test]
    fn mpc_step_invariants_on_random_instances(
        split in 0.1f64..0.9,
        ref0 in 0.5f64..5.0,
        ref1 in 0.5f64..5.0,
        smoothing in 0.01f64..50.0,
    ) {
        let total = 20_000.0;
        let problem = MpcProblem {
            b1_mw: vec![67.5e-6, 108.0e-6],
            b0_mw: vec![150e-6, 150e-6],
            servers_on: vec![15_000, 20_000],
            capacities: vec![25_000.0, 24_000.0],
            prev_input: vec![total * split, total * (1.0 - split)],
            workload_forecast: vec![vec![total]; 3],
            power_reference_mw: vec![vec![ref0, ref1]; 5],
            tracking_multiplier: MpcProblem::uniform_tracking(2),
            storage: None,
        };
        let mut controller = MpcController::new(MpcConfig {
            smoothing_weight: smoothing,
            ..MpcConfig::default()
        });
        let plan = controller.plan(&problem).unwrap();
        let u = plan.next_input();
        prop_assert!((u.iter().sum::<f64>() - total).abs() < 1e-5);
        prop_assert!(u.iter().all(|&v| v >= 0.0));
        prop_assert!(u[0] <= 25_000.0 + 1e-5);
        prop_assert!(u[1] <= 24_000.0 + 1e-5);
    }

    /// Stronger smoothing never increases the size of the first move.
    #[test]
    fn smoothing_weight_is_monotone(step_gap in 1_000.0f64..15_000.0) {
        let total = 20_000.0;
        let mk = |smoothing: f64| {
            let problem = MpcProblem {
                b1_mw: vec![67.5e-6, 67.5e-6],
                b0_mw: vec![150e-6, 150e-6],
                servers_on: vec![20_000, 20_000],
                capacities: vec![30_000.0, 30_000.0],
                prev_input: vec![total, 0.0],
                workload_forecast: vec![vec![total]; 3],
                // Reference wants `step_gap` moved to IDC 1.
                power_reference_mw: vec![vec![
                    67.5e-6 * (total - step_gap) + 150e-6 * 20_000.0,
                    67.5e-6 * step_gap + 150e-6 * 20_000.0,
                ]; 5],
                tracking_multiplier: MpcProblem::uniform_tracking(2),
                storage: None,
            };
            let mut controller = MpcController::new(MpcConfig {
                smoothing_weight: smoothing,
                ..MpcConfig::default()
            });
            controller.plan(&problem).unwrap().next_input()[1]
        };
        let gentle = mk(100.0);
        let aggressive = mk(0.01);
        prop_assert!(gentle <= aggressive + 1e-6, "{gentle} vs {aggressive}");
    }
}
