//! Cross-crate consistency: the substrates must agree with each other at
//! their seams.

use idc_control::discretize::discretize;
use idc_control::reference::optimal_reference;
use idc_control::statespace::CostStateSpace;
use idc_core::config;
use idc_datacenter::allocation::Allocation;
use idc_datacenter::fleet::IdcFleet;
use idc_market::trace::prices_at_hour;

/// The discretized state-space cost (paper eq. 21) must agree with the
/// simulator-style trapezoid accounting when both integrate the same
/// constant power profile.
#[test]
fn state_space_energy_matches_direct_power_accounting() {
    let fleet = IdcFleet::paper_fleet();
    let prices = prices_at_hour(&config::paper_price_traces(), 6.0);
    let b1: Vec<f64> = fleet.idcs().iter().map(|i| i.server().b1() / 1e6).collect();
    let b0: Vec<f64> = fleet.idcs().iter().map(|i| i.server().b0() / 1e6).collect();
    let ss = CostStateSpace::new(&prices, &b1, &b0, fleet.num_portals()).unwrap();
    assert!(ss.is_controllable());

    let ts = 1.0 / 120.0; // 30 s in hours
    let model = discretize(&ss, ts).unwrap();

    // One portal sends 10 000 req/s to IDC 0; 5 000 servers ON there.
    let mut u = vec![0.0; fleet.num_portals() * fleet.num_idcs()];
    u[0] = 10_000.0;
    let v = [5_000.0, 0.0, 0.0];
    let mut x = vec![0.0; ss.state_dim()];
    let steps = 120; // one hour
    for _ in 0..steps {
        x = model.step(&x, &u, &v);
    }
    // Energy state E_1 after 1 h must equal P·1h.
    let p_mw = b1[0] * 10_000.0 + b0[0] * 5_000.0;
    assert!(
        (x[1] - p_mw).abs() < 1e-9,
        "state energy {} vs direct {}",
        x[1],
        p_mw
    );
    // And the direct power accounting through the fleet agrees.
    let mut alloc = Allocation::zeros(fleet.num_portals(), fleet.num_idcs());
    alloc.set(0, 0, 10_000.0);
    let fleet_p = fleet.per_idc_power_mw(&[5_000, 0, 0], &alloc)[0];
    assert!((fleet_p - p_mw).abs() < 1e-12);
}

/// The reference LP's allocation is feasible for the datacenter layer's
/// invariants: conservation, non-negativity, capacity.
#[test]
fn reference_solution_respects_datacenter_invariants() {
    let fleet = IdcFleet::paper_fleet();
    for hour in 0..24 {
        let prices = prices_at_hour(&config::paper_price_traces(), hour as f64);
        let sol = optimal_reference(fleet.idcs(), &fleet.offered_workloads(), &prices).unwrap();
        let alloc = Allocation::from_control_vector(
            fleet.num_portals(),
            fleet.num_idcs(),
            sol.allocation(),
        )
        .unwrap();
        assert!(alloc.is_nonnegative(1e-7), "hour {hour}");
        assert!(
            alloc.conserves_workload(&fleet.offered_workloads(), 1e-6),
            "hour {hour}"
        );
        let m = sol.servers_ceil(fleet.idcs());
        for (j, idc) in fleet.idcs().iter().enumerate() {
            assert!(
                idc.meets_latency_bound(m[j], alloc.idc_total(j)),
                "hour {hour}, IDC {j}: m={} λ={}",
                m[j],
                alloc.idc_total(j)
            );
        }
    }
}

/// Heterogeneous PUE shifts the reference optimum: with a punitive PUE,
/// the formerly cheapest region loses its workload.
#[test]
fn pue_shifts_the_reference_optimum() {
    let fleet = IdcFleet::paper_fleet();
    let prices = prices_at_hour(&config::paper_price_traces(), 6.0);
    let offered = fleet.offered_workloads();

    let base = optimal_reference(fleet.idcs(), &offered, &prices).unwrap();
    // Wisconsin is saturated at 6H under uniform PUE.
    assert!((base.idc_workloads(5)[2] - 34_000.0).abs() < 1.0);

    // Give Wisconsin a terrible cooling plant (PUE 2.5).
    let idcs: Vec<_> = fleet
        .idcs()
        .iter()
        .enumerate()
        .map(|(j, idc)| {
            if j == 2 {
                idc.clone().with_pue(2.5).expect("valid pue")
            } else {
                idc.clone()
            }
        })
        .collect();
    let cooled = optimal_reference(&idcs, &offered, &prices).unwrap();
    // Its effective cost per request now exceeds both others: abandoned.
    assert!(
        cooled.idc_workloads(5)[2] < 10_000.0,
        "{:?}",
        cooled.idc_workloads(5)
    );
    // And the reported power accounts for the facility overhead.
    assert!(cooled.cost_rate_per_hour() > base.cost_rate_per_hour());
}

/// The market tariff layer and the simulator agree on what a budget
/// violation is.
#[test]
fn tariff_clamp_matches_reference_clamp() {
    let fleet = IdcFleet::paper_fleet();
    let budgets = config::paper_power_budgets();
    let prices = prices_at_hour(&config::paper_price_traces(), 7.0);
    let sol = optimal_reference(fleet.idcs(), &fleet.offered_workloads(), &prices).unwrap();
    let clamped_a = sol.clamped_power_mw(budgets.as_slice());
    let clamped_b = budgets.clamp(sol.power_mw());
    assert_eq!(clamped_a, clamped_b);
}
