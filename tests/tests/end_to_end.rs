//! End-to-end integration: the full paper pipeline across every crate.

use idc_core::metrics::Comparison;
use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
use idc_core::scenario::{peak_shaving_scenario, smoothing_scenario, vicious_cycle_scenario};
use idc_core::simulation::Simulator;

/// The headline claim of the paper: same workload, same window, the MPC's
/// demand is drastically smoother than the optimal baseline's at a small
/// cost premium.
#[test]
fn figure_4_and_5_shape_holds() {
    let scenario = smoothing_scenario();
    let sim = Simulator::new();
    let mpc = sim
        .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
        .unwrap();
    let opt = sim
        .run(
            &scenario,
            &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
        )
        .unwrap();

    // Paper endpoints (Figs. 4/5): optimal runs 2.1375→5.7, 11.4→11.4,
    // 5.7→1.628775 MW; servers 7 500/40 000/20 000 → 20 000/40 000/5 715.
    let opt_first: Vec<f64> = (0..3).map(|j| opt.power_mw(j)[0]).collect();
    let opt_last: Vec<f64> = (0..3).map(|j| *opt.power_mw(j).last().unwrap()).collect();
    for (measured, paper) in opt_first.iter().zip(&[2.1375, 11.4, 5.7]) {
        assert!((measured - paper).abs() < 0.01, "{measured} vs {paper}");
    }
    for (measured, paper) in opt_last.iter().zip(&[5.7, 11.4, 1.628775]) {
        assert!((measured - paper).abs() < 0.01, "{measured} vs {paper}");
    }
    assert!(opt.servers(0).last().unwrap().abs_diff(20_000) <= 2);
    assert_eq!(*opt.servers(1).last().unwrap(), 40_000);
    assert!(opt.servers(2).last().unwrap().abs_diff(5_715) <= 2);

    // The MPC ends at (almost) the same operating point…
    for j in 0..3 {
        let mpc_end = *mpc.power_mw(j).last().unwrap();
        assert!(
            (mpc_end - opt_last[j]).abs() < 0.05,
            "IDC {j}: MPC end {mpc_end} vs optimal {}",
            opt_last[j]
        );
    }
    // …with a far smaller worst jump and a modest cost premium.
    let cmp = Comparison::between(&mpc, &opt).unwrap();
    assert!(cmp.jump_reduction_percent() > 70.0, "{cmp:?}");
    assert!(cmp.cost_overhead_percent() < 10.0, "{cmp:?}");
    assert!(
        cmp.cost_overhead_percent() > 0.0,
        "smoothing cannot be free"
    );
}

/// Peak shaving (Figs. 6/7): budget-violating IDCs are steered to their
/// budgets; Wisconsin lands between its budget and its optimal value.
#[test]
fn figure_6_and_7_shape_holds() {
    let scenario = peak_shaving_scenario();
    let budgets = scenario.budgets().unwrap().clone();
    let sim = Simulator::new();
    let mpc = sim
        .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
        .unwrap();
    let opt = sim
        .run(
            &scenario,
            &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
        )
        .unwrap();

    // The baseline ends in violation of MI and MN budgets.
    assert!(*opt.power_mw(0).last().unwrap() > budgets.budget_mw(0) + 0.5);
    assert!(*opt.power_mw(1).last().unwrap() > budgets.budget_mw(1) + 1.0);
    // The MPC ends at the budgets (small numeric slack).
    assert!(*mpc.power_mw(0).last().unwrap() <= budgets.budget_mw(0) + 0.01);
    assert!(*mpc.power_mw(1).last().unwrap() <= budgets.budget_mw(1) + 0.01);
    // Wisconsin absorbs the displaced load: between optimal and budget.
    let wi = *mpc.power_mw(2).last().unwrap();
    let wi_opt = *opt.power_mw(2).last().unwrap();
    assert!(wi > wi_opt && wi <= budgets.budget_mw(2) + 0.01, "WI {wi}");
    // All workload still served within latency bounds at the end.
    assert!(mpc.latency_ok_fraction() > 0.99);
}

/// The vicious cycle: with strong demand-responsive pricing the baseline's
/// worst power jump exceeds the MPC's by a wide margin.
#[test]
fn vicious_cycle_is_damped_by_mpc() {
    let scenario = vicious_cycle_scenario(4.0);
    let sim = Simulator::new();
    let mpc = sim
        .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
        .unwrap();
    let opt = sim
        .run(
            &scenario,
            &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
        )
        .unwrap();
    let worst = |r: &idc_core::simulation::SimulationResult| {
        (0..r.num_idcs())
            .map(|j| r.power_stats(j).unwrap().max_abs_step_mw)
            .fold(0.0f64, f64::max)
    };
    assert!(
        worst(&opt) > 3.0 * worst(&mpc),
        "{} vs {}",
        worst(&opt),
        worst(&mpc)
    );
}

/// A full diurnal day (hourly price changes + workload swings + noise):
/// the MPC serves everything within latency bounds, never triggers
/// admission control, and its worst power jump stays far below the
/// baseline's.
#[test]
fn diurnal_day_is_served_smoothly() {
    let scenario = idc_core::scenario::diurnal_day_scenario(2012);
    let sim = Simulator::new();
    let mpc = sim
        .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
        .unwrap();
    let opt = sim
        .run(
            &scenario,
            &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
        )
        .unwrap();
    assert!(mpc.latency_ok_fraction() > 0.999);
    assert_eq!(mpc.shed_fraction(), 0.0);
    let worst = |r: &idc_core::simulation::SimulationResult| {
        (0..r.num_idcs())
            .map(|j| r.power_stats(j).unwrap().max_abs_step_mw)
            .fold(0.0f64, f64::max)
    };
    assert!(
        worst(&mpc) < 0.35 * worst(&opt),
        "MPC {} vs optimal {}",
        worst(&mpc),
        worst(&opt)
    );
    // The cost premium for a whole day of smoothing stays small.
    let overhead = (mpc.total_cost() - opt.total_cost()) / opt.total_cost();
    assert!(overhead < 0.05, "overhead {overhead}");
}

/// Determinism: identical runs produce bit-identical trajectories.
#[test]
fn simulation_is_deterministic() {
    let scenario = smoothing_scenario();
    let sim = Simulator::new();
    let a = sim
        .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
        .unwrap();
    let b = sim
        .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
        .unwrap();
    assert_eq!(a, b);
}
