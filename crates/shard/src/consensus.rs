//! Consensus-ADMM coordinator state for the sharded MPC.
//!
//! The sharded solver splits the fleet QP into per-region subproblems that
//! are exact except for two coupling structures:
//!
//! 1. **cross-region workload conservation** — each portal's cumulative
//!    routed workload must sum to its forecast across *all* shards
//!    (`Σ_s A_s x_s = b`, one row per `(stage, portal)`), and
//! 2. **the global peak-power budget** — an optional eq. 31-style cap on the
//!    fleet's total predicted power per stage.
//!
//! Conservation is coordinated by **exchange ADMM** (Boyd et al. §7.3): each
//! shard `s` augments its objective with `(ρ/2)·‖A_s x_s − v_s‖²` where the
//! coordinator-issued target
//!
//! ```text
//! v_s = A_s x_s^k − w̄^k + b/S − u^k
//! ```
//!
//! nudges the shard's portal sums `w_s = A_s x_s` toward an equal share of
//! the residual, and the scaled dual `u` (the consensus multiplier,
//! `λ = ρ·u`) integrates the average infeasibility:
//!
//! ```text
//! u^{k+1} = u^k + w̄^{k+1} − b/S,      w̄ = (1/S)·Σ_s w_s.
//! ```
//!
//! With **over-relaxation** (Boyd et al. §3.4.3, `α ∈ (1, 2)`), the shard
//! sums entering the projection and dual update are replaced by
//! `ŵ_s = α·w_s + (1−α)·z_s`, where `z_s` is the previous projection
//! (`Σ_s z_s = b` by construction). Everything shard-dependent then factors
//! through one broadcast vector, the relaxed average gap
//! `g = α·(w̄ − b/S)`:
//!
//! ```text
//! u ← u + g,      z_s ← α·w_s + (1−α)·z_s − g,      v_s = z_s − u,
//! ```
//!
//! so each shard keeps `z_s` locally and the coordinator never touches
//! per-shard state. `α = 1` recovers the plain exchange update
//! (`z_s = w_s − w̄ + b/S`), and any fixed point satisfies `w̄ = b/S`
//! regardless of `α` — relaxation changes the path, not the answer.
//!
//! At a fixed point `w̄ = b/S` (conservation holds) and every shard's
//! stationarity condition carries the *same* multiplier `ρ·u` — exactly the
//! KKT multiplier of the monolithic conservation row, which is why warm
//! multipliers transfer across control steps just like warm active sets.
//!
//! The peak budget is coordinated by projected dual ascent
//! ([`PeakDual`]): `μ_t ← max(0, μ_t + κ·(P_t − cap))`, with `μ_t·∂P/∂x`
//! added to each shard's gradient. Both multiplier families are plain
//! `Vec<f64>` state that a controller persists and receding-horizon-shifts
//! ([`shift_horizon`]) between steps.
//!
//! Every reduction here is a sequential loop in fixed shard order, so the
//! coordinator is bitwise deterministic regardless of how many threads the
//! shard subproblems ran on.

/// Residuals of one coordinator round, in the units of the coupling rows.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Residuals {
    /// Primal conservation residual `‖Σ_s w_s − b‖_∞`.
    pub primal: f64,
    /// Consensus movement `‖w̄^{k+1} − w̄^k‖_∞` (the scaled dual residual is
    /// `ρ·S` times this; comparing the movement itself against the primal
    /// tolerance keeps both criteria in workload units).
    pub dual: f64,
}

/// Exchange-ADMM coordinator state for `rows` coupling rows over `shards`
/// shard contributions.
#[derive(Debug, Clone)]
pub struct ExchangeConsensus {
    rows: usize,
    shards: usize,
    rho: f64,
    /// Over-relaxation factor `α`; 1 is the plain exchange update.
    alpha: f64,
    /// Coupling targets `b` (one per row).
    target: Vec<f64>,
    /// Scaled dual `u`; the consensus multiplier is `ρ·u`.
    u: Vec<f64>,
    /// Current shard-average contribution `w̄`.
    wbar: Vec<f64>,
    /// Previous round's `w̄`, for the dual residual.
    wbar_prev: Vec<f64>,
    /// Relaxed average gap `g = α·(w̄ − b/S)` of the last update — the
    /// round's broadcast to the shards (`prime` seeds it with `α = 1`).
    gap: Vec<f64>,
}

impl ExchangeConsensus {
    /// Creates coordinator state with zero multipliers and targets.
    pub fn new(rows: usize, shards: usize, rho: f64) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(rho > 0.0, "penalty must be positive");
        ExchangeConsensus {
            rows,
            shards,
            rho,
            alpha: 1.0,
            target: vec![0.0; rows],
            u: vec![0.0; rows],
            wbar: vec![0.0; rows],
            wbar_prev: vec![0.0; rows],
            gap: vec![0.0; rows],
        }
    }

    /// Sets the over-relaxation factor `α`. Values in `(1, 2)` (typically
    /// 1.5–1.8) roughly halve the rounds to a fixed tolerance on problems
    /// whose slow directions are near-flat; `1` is the plain update.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < α < 2`.
    pub fn set_relaxation(&mut self, alpha: f64) {
        assert!(alpha > 0.0 && alpha < 2.0, "relaxation must be in (0, 2)");
        self.alpha = alpha;
    }

    /// Number of coupling rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The absolute ADMM penalty `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The scaled dual `u` (persist this across control steps).
    pub fn multipliers(&self) -> &[f64] {
        &self.u
    }

    /// Retunes the penalty to `rho_new`, preserving the *unscaled*
    /// consensus multipliers `λ = ρ·u` by rescaling the scaled dual with
    /// the old/new ratio. Residual-balancing penalty adaptation calls this
    /// whenever it changes ρ mid-solve, so the physical prices the shards
    /// see stay continuous across the retune.
    ///
    /// # Panics
    ///
    /// Panics if `rho_new` is not positive.
    pub fn rescale_rho(&mut self, rho_new: f64) {
        assert!(rho_new > 0.0, "penalty must be positive");
        let factor = self.rho / rho_new;
        for v in &mut self.u {
            *v *= factor;
        }
        self.rho = rho_new;
    }

    /// Starts a control step: installs the coupling targets `b` and the
    /// (possibly horizon-shifted, possibly zero) warm multipliers.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != rows` or `multipliers.len() != rows`.
    pub fn begin_step(&mut self, target: &[f64], multipliers: &[f64]) {
        assert_eq!(target.len(), self.rows, "target length");
        assert_eq!(multipliers.len(), self.rows, "multiplier length");
        self.target.copy_from_slice(target);
        self.u.copy_from_slice(multipliers);
        self.wbar.fill(0.0);
        self.wbar_prev.fill(0.0);
    }

    /// Installs the round-zero average `w̄` from the shards' initial
    /// (warm-start) contributions, in fixed shard order, and seeds the
    /// broadcast gap `g = w̄ − b/S` (`α = 1`: the shards' round-zero
    /// `z_s ← w_s − g` is then the plain exchange projection of the warm
    /// sums). No dual update and no residuals.
    pub fn prime(&mut self, shard_w: &[&[f64]]) {
        self.reduce_wbar(shard_w);
        self.wbar_prev.copy_from_slice(&self.wbar);
        let inv_s = 1.0 / self.shards as f64;
        for r in 0..self.rows {
            self.gap[r] = self.wbar[r] - self.target[r] * inv_s;
        }
    }

    /// Writes shard `s`'s penalty target `v_s = w_s − w̄ + b/S − u`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from `rows`.
    pub fn targets_into(&self, w_s: &[f64], v: &mut [f64]) {
        assert_eq!(w_s.len(), self.rows, "shard contribution length");
        assert_eq!(v.len(), self.rows, "target buffer length");
        let inv_s = 1.0 / self.shards as f64;
        for r in 0..self.rows {
            v[r] = w_s[r] - self.wbar[r] + self.target[r] * inv_s - self.u[r];
        }
    }

    /// The relaxed average gap `g = α·(w̄ − b/S)` of the last
    /// [`Self::advance`] (or `w̄ − b/S` right after [`Self::prime`]) — the
    /// per-round broadcast the shards fold into their local `z_s` update.
    pub fn gap(&self) -> &[f64] {
        &self.gap
    }

    /// One coordinator update after all shards re-solved: recomputes `w̄`
    /// in fixed shard order, stores the relaxed gap `g = α·(w̄ − b/S)`,
    /// advances the scaled dual `u ← u + g`, and reports the round's
    /// residuals.
    pub fn advance(&mut self, shard_w: &[&[f64]]) -> Residuals {
        self.wbar_prev.copy_from_slice(&self.wbar);
        self.reduce_wbar(shard_w);
        let s = self.shards as f64;
        let inv_s = 1.0 / s;
        let mut primal = 0.0f64;
        let mut dual = 0.0f64;
        for r in 0..self.rows {
            primal = primal.max((s * self.wbar[r] - self.target[r]).abs());
            dual = dual.max((self.wbar[r] - self.wbar_prev[r]).abs());
            self.gap[r] = self.alpha * (self.wbar[r] - self.target[r] * inv_s);
            self.u[r] += self.gap[r];
        }
        Residuals { primal, dual }
    }

    /// Sequential fixed-order reduction `w̄ = (1/S)·Σ_s w_s`.
    fn reduce_wbar(&mut self, shard_w: &[&[f64]]) {
        assert_eq!(shard_w.len(), self.shards, "one contribution per shard");
        self.wbar.fill(0.0);
        for w in shard_w {
            assert_eq!(w.len(), self.rows, "shard contribution length");
            for r in 0..self.rows {
                self.wbar[r] += w[r];
            }
        }
        let inv_s = 1.0 / self.shards as f64;
        for r in 0..self.rows {
            self.wbar[r] *= inv_s;
        }
    }
}

/// Projected dual ascent on a per-stage resource cap `P_t ≤ cap_t`.
///
/// The multiplier `μ_t ≥ 0` prices the cap; shards fold `μ_t·∂P_t/∂x` into
/// their gradients, and the coordinator ascends on the violation after each
/// round. With the caps inactive (`P_t < cap_t` and `μ = 0`) the coupling
/// vanishes and the sharded solution matches the uncapped monolithic one.
#[derive(Debug, Clone)]
pub struct PeakDual {
    /// Per-stage multipliers `μ_t ≥ 0`.
    mu: Vec<f64>,
    /// Per-stage caps.
    cap: Vec<f64>,
    /// Ascent step `κ`.
    step: f64,
}

impl PeakDual {
    /// Creates zero multipliers for the given per-stage caps and ascent step.
    pub fn new(cap: Vec<f64>, step: f64) -> Self {
        assert!(step > 0.0, "ascent step must be positive");
        PeakDual {
            mu: vec![0.0; cap.len()],
            cap,
            step,
        }
    }

    /// Current multipliers.
    pub fn multipliers(&self) -> &[f64] {
        &self.mu
    }

    /// Installs warm multipliers (clamped to `≥ 0`).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_multipliers(&mut self, mu: &[f64]) {
        assert_eq!(mu.len(), self.mu.len(), "multiplier length");
        for (dst, &m) in self.mu.iter_mut().zip(mu) {
            *dst = m.max(0.0);
        }
    }

    /// Retunes the ascent step. The multipliers are unscaled prices and
    /// survive unchanged; penalty adaptation keeps the step conditioned
    /// like the consensus penalty it was derived from.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn set_step(&mut self, step: f64) {
        assert!(step > 0.0, "ascent step must be positive");
        self.step = step;
    }

    /// One ascent step `μ_t ← max(0, μ_t + κ·(total_t − cap_t))`; returns
    /// the worst cap violation `max_t (total_t − cap_t)` (negative when
    /// every stage has headroom).
    pub fn ascend(&mut self, totals: &[f64]) -> f64 {
        assert_eq!(totals.len(), self.mu.len(), "stage totals length");
        let mut worst = f64::NEG_INFINITY;
        for t in 0..self.mu.len() {
            let violation = totals[t] - self.cap[t];
            worst = worst.max(violation);
            self.mu[t] = (self.mu[t] + self.step * violation).max(0.0);
        }
        worst
    }
}

/// Receding-horizon shift of per-stage multiplier state, in place: block
/// `t` takes block `t+1`'s value and the final block is repeated — the same
/// shift the controller applies to warm active sets, and for the same
/// reason (stage `t` of the new step covers the window stage `t+1` covered
/// last step).
///
/// `buf` is interpreted as `stages` consecutive blocks of `stage_len`
/// values.
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of a nonzero `stage_len`.
pub fn shift_horizon(buf: &mut [f64], stage_len: usize) {
    assert!(stage_len > 0, "zero stage length");
    assert!(
        buf.len().is_multiple_of(stage_len),
        "buffer is not whole stages"
    );
    let stages = buf.len() / stage_len;
    for t in 0..stages.saturating_sub(1) {
        buf.copy_within((t + 1) * stage_len..(t + 2) * stage_len, t * stage_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_has_zero_residuals() {
        // Two shards whose contributions already average to b/S: advancing
        // must report zero primal residual and leave u unchanged.
        let mut cons = ExchangeConsensus::new(2, 2, 1.0);
        cons.begin_step(&[4.0, 6.0], &[0.5, -0.25]);
        let w0 = [1.0, 2.0];
        let w1 = [3.0, 4.0];
        cons.prime(&[&w0, &w1]);
        let res = cons.advance(&[&w0, &w1]);
        assert!(res.primal.abs() < 1e-12);
        assert_eq!(cons.multipliers(), &[0.5, -0.25]);
    }

    #[test]
    fn dual_integrates_average_infeasibility() {
        let mut cons = ExchangeConsensus::new(1, 2, 1.0);
        cons.begin_step(&[10.0], &[0.0]);
        let w0 = [2.0];
        let w1 = [4.0];
        cons.prime(&[&w0, &w1]);
        let res = cons.advance(&[&w0, &w1]);
        // Σw − b = −4, w̄ − b/S = −2.
        assert!((res.primal - 4.0).abs() < 1e-12);
        assert!((cons.multipliers()[0] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn targets_split_the_residual_evenly() {
        let mut cons = ExchangeConsensus::new(1, 2, 1.0);
        cons.begin_step(&[10.0], &[0.0]);
        let w0 = [2.0];
        let w1 = [4.0];
        cons.prime(&[&w0, &w1]);
        let mut v = [0.0];
        cons.targets_into(&w0, &mut v);
        // v_0 = w_0 − w̄ + b/S − u = 2 − 3 + 5 − 0 = 4: shard 0 is asked to
        // grow its contribution by its share of the shortfall.
        assert!((v[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn primed_gap_reproduces_the_plain_target() {
        // Round zero's broadcast form (z = w − g, v = z − u) must equal
        // targets_into's per-shard output.
        let mut cons = ExchangeConsensus::new(1, 2, 1.0);
        cons.begin_step(&[10.0], &[0.25]);
        let w0 = [2.0];
        let w1 = [4.0];
        cons.prime(&[&w0, &w1]);
        let z = w0[0] - cons.gap()[0];
        let v_broadcast = z - cons.multipliers()[0];
        let mut v = [0.0];
        cons.targets_into(&w0, &mut v);
        assert!((v_broadcast - v[0]).abs() < 1e-12);
    }

    #[test]
    fn relaxation_scales_gap_and_dual_but_fixed_point_is_invariant() {
        let mut cons = ExchangeConsensus::new(1, 2, 1.0);
        cons.set_relaxation(1.6);
        cons.begin_step(&[10.0], &[0.0]);
        let w0 = [2.0];
        let w1 = [4.0];
        cons.prime(&[&w0, &w1]);
        cons.advance(&[&w0, &w1]);
        // w̄ − b/S = −2, so g = α·(−2) and u integrates g.
        assert!((cons.gap()[0] + 3.2).abs() < 1e-12);
        assert!((cons.multipliers()[0] + 3.2).abs() < 1e-12);
        // At a feasible average the gap vanishes for any α.
        let f0 = [4.0];
        let f1 = [6.0];
        let res = cons.advance(&[&f0, &f1]);
        assert!(res.primal.abs() < 1e-12);
        assert!(cons.gap()[0].abs() < 1e-12);
    }

    #[test]
    fn rescale_preserves_unscaled_multipliers() {
        // λ = ρ·u must be invariant: halving ρ doubles the scaled dual.
        let mut cons = ExchangeConsensus::new(2, 2, 4.0);
        cons.begin_step(&[1.0, 1.0], &[0.5, -0.25]);
        cons.rescale_rho(2.0);
        assert!((cons.rho() - 2.0).abs() < 1e-15);
        assert_eq!(cons.multipliers(), &[1.0, -0.5]);
        // And a shard's effective price ρ·u is unchanged.
        assert!((2.0_f64 * 1.0 - 4.0 * 0.5).abs() < 1e-15);
    }

    #[test]
    fn peak_dual_stays_nonnegative_and_prices_violations() {
        let mut peak = PeakDual::new(vec![5.0, 5.0], 0.5);
        let worst = peak.ascend(&[6.0, 3.0]);
        assert!((worst - 1.0).abs() < 1e-12);
        assert!((peak.multipliers()[0] - 0.5).abs() < 1e-12);
        // Headroom drives μ back toward (and never below) zero.
        assert_eq!(peak.multipliers()[1], 0.0);
        peak.ascend(&[3.0, 3.0]);
        assert_eq!(peak.multipliers()[1], 0.0);
    }

    #[test]
    fn shift_horizon_repeats_the_final_stage() {
        let mut buf = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        shift_horizon(&mut buf, 2);
        assert_eq!(buf, vec![3.0, 4.0, 5.0, 6.0, 5.0, 6.0]);
        let mut single = vec![7.0, 8.0];
        shift_horizon(&mut single, 2);
        assert_eq!(single, vec![7.0, 8.0]);
    }
}
