//! Deterministic scoped-thread execution of shard subproblems.
//!
//! A thin wrapper over [`idc_linalg::par::par_chunks_mut`] with a chunk size
//! of one: each shard cell is processed exactly once, shard-to-thread
//! assignment is a static contiguous partition, and each cell's output
//! depends only on its own state — so the result is bitwise independent of
//! `threads`, the property the sharded backend's reproducibility gates rely
//! on.

use idc_linalg::par::par_chunks_mut;

/// Runs `f(shard_index, cell)` for every cell, on up to `threads` scoped
/// threads, with a deterministic static shard-to-thread assignment.
pub fn run_shards<T, F>(cells: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    par_chunks_mut(cells, 1, threads, |idx, chunk| f(idx, &mut chunk[0]));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_runs_once_with_its_own_index() {
        for threads in [1, 2, 3, 8] {
            let mut cells: Vec<(usize, u32)> = (0..11).map(|i| (i, 0)).collect();
            run_shards(&mut cells, threads, |idx, cell| {
                assert_eq!(idx, cell.0);
                cell.1 += 1;
            });
            assert!(
                cells.iter().all(|&(_, hits)| hits == 1),
                "threads={threads}"
            );
        }
    }
}
