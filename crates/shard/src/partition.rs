//! Deterministic contiguous partitioning of the IDC fleet into shards.
//!
//! Shards are contiguous index ranges, computed by the same integer-division
//! split the scoped-thread helpers in [`idc_linalg::par`] use
//! (`lo = s·items/shards`). The split is a pure function of
//! `(items, shards)`, so every process — and every thread count — derives
//! the identical fleet → region assignment, which is what lets the sharded
//! solver promise bitwise-reproducible plans.
//!
//! Contiguity is not just a convenience: the condensed MPC Hessian in
//! cumulative-input space is block-diagonal across IDCs (tracking and
//! smoothing couple portals *within* one IDC only — see
//! `idc_control::riccati`), so a contiguous IDC range owns a contiguous
//! per-stage variable slice and its restricted Hessian is *exact*, not an
//! approximation. Only the workload-conservation and peak-budget rows couple
//! shards, and those are handled by the consensus coordinator.

/// A deterministic contiguous partition of `items` elements into shards.
///
/// The requested shard count is clamped to `[1, max(items, 1)]` so every
/// shard is non-empty whenever `items > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    items: usize,
    shards: usize,
}

impl Partition {
    /// Splits `items` elements into at most `shards` contiguous ranges.
    pub fn contiguous(items: usize, shards: usize) -> Self {
        Partition {
            items,
            shards: shards.clamp(1, items.max(1)),
        }
    }

    /// Number of shards actually used (after clamping).
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Number of partitioned elements.
    pub fn num_items(&self) -> usize {
        self.items
    }

    /// Half-open element range `[lo, hi)` owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_shards()`.
    pub fn range(&self, s: usize) -> (usize, usize) {
        assert!(s < self.shards, "shard {s} out of {}", self.shards);
        (
            s * self.items / self.shards,
            (s + 1) * self.items / self.shards,
        )
    }

    /// Number of elements owned by shard `s`.
    pub fn len(&self, s: usize) -> usize {
        let (lo, hi) = self.range(s);
        hi - lo
    }

    /// Whether the partition covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// The shard owning element `item` (inverse of [`range`](Self::range)).
    ///
    /// # Panics
    ///
    /// Panics if `item >= num_items()`.
    pub fn shard_of(&self, item: usize) -> usize {
        assert!(item < self.items, "item {item} out of {}", self.items);
        // Inverse of the floor split: item ∈ [⌊s·I/S⌋, ⌊(s+1)·I/S⌋) exactly
        // when s = ⌊((item+1)·S − 1)/I⌋.
        ((item + 1) * self.shards - 1) / self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_and_are_disjoint() {
        for items in [1usize, 2, 5, 7, 32, 64, 97] {
            for shards in [1usize, 2, 3, 5, 8, 200] {
                let p = Partition::contiguous(items, shards);
                let mut next = 0;
                for s in 0..p.num_shards() {
                    let (lo, hi) = p.range(s);
                    assert_eq!(lo, next, "items={items} shards={shards} s={s}");
                    assert!(hi > lo, "empty shard: items={items} shards={shards} s={s}");
                    next = hi;
                }
                assert_eq!(next, items);
            }
        }
    }

    #[test]
    fn shard_of_inverts_range() {
        for items in [1usize, 3, 10, 31, 64] {
            for shards in [1usize, 2, 4, 7, 64] {
                let p = Partition::contiguous(items, shards);
                for s in 0..p.num_shards() {
                    let (lo, hi) = p.range(s);
                    for item in lo..hi {
                        assert_eq!(
                            p.shard_of(item),
                            s,
                            "items={items} shards={shards} item={item}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(Partition::contiguous(4, 0).num_shards(), 1);
        assert_eq!(Partition::contiguous(4, 9).num_shards(), 4);
        assert_eq!(Partition::contiguous(0, 3).num_shards(), 1);
    }
}
