//! Regional decomposition of the fleet MPC (the "distributed" in
//! distributed Internet data centers).
//!
//! One monolithic QP over `N·C·β₂` variables cannot scale to a continental
//! fleet no matter how fast its factorization gets — but the condensed
//! Hessian is block-diagonal across IDCs, so the fleet splits into regional
//! shards whose subproblems are exact and independent except for two thin
//! coupling structures: cross-region workload conservation and the global
//! peak-power budget. This crate owns the decomposition machinery that is
//! independent of the control layer:
//!
//! * [`partition`] — the deterministic contiguous fleet partitioner,
//! * [`consensus`] — exchange-ADMM coordinator state for conservation plus
//!   projected dual ascent for the peak cap, with receding-horizon
//!   multiplier shifting for warm starts,
//! * [`runner`] — bitwise-deterministic scoped-thread execution of shard
//!   subproblems.
//!
//! The control-layer glue (restricted Hessians, per-shard warm starts, the
//! outer loop) lives in `idc_control::sharded`, which drives these pieces.

#![warn(missing_docs)]

pub mod consensus;
pub mod partition;
pub mod runner;

pub use consensus::{shift_horizon, ExchangeConsensus, PeakDual, Residuals};
pub use partition::Partition;
pub use runner::run_shards;

/// Outcome of one sharded solve's outer (coordinator) loop.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OuterStats {
    /// Coordinator rounds executed.
    pub rounds: u64,
    /// Final relative primal conservation residual.
    pub primal_residual: f64,
    /// Final relative consensus-movement (dual) residual.
    pub dual_residual: f64,
    /// Whether the residual stopping rule was met within the round budget.
    pub converged: bool,
    /// Coordinator rounds whose update was dropped (fault injection).
    pub stalled_rounds: u64,
    /// Penalty retunes applied by residual balancing this solve.
    pub rho_retunes: u64,
}
