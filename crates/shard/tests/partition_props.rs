//! Property tests: any deterministic contiguous partition preserves
//! per-portal workload conservation after reassembly.
//!
//! The sharded solver reduces per-shard portal sums `w_s = A_s x_s` in
//! fixed shard order and compares `Σ_s w_s` against the conservation
//! targets. These properties pin the two facts that makes that sound: the
//! partition is a disjoint cover (every IDC's contribution is counted
//! exactly once), and the reassembled per-portal sums match the monolithic
//! sums to floating-point accumulation accuracy.

use idc_shard::Partition;
use proptest::prelude::*;

proptest! {
    /// Reassembling per-shard portal sums recovers the global per-portal
    /// sums for every shard count.
    #[test]
    fn reassembly_preserves_per_portal_conservation(
        n in 1usize..24,
        c in 1usize..8,
        stages in 1usize..4,
        shards in 1usize..30,
        seed in 0u64..u64::MAX,
    ) {
        // Deterministic pseudo-random workload y[t, j, i] in [0, 1e4).
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 1e4
        };
        let nc = n * c;
        let y: Vec<f64> = (0..stages * nc).map(|_| next()).collect();

        // Monolithic per-(stage, portal) sums, IDCs in index order.
        let mut global = vec![0.0f64; stages * c];
        for t in 0..stages {
            for j in 0..n {
                for i in 0..c {
                    global[t * c + i] += y[t * nc + j * c + i];
                }
            }
        }

        let p = Partition::contiguous(n, shards);
        // Disjoint cover: each IDC owned by exactly the shard reported by
        // `shard_of`.
        let mut covered = vec![false; n];
        for s in 0..p.num_shards() {
            let (lo, hi) = p.range(s);
            for j in lo..hi {
                prop_assert!(!covered[j], "IDC {j} owned twice");
                covered[j] = true;
                prop_assert_eq!(p.shard_of(j), s);
            }
        }
        prop_assert!(covered.iter().all(|&v| v), "partition does not cover the fleet");

        // Per-shard portal sums, reassembled in fixed shard order.
        let mut reassembled = vec![0.0f64; stages * c];
        for s in 0..p.num_shards() {
            let (lo, hi) = p.range(s);
            let mut w = vec![0.0f64; stages * c];
            for t in 0..stages {
                for j in lo..hi {
                    for i in 0..c {
                        w[t * c + i] += y[t * nc + j * c + i];
                    }
                }
            }
            for r in 0..stages * c {
                reassembled[r] += w[r];
            }
        }

        for r in 0..stages * c {
            let scale = 1.0 + global[r].abs();
            prop_assert!(
                (reassembled[r] - global[r]).abs() <= 1e-9 * scale,
                "portal sum diverged at row {}: {} vs {}",
                r, reassembled[r], global[r]
            );
        }
    }

    /// The partition itself is a pure function of `(items, shards)`:
    /// recomputing it yields identical ranges (the determinism the
    /// cross-process reproducibility gates rely on).
    #[test]
    fn partition_is_deterministic(items in 0usize..200, shards in 0usize..64) {
        let a = Partition::contiguous(items, shards);
        let b = Partition::contiguous(items, shards);
        prop_assert_eq!(a.num_shards(), b.num_shards());
        for s in 0..a.num_shards() {
            prop_assert_eq!(a.range(s), b.range(s));
        }
    }
}
