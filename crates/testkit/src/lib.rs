//! Verification harness for the `idc-mpc` workspace.
//!
//! The paper's value proposition is *guarantees under constraints* —
//! workload conservation (eq. 9), M/M/n latency bounds (eq. 11) and the
//! peak-shaving power budget `P_rb` — so this crate checks exactly those,
//! on every closed-loop trajectory, independently of the production code
//! paths that produced it. Three layers:
//!
//! * [`invariants`] — pure functions over a recorded trajectory (run the
//!   simulator with [`idc_core::simulation::Simulator::with_validation`])
//!   asserting conservation, non-negativity of every `λij`, latency
//!   feasibility, budget compliance with a reported worst-step margin, and
//!   accumulated-cost consistency.
//! * [`oracle`] — small, deliberately naive dense solvers (textbook
//!   two-phase simplex, textbook primal active-set QP, plain Gaussian
//!   elimination; no caching, no warm starts, no shared code with
//!   `idc-opt`) that re-solve per-step problems captured from real runs
//!   and must agree with both production backends to 1e-8.
//! * [`faults`] — seeded, byte-reproducible [`faults::FaultPlan`]s that
//!   perturb scenarios (price spikes, hold-last-value dropouts, prediction
//!   error scaling, forced solver failures) and check the policy degrades
//!   gracefully: falls back, never panics, and either keeps the invariants
//!   or surfaces the violations in a [`invariants::Report`].
//! * [`equivalence`] — plain-slice trajectory comparators (bitwise and
//!   tolerance-based) reporting the first divergence, used by the online
//!   runtime's soak test to prove batch/online and restore equivalence.

#![warn(missing_docs)]

pub mod equivalence;
pub mod faults;
pub mod invariants;
pub mod oracle;
