//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a `(kind, seed)` pair that derives a perturbed
//! scenario — and, for solver faults, a perturbed policy tuning — from a
//! base scenario through a dedicated [`StdRng`] stream. The same plan
//! applied to the same base always yields byte-identical perturbations
//! and therefore byte-identical trajectories, which is what lets CI pin a
//! fault matrix: every cell must re-run to the same [`SimulationResult`],
//! never panic, and either keep the trajectory invariants or surface the
//! violations in a [`Report`].

use idc_control::mpc::SolverBackend;
use idc_core::policy::{MpcPolicy, MpcPolicyConfig};
use idc_core::scenario::{PricingSpec, Scenario};
use idc_core::simulation::{SimulationResult, Simulator};
use idc_core::Result;
use idc_market::fault::{FaultyTracePricing, PriceFault};
use idc_market::rtp::PricingModel;
use idc_storage::{paper_test_battery, StorageFleet};
use rand::{Rng, SeedableRng, StdRng};

use crate::invariants::{check_run, Report, Tolerances};

/// The kinds of disturbance a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A multiplicative price spike (3–8×) in one region for 1–4 hours.
    PriceSpike,
    /// A price-feed dropout in one region for 2–5 hours; the market layer
    /// holds the last pre-dropout value (hold-last-value semantics).
    PriceDropout,
    /// Scaled-up workload prediction error: the scenario's multiplicative
    /// noise std is amplified 2–4× under a derived noise seed.
    PredictionError,
    /// Forced inner-QP solve failures (as if the solver hit its iteration
    /// limit) at 2–4 derived steps; the policy must fall back gracefully.
    SolverFailure,
    /// Deterministic poisoning of the solver's incremental working-set
    /// factor at 2–4 derived steps: the solver must detect the drift and
    /// take its stability-rebuild path, with the plan unchanged (no
    /// fallback).
    ForcedRefactorization,
    /// A dropped coordination round in the sharded backend at 2–4 derived
    /// steps: the shards re-solve against stale consensus targets for one
    /// outer round (as if the coordinator's multiplier broadcast was lost)
    /// and must still converge — or degrade cleanly through the usual
    /// infeasibility fallback. The derived tuning switches the policy to
    /// [`idc_control::mpc::SolverBackend::Sharded`] so the fault has a
    /// coordinator to stall.
    CoordinatorStall,
    /// Burst feed arrivals exceeding a tenant's per-tick admission bound:
    /// on derived ticks the feed delivers a burst of duplicate
    /// observations, forcing the host's bounded ingest to shed the excess
    /// and bump its shed counters. This is a *runtime-layer* fault — it
    /// perturbs observation **delivery** to an online control loop, not
    /// the scenario or the policy, so [`FaultPlan::apply`] returns `None`
    /// and batch harnesses skip it; online hosts consume the derived
    /// [`FaultPlan::overload_params`] instead.
    TenantOverload,
    /// A battery/UPS outage: at 2–4 derived steps the storage actuator is
    /// unavailable and the policy must command zero rates (the gated QP
    /// caps collapse to zero) while the workload controller carries on. If
    /// the base scenario has no storage, a [`idc_storage::paper_test_battery`]
    /// fleet is attached first so the fault always has a battery to lose.
    BatteryOutage,
}

impl FaultKind {
    /// Every kind, in matrix order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::PriceSpike,
        FaultKind::PriceDropout,
        FaultKind::PredictionError,
        FaultKind::SolverFailure,
        FaultKind::ForcedRefactorization,
        FaultKind::CoordinatorStall,
        FaultKind::TenantOverload,
        FaultKind::BatteryOutage,
    ];

    /// Whether this kind perturbs the *online delivery layer* rather than
    /// the scenario/policy pair. Runtime-layer kinds cannot be expressed
    /// on a batch simulation ([`FaultPlan::apply`] returns `None`); batch
    /// fault matrices should skip them explicitly rather than treat the
    /// `None` as a misconfigured base.
    pub fn runtime_layer(&self) -> bool {
        matches!(self, FaultKind::TenantOverload)
    }

    /// Stable lowercase label (used in CI matrix output and parsing).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::PriceSpike => "price-spike",
            FaultKind::PriceDropout => "price-dropout",
            FaultKind::PredictionError => "prediction-error",
            FaultKind::SolverFailure => "solver-failure",
            FaultKind::ForcedRefactorization => "forced-refactorization",
            FaultKind::CoordinatorStall => "coordinator-stall",
            FaultKind::TenantOverload => "tenant-overload",
            FaultKind::BatteryOutage => "battery-outage",
        }
    }

    /// Inverse of [`FaultKind::label`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.label() == s)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Derived parameters of a [`FaultKind::TenantOverload`] plan, consumed
/// by an online host's feed layer: on roughly `burst_per_mille`/1000 of
/// ticks (drawn from a stream derived from `seed`) the feed delivers
/// `burst_factor` duplicate observations *after* the genuine arrivals,
/// and the host admits at most `ingest_bound` observations per feed per
/// tick. `burst_factor > ingest_bound` always, so every burst tick sheds
/// — and because the duplicates trail the genuine arrivals, a
/// prefix-keeping bounded ingest sheds *only* duplicates on fault-free
/// ticks, leaving the admitted trajectory byte-identical to the
/// unbursted run while the shed counters prove the overload happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OverloadParams {
    /// Seed of the burst-schedule stream (derived, not the plan seed).
    pub seed: u64,
    /// Per-mille probability that a tick bursts (200–400).
    pub burst_per_mille: u16,
    /// Duplicate observations appended on a burst tick; always exceeds
    /// `ingest_bound`.
    pub burst_factor: u16,
    /// Per-tick, per-feed admission bound the host should enforce (2–4).
    pub ingest_bound: usize,
}

/// A seeded, reproducible fault to apply to a base scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    kind: FaultKind,
    seed: u64,
}

/// Everything a fault run produces, for assertions and CI reporting.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// Name of the perturbed scenario.
    pub scenario: String,
    /// The closed-loop trajectory under the fault.
    pub result: SimulationResult,
    /// Invariant report over that trajectory.
    pub report: Report,
    /// Steps at which the MPC policy degraded to its fallback.
    pub fallback_steps: Vec<usize>,
}

impl FaultPlan {
    /// A plan injecting `kind` with all randomness derived from `seed`.
    pub fn new(kind: FaultKind, seed: u64) -> Self {
        FaultPlan { kind, seed }
    }

    /// The fault kind.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// The derivation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's derivation stream: seeded from the plan seed salted by
    /// kind, so e.g. spike/seed-7 and dropout/seed-7 do not share their
    /// region and window draws.
    fn stream(&self) -> StdRng {
        let salt = self.kind.label().bytes().fold(0u64, |h, b| {
            h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64)
        });
        StdRng::seed_from_u64(self.seed ^ salt)
    }

    /// Derives the burst/admission parameters of a
    /// [`FaultKind::TenantOverload`] plan. `None` for every other kind.
    /// Deterministic in the plan.
    pub fn overload_params(&self) -> Option<OverloadParams> {
        if self.kind != FaultKind::TenantOverload {
            return None;
        }
        let mut rng = self.stream();
        // Top 53 bits only: schedule seeds live in checkpoints, whose JSON
        // number space is f64 — a full-range u64 would not round-trip.
        let seed = rng.random::<u64>() >> 11;
        let burst_per_mille = 200 + (rng.random::<u64>() % 201) as u16;
        let ingest_bound = 2 + (rng.random::<u64>() % 3) as usize;
        // Always over the bound: every burst tick must shed.
        let burst_factor = ingest_bound as u16 + 4 + (rng.random::<u64>() % 5) as u16;
        Some(OverloadParams {
            seed,
            burst_per_mille,
            burst_factor,
            ingest_bound,
        })
    }

    /// Derives the perturbed `(scenario, policy tuning)` pair from `base`.
    ///
    /// Deterministic: the same plan and base always produce identical
    /// output. Returns `None` when the fault does not apply to the base
    /// (price faults need trace-driven pricing, solver faults need at
    /// least three steps, runtime-layer faults never apply — see
    /// [`FaultKind::runtime_layer`]).
    pub fn apply(&self, base: &Scenario) -> Option<(Scenario, MpcPolicyConfig)> {
        if self.kind.runtime_layer() {
            return None;
        }
        let mut rng = self.stream();
        let mut config = MpcPolicyConfig {
            budgets: base.budgets().cloned(),
            storage: base.storage().cloned(),
            demand_charge: base.demand_charge().copied(),
            ..MpcPolicyConfig::default()
        };
        let scenario = match self.kind {
            FaultKind::PriceSpike | FaultKind::PriceDropout => {
                let trace = base.pricing().base_trace()?.clone();
                let regions = trace.num_regions();
                if regions == 0 {
                    return None;
                }
                let region = (rng.random::<u64>() % regions as u64) as usize;
                // Anchor the fault inside the simulated span so it is
                // guaranteed to intersect the run — a window drawn over
                // the whole day would miss short scenarios almost always,
                // silently turning the fault into a no-op.
                let offset = rng.random_range(0.0, base.duration_hours());
                let start_hour = (base.start_hour() + offset).rem_euclid(24.0);
                let fault = match self.kind {
                    FaultKind::PriceSpike => PriceFault::Spike {
                        region,
                        start_hour,
                        duration_hours: rng.random_range(1.0, 4.0),
                        factor: rng.random_range(3.0, 8.0),
                    },
                    _ => PriceFault::Dropout {
                        region,
                        start_hour,
                        duration_hours: rng.random_range(2.0, 5.0),
                    },
                };
                let faulty = FaultyTracePricing::new(trace, vec![fault])?;
                base.clone()
                    .with_pricing(PricingSpec::FaultyTrace(faulty))?
                    .with_name(format!("{}+{}#{}", base.name(), self.kind, self.seed))
            }
            FaultKind::PredictionError => {
                let std = base.workload_noise_std().max(0.02) * rng.random_range(2.0, 4.0);
                let noise_seed = rng.random::<u64>();
                base.clone()
                    .with_workload_noise(std, noise_seed)
                    .with_name(format!("{}+{}#{}", base.name(), self.kind, self.seed))
            }
            FaultKind::SolverFailure
            | FaultKind::ForcedRefactorization
            | FaultKind::CoordinatorStall => {
                let steps = base.num_steps();
                if steps < 3 {
                    return None;
                }
                let count = 2 + (rng.random::<u64>() % 3) as usize;
                let mut drawn: Vec<usize> = Vec::with_capacity(count);
                while drawn.len() < count.min(steps - 1) {
                    let step = 1 + (rng.random::<u64>() % (steps as u64 - 1)) as usize;
                    if !drawn.contains(&step) {
                        drawn.push(step);
                    }
                }
                drawn.sort_unstable();
                match self.kind {
                    FaultKind::SolverFailure => config.forced_failure_steps = drawn,
                    FaultKind::ForcedRefactorization => config.forced_refactor_steps = drawn,
                    _ => {
                        // A stall needs a coordinator: run the sharded
                        // backend (2–4 derived shards) and drop an outer
                        // round at each drawn step.
                        let shards = 2 + (rng.random::<u64>() % 3) as usize;
                        config.mpc.backend = SolverBackend::sharded(shards);
                        config.forced_stall_steps = drawn;
                    }
                }
                base.clone()
                    .with_name(format!("{}+{}#{}", base.name(), self.kind, self.seed))
            }
            FaultKind::BatteryOutage => {
                let steps = base.num_steps();
                if steps < 3 {
                    return None;
                }
                // The fault needs a battery to lose: keep the base fleet,
                // or attach the paper test battery when the base has none.
                let scenario = if base.storage().is_some() {
                    base.clone()
                } else {
                    let fleet =
                        StorageFleet::uniform(base.fleet().num_idcs(), paper_test_battery())?;
                    base.clone().with_storage(fleet)?
                };
                config.storage = scenario.storage().cloned();
                let count = 2 + (rng.random::<u64>() % 3) as usize;
                let mut drawn: Vec<usize> = Vec::with_capacity(count);
                while drawn.len() < count.min(steps - 1) {
                    let step = 1 + (rng.random::<u64>() % (steps as u64 - 1)) as usize;
                    if !drawn.contains(&step) {
                        drawn.push(step);
                    }
                }
                drawn.sort_unstable();
                config.battery_outage_steps = drawn;
                scenario.with_name(format!("{}+{}#{}", base.name(), self.kind, self.seed))
            }
            // Handled by the runtime_layer early return above.
            FaultKind::TenantOverload => return None,
        };
        Some((scenario, config))
    }

    /// Applies the plan, runs the paper MPC policy through the validating
    /// simulator, and checks every trajectory invariant.
    ///
    /// # Errors
    ///
    /// Propagates simulator/policy construction failures. A fault the plan
    /// cannot express on this base (see [`FaultPlan::apply`]) is an
    /// [`idc_core::Error::Config`].
    pub fn run(&self, base: &Scenario) -> Result<FaultRun> {
        let (scenario, config) = self.apply(base).ok_or_else(|| {
            idc_core::Error::Config(format!(
                "fault {} does not apply to scenario '{}'",
                self.kind,
                base.name()
            ))
        })?;
        let mut policy = MpcPolicy::new(config)?;
        let result = Simulator::with_validation().run(&scenario, &mut policy)?;
        let report = check_run(&scenario, &result, &Tolerances::default());
        Ok(FaultRun {
            scenario: scenario.name().to_string(),
            result,
            report,
            fallback_steps: policy.fallback_steps().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idc_core::scenario::{smoothing_scenario, vicious_cycle_scenario};

    #[test]
    fn labels_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nonsense"), None);
    }

    #[test]
    fn apply_is_deterministic() {
        let base = smoothing_scenario();
        for kind in FaultKind::ALL {
            let plan = FaultPlan::new(kind, 11);
            if kind.runtime_layer() {
                // Delivery-layer faults have no batch expression; their
                // derived parameters must still be reproducible.
                assert!(plan.apply(&base).is_none());
                assert_eq!(plan.overload_params(), plan.overload_params());
                continue;
            }
            let a = plan.apply(&base).unwrap();
            let b = plan.apply(&base).unwrap();
            assert_eq!(a.0.name(), b.0.name());
            assert_eq!(a.1, b.1, "{kind}: derived configs differ");
        }
    }

    #[test]
    fn overload_params_are_in_range_and_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..50 {
            let params = FaultPlan::new(FaultKind::TenantOverload, seed)
                .overload_params()
                .unwrap();
            assert!((200..=400).contains(&params.burst_per_mille), "{params:?}");
            assert!((2..=4).contains(&params.ingest_bound), "{params:?}");
            // Every burst tick must overflow the bound.
            assert!(
                usize::from(params.burst_factor) > params.ingest_bound,
                "{params:?}"
            );
            seen.insert(params.seed);
        }
        // Burst schedules across plan seeds are (overwhelmingly) distinct.
        assert!(
            seen.len() > 45,
            "only {} distinct schedule seeds",
            seen.len()
        );
        // Non-overload plans derive nothing.
        assert!(FaultPlan::new(FaultKind::PriceSpike, 1)
            .overload_params()
            .is_none());
    }

    #[test]
    fn seeds_and_kinds_decorrelate() {
        let base = smoothing_scenario();
        let (_, c1) = FaultPlan::new(FaultKind::SolverFailure, 1)
            .apply(&base)
            .unwrap();
        let (_, c2) = FaultPlan::new(FaultKind::SolverFailure, 2)
            .apply(&base)
            .unwrap();
        assert_ne!(c1.forced_failure_steps, c2.forced_failure_steps);
    }

    #[test]
    fn price_faults_need_a_trace() {
        // Demand-responsive pricing has no underlying trace to perturb.
        let base = vicious_cycle_scenario(0.9);
        assert!(FaultPlan::new(FaultKind::PriceSpike, 3)
            .apply(&base)
            .is_none());
        assert!(FaultPlan::new(FaultKind::PriceDropout, 3)
            .apply(&base)
            .is_none());
        // But prediction error and solver failure still apply.
        assert!(FaultPlan::new(FaultKind::PredictionError, 3)
            .apply(&base)
            .is_some());
        assert!(FaultPlan::new(FaultKind::SolverFailure, 3)
            .apply(&base)
            .is_some());
    }

    #[test]
    fn forced_refactorization_derives_steps_without_failures() {
        let base = smoothing_scenario();
        for seed in 0..10 {
            let (_, config) = FaultPlan::new(FaultKind::ForcedRefactorization, seed)
                .apply(&base)
                .unwrap();
            assert!(config.forced_failure_steps.is_empty());
            let steps = &config.forced_refactor_steps;
            assert!((2..=4).contains(&steps.len()), "{steps:?}");
            assert!(steps.windows(2).all(|w| w[0] < w[1]), "{steps:?}");
            assert!(steps.iter().all(|&s| s >= 1 && s < base.num_steps()));
        }
    }

    #[test]
    fn forced_refactorization_run_never_falls_back() {
        let base = smoothing_scenario();
        let run = FaultPlan::new(FaultKind::ForcedRefactorization, 7)
            .run(&base)
            .unwrap();
        // The poison is absorbed by the solver's stability rebuild: the
        // plan must succeed at every step with no graceful degradation.
        assert!(
            run.fallback_steps.is_empty(),
            "fallbacks at {:?}",
            run.fallback_steps
        );
        assert!(run.report.hard_clean(), "{}", run.report.render());
    }

    #[test]
    fn coordinator_stall_switches_backend_and_derives_steps() {
        let base = smoothing_scenario();
        for seed in 0..10 {
            let (_, config) = FaultPlan::new(FaultKind::CoordinatorStall, seed)
                .apply(&base)
                .unwrap();
            assert!(config.forced_failure_steps.is_empty());
            assert!(config.forced_refactor_steps.is_empty());
            let steps = &config.forced_stall_steps;
            assert!((2..=4).contains(&steps.len()), "{steps:?}");
            assert!(steps.windows(2).all(|w| w[0] < w[1]), "{steps:?}");
            assert!(steps.iter().all(|&s| s >= 1 && s < base.num_steps()));
            match config.mpc.backend {
                SolverBackend::Sharded { shards, .. } => {
                    assert!((2..=4).contains(&shards), "shards {shards}")
                }
                other => panic!("expected sharded backend, got {other:?}"),
            }
        }
    }

    #[test]
    fn coordinator_stall_run_converges_and_reproduces() {
        let base = smoothing_scenario();
        let plan = FaultPlan::new(FaultKind::CoordinatorStall, 5);
        let run = plan.run(&base).unwrap();
        // The dropped round is absorbed by the remaining outer iterations:
        // the plan must converge with no graceful degradation, and the
        // trajectory invariants must hold.
        assert!(
            run.fallback_steps.is_empty(),
            "fallbacks at {:?}",
            run.fallback_steps
        );
        assert!(run.report.hard_clean(), "{}", run.report.render());
        // Byte-identical on a re-run (the stall is deterministic).
        let again = plan.run(&base).unwrap();
        assert_eq!(run.result, again.result);
    }

    #[test]
    fn battery_outage_attaches_fleet_and_idles_battery_at_drawn_steps() {
        let base = smoothing_scenario();
        assert!(base.storage().is_none());
        let plan = FaultPlan::new(FaultKind::BatteryOutage, 9);
        let (scenario, config) = plan.apply(&base).unwrap();
        // The derived scenario gains the paper test battery, and the
        // policy tuning matches it.
        assert!(scenario.storage().is_some());
        assert_eq!(config.storage, scenario.storage().cloned());
        let outages = config.battery_outage_steps.clone();
        assert!((2..=4).contains(&outages.len()), "{outages:?}");
        assert!(outages.windows(2).all(|w| w[0] < w[1]), "{outages:?}");

        let run = plan.run(&base).unwrap();
        assert!(run.report.hard_clean(), "{}", run.report.render());
        // At every outage step the battery must sit idle.
        for &k in &outages {
            for j in 0..scenario.fleet().num_idcs() {
                assert_eq!(run.result.battery_charge_mw(j).unwrap()[k], 0.0, "step {k}");
                assert_eq!(
                    run.result.battery_discharge_mw(j).unwrap()[k],
                    0.0,
                    "step {k}"
                );
            }
        }
        // Deterministic like every other kind.
        let again = plan.run(&base).unwrap();
        assert_eq!(run.result, again.result);
    }

    #[test]
    fn battery_outage_keeps_an_existing_fleet() {
        let base = idc_core::scenario::storage_plus_shifting_scenario(3);
        let (scenario, config) = FaultPlan::new(FaultKind::BatteryOutage, 4)
            .apply(&base)
            .unwrap();
        assert_eq!(scenario.storage(), base.storage());
        assert_eq!(config.storage, base.storage().cloned());
        assert_eq!(config.demand_charge, base.demand_charge().copied());
    }

    #[test]
    fn solver_failure_steps_are_distinct_sorted_in_range() {
        let base = smoothing_scenario();
        for seed in 0..20 {
            let (_, config) = FaultPlan::new(FaultKind::SolverFailure, seed)
                .apply(&base)
                .unwrap();
            let steps = &config.forced_failure_steps;
            assert!((2..=4).contains(&steps.len()), "{steps:?}");
            assert!(steps.windows(2).all(|w| w[0] < w[1]), "{steps:?}");
            assert!(steps.iter().all(|&s| s >= 1 && s < base.num_steps()));
        }
    }
}
