//! Trajectory-equivalence oracles: plain-slice comparators for checking
//! that two runs (e.g. the batch simulator and the online runtime, or an
//! uninterrupted run and a checkpoint-restored one) produced the same
//! trajectory, either bit-for-bit or to a tolerance.
//!
//! Comparators return a [`Mismatch`] describing the *first* divergence —
//! index, both values, and the bit distance for `f64` pairs — which is far
//! more actionable than a bare `assert_eq!` over million-element series.

use std::fmt;

/// The first divergence between two series.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Name of the series being compared.
    pub series: String,
    /// Index of the first diverging element.
    pub index: usize,
    /// Left value at the divergence, rendered exactly.
    pub left: String,
    /// Right value at the divergence, rendered exactly.
    pub right: String,
    /// Absolute difference for numeric series (`None` for length
    /// mismatches).
    pub abs_diff: Option<f64>,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} vs {}",
            self.series, self.index, self.left, self.right
        )?;
        if let Some(d) = self.abs_diff {
            write!(f, " (|Δ| = {d:e})")?;
        }
        Ok(())
    }
}

fn length_mismatch(series: &str, a: usize, b: usize) -> Mismatch {
    Mismatch {
        series: series.to_string(),
        index: a.min(b),
        left: format!("length {a}"),
        right: format!("length {b}"),
        abs_diff: None,
    }
}

/// Checks that two `f64` series are identical *bit for bit* (so `-0.0` vs
/// `0.0` or differently-quieted NaNs count as divergences). Returns the
/// first divergence, or `None` when equal.
pub fn bitwise_f64(series: &str, a: &[f64], b: &[f64]) -> Option<Mismatch> {
    if a.len() != b.len() {
        return Some(length_mismatch(series, a.len(), b.len()));
    }
    a.iter()
        .zip(b)
        .position(|(x, y)| x.to_bits() != y.to_bits())
        .map(|i| Mismatch {
            series: series.to_string(),
            index: i,
            left: format!("{:?} ({:#018x})", a[i], a[i].to_bits()),
            right: format!("{:?} ({:#018x})", b[i], b[i].to_bits()),
            abs_diff: Some((a[i] - b[i]).abs()),
        })
}

/// Checks that two `f64` series agree to an absolute tolerance. Returns
/// the first out-of-tolerance pair (non-finite values always diverge), or
/// `None` when the series agree.
pub fn within_tolerance_f64(series: &str, a: &[f64], b: &[f64], tol: f64) -> Option<Mismatch> {
    if a.len() != b.len() {
        return Some(length_mismatch(series, a.len(), b.len()));
    }
    a.iter()
        .zip(b)
        .position(|(x, y)| !((x - y).abs() <= tol) || !x.is_finite() || !y.is_finite())
        .map(|i| Mismatch {
            series: series.to_string(),
            index: i,
            left: format!("{:?}", a[i]),
            right: format!("{:?}", b[i]),
            abs_diff: Some((a[i] - b[i]).abs()),
        })
}

/// Checks that two integer series are identical. Returns the first
/// divergence, or `None` when equal.
pub fn exact_u64(series: &str, a: &[u64], b: &[u64]) -> Option<Mismatch> {
    if a.len() != b.len() {
        return Some(length_mismatch(series, a.len(), b.len()));
    }
    a.iter().zip(b).position(|(x, y)| x != y).map(|i| Mismatch {
        series: series.to_string(),
        index: i,
        left: a[i].to_string(),
        right: b[i].to_string(),
        abs_diff: Some((a[i] as f64 - b[i] as f64).abs()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwise_distinguishes_signed_zero() {
        assert_eq!(bitwise_f64("z", &[0.0, 1.0], &[0.0, 1.0]), None);
        let m = bitwise_f64("z", &[0.0], &[-0.0]).unwrap();
        assert_eq!(m.index, 0);
        assert_eq!(m.abs_diff, Some(0.0));
    }

    #[test]
    fn tolerance_comparator_accepts_small_and_rejects_large_gaps() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0 + 1e-12, 2.0, 3.0 + 1e-6];
        assert_eq!(within_tolerance_f64("t", &a, &b, 1e-5), None);
        let m = within_tolerance_f64("t", &a, &b, 1e-9).unwrap();
        assert_eq!(m.index, 2);
    }

    #[test]
    fn tolerance_comparator_rejects_non_finite() {
        let m = within_tolerance_f64("n", &[f64::NAN], &[f64::NAN], 1.0).unwrap();
        assert_eq!(m.index, 0);
    }

    #[test]
    fn length_and_integer_mismatches_are_reported() {
        let m = exact_u64("s", &[1, 2], &[1, 2, 3]).unwrap();
        assert!(m.to_string().contains("length"));
        let m = exact_u64("s", &[1, 2], &[1, 4]).unwrap();
        assert_eq!(m.index, 1);
        assert_eq!(m.abs_diff, Some(2.0));
    }
}
