//! Trajectory invariant checkers.
//!
//! All checks are pure functions of a [`Scenario`] and a recorded
//! [`SimulationResult`]; nothing here re-runs the policy. The full
//! allocation vectors and post-admission offered workloads are only
//! recorded by a *validating* simulator
//! ([`idc_core::simulation::Simulator::with_validation`]) — feeding a
//! non-validating result in yields a single
//! [`ViolationKind::MissingData`] violation rather than a panic.

use idc_core::scenario::Scenario;
use idc_core::simulation::SimulationResult;
use idc_core::LatencyStatus;

/// Explicit tolerances used by [`check_run`]. The defaults mirror the
/// production pipeline: conservation uses the simulator's own admission
/// tolerance, non-negativity the QP's feasibility tolerance scale, and the
/// cost check allows only accumulation-order rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Per-portal conservation: `|Σj λij − Li| ≤ tol · max(Li, 1)`
    /// (relative, matching `Allocation::conserves_workload`).
    pub conservation_rel: f64,
    /// Allocation non-negativity: `λij ≥ −tol` (req/s).
    pub negativity_req_s: f64,
    /// Budget compliance: `P_j ≤ P_rb_j + tol` (MW).
    pub budget_mw: f64,
    /// Accumulated-cost consistency: relative error of the recomputed
    /// cumulative cost at each step.
    pub cost_rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            conservation_rel: 1e-3,
            negativity_req_s: 1e-6,
            budget_mw: 1e-6,
            cost_rel: 1e-9,
        }
    }
}

/// What kind of invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Workload conservation (paper eq. 9): a portal's allocated shares do
    /// not sum to its offered workload.
    Conservation,
    /// A negative allocation share `λij` (paper eq. 10).
    Negativity,
    /// Latency above the bound `Dj` (paper eq. 11) at a step where the
    /// M/M/n model was feasible — or an overload that makes it infeasible.
    Latency,
    /// Power above the peak-shaving budget `P_rb` (paper Sec. IV-D).
    Budget,
    /// The recorded cumulative cost `C̄` drifts from the step-by-step
    /// recomputation `Σ price × power × Ts`.
    CostDrift,
    /// Battery state of charge outside `[0, capacity]` or a rate outside
    /// its cap (storage scenarios only).
    SocBounds,
    /// The recorded SoC trajectory drifts from the efficiency-weighted
    /// integral of its own recorded rates (storage scenarios only).
    BatteryConservation,
    /// The recorded demand-charge accrual drifts from the recomputation
    /// off the running billed peaks, or decreases (tariffed scenarios
    /// only).
    DemandChargeDrift,
    /// The result lacks validation extras (the run did not use a
    /// validating simulator).
    MissingData,
}

impl ViolationKind {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            ViolationKind::Conservation => "conservation",
            ViolationKind::Negativity => "negativity",
            ViolationKind::Latency => "latency",
            ViolationKind::Budget => "budget",
            ViolationKind::CostDrift => "cost-drift",
            ViolationKind::SocBounds => "soc-bounds",
            ViolationKind::BatteryConservation => "battery-conservation",
            ViolationKind::DemandChargeDrift => "demand-charge-drift",
            ViolationKind::MissingData => "missing-data",
        }
    }
}

/// One invariant violation at one trajectory point.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Step index within the run.
    pub step: usize,
    /// IDC index (or portal index for conservation), when applicable.
    pub index: Option<usize>,
    /// How far past the tolerance the trajectory went, in the invariant's
    /// natural unit (req/s, MW, relative cost error).
    pub magnitude: f64,
    /// Human-readable context.
    pub detail: String,
}

/// The outcome of checking one trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Name of the scenario checked.
    pub scenario: String,
    /// Name of the policy that produced the trajectory.
    pub policy: String,
    /// Number of individual checks evaluated.
    pub checks: usize,
    /// Every violation found, in trajectory order.
    pub violations: Vec<Violation>,
    /// The most binding per-step budget margin `P_rb_j − P_j` in MW with
    /// its `(step, idc)` location, when the scenario carries budgets.
    /// Negative margin = the budget was exceeded at that step.
    pub worst_budget_margin_mw: Option<(usize, usize, f64)>,
}

impl Report {
    /// `true` when no invariant of any kind was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when no *hard* invariant was violated. Budget violations are
    /// soft: the MPC's transient may legitimately overshoot `P_rb` for a
    /// few steps after a reference jump (paper Fig. 6 shows the same), so
    /// sweeps gate on the hard invariants and report budget margins.
    pub fn hard_clean(&self) -> bool {
        self.violations
            .iter()
            .all(|v| v.kind == ViolationKind::Budget)
    }

    /// The violations of one kind.
    pub fn of_kind(&self, kind: ViolationKind) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.kind == kind).collect()
    }

    /// Number of *hard* (non-budget) violations.
    pub fn hard_violations(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.kind != ViolationKind::Budget)
            .count()
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "invariants [{} / {}]: {} checks, {} violation(s)",
            self.scenario,
            self.policy,
            self.checks,
            self.violations.len()
        );
        if let Some((step, idc, margin)) = self.worst_budget_margin_mw {
            out.push_str(&format!(
                "\n  worst budget margin: {margin:+.4} MW (IDC {idc}, step {step})"
            ));
        }
        for v in self.violations.iter().take(10) {
            out.push_str(&format!(
                "\n  [{}] step {}, index {:?}: {} (magnitude {:.3e})",
                v.kind.label(),
                v.step,
                v.index,
                v.detail,
                v.magnitude
            ));
        }
        if self.violations.len() > 10 {
            out.push_str(&format!("\n  … and {} more", self.violations.len() - 10));
        }
        out
    }
}

/// Checks every trajectory invariant on one recorded run.
///
/// The trajectory must come from `scenario` via a *validating* simulator;
/// otherwise the report contains a single [`ViolationKind::MissingData`]
/// violation.
pub fn check_run(scenario: &Scenario, result: &SimulationResult, tol: &Tolerances) -> Report {
    let mut report = Report {
        scenario: result.scenario_name().to_string(),
        policy: result.policy_name().to_string(),
        checks: 0,
        violations: Vec::new(),
        worst_budget_margin_mw: None,
    };
    let (Some(offered), Some(allocations)) = (result.offered_workloads(), result.allocations())
    else {
        report.violations.push(Violation {
            kind: ViolationKind::MissingData,
            step: 0,
            index: None,
            magnitude: 0.0,
            detail: "run was not recorded by Simulator::with_validation()".into(),
        });
        return report;
    };

    let fleet = scenario.fleet();
    let idcs = fleet.idcs();
    let n = fleet.num_idcs();
    let steps = result.times_min().len();
    let ts = result.ts_hours();

    // ---- Conservation (eq. 9) and non-negativity (eq. 10), per step. ----
    for (k, (load, alloc)) in offered.iter().zip(allocations).enumerate() {
        let c = load.len();
        for (i, &li) in load.iter().enumerate() {
            let served: f64 = (0..n).map(|j| alloc[j * c + i]).sum();
            report.checks += 1;
            let err = (served - li).abs();
            if err > tol.conservation_rel * li.max(1.0) {
                report.violations.push(Violation {
                    kind: ViolationKind::Conservation,
                    step: k,
                    index: Some(i),
                    magnitude: err,
                    detail: format!("portal {i}: served {served:.3} of offered {li:.3} req/s"),
                });
            }
        }
        for (idx, &share) in alloc.iter().enumerate() {
            report.checks += 1;
            if share < -tol.negativity_req_s {
                report.violations.push(Violation {
                    kind: ViolationKind::Negativity,
                    step: k,
                    index: Some(idx / c),
                    magnitude: -share,
                    detail: format!("λ[idc {}, portal {}] = {share:.6} req/s", idx / c, idx % c),
                });
            }
        }
    }

    // ---- Latency (eq. 11): whenever the deployed servers keep the M/M/n
    // model feasible, the latency bound must hold; an allocation past the
    // feasible capacity is surfaced too (its latency is unbounded). ----
    for (j, idc) in idcs.iter().enumerate() {
        let lam_series = result.workload(j);
        let m_series = result.servers(j);
        for k in 0..steps {
            let lam = lam_series[k];
            let m = m_series[k];
            report.checks += 1;
            match idc.latency_status(m, lam) {
                LatencyStatus::WithinBound => {}
                LatencyStatus::BoundExceeded => {
                    report.violations.push(Violation {
                        kind: ViolationKind::Latency,
                        step: k,
                        index: Some(j),
                        magnitude: idc.latency(m, lam) - idc.latency_bound(),
                        detail: format!(
                            "latency bound exceeded with {m} servers at {lam:.1} req/s"
                        ),
                    });
                }
                LatencyStatus::Unstable => {
                    report.violations.push(Violation {
                        kind: ViolationKind::Latency,
                        step: k,
                        index: Some(j),
                        magnitude: lam - m as f64 * idc.service_rate(),
                        detail: format!(
                            "overloaded past M/M/n stability: {lam:.1} req/s on {m} servers"
                        ),
                    });
                }
            }
        }
    }

    // ---- Budget compliance (Sec. IV-D), with the worst-step margin. ----
    if let Some(budgets) = scenario.budgets() {
        let mut worst: Option<(usize, usize, f64)> = None;
        for j in 0..n {
            let budget = budgets.budget_mw(j);
            for (k, &p) in result.power_mw(j).iter().enumerate() {
                report.checks += 1;
                let margin = budget - p;
                if worst.is_none_or(|(_, _, m)| margin < m) {
                    worst = Some((k, j, margin));
                }
                if p > budget + tol.budget_mw {
                    report.violations.push(Violation {
                        kind: ViolationKind::Budget,
                        step: k,
                        index: Some(j),
                        magnitude: p - budget,
                        detail: format!("power {p:.4} MW over budget {budget:.4} MW"),
                    });
                }
            }
        }
        report.worst_budget_margin_mw = worst;
    }

    // ---- Accumulated-cost consistency: C̄ vs Σ price × power × Ts. ----
    let mut recomputed = 0.0;
    for k in 0..steps {
        let prices = &result.prices()[k];
        recomputed += (0..n)
            .map(|j| result.power_mw(j)[k] * prices[j] * ts)
            .sum::<f64>();
        report.checks += 1;
        let recorded = result.cost_cumulative()[k];
        let err = (recorded - recomputed).abs() / recomputed.abs().max(1.0);
        if err > tol.cost_rel {
            report.violations.push(Violation {
                kind: ViolationKind::CostDrift,
                step: k,
                index: None,
                magnitude: err,
                detail: format!("recorded C̄ {recorded:.6} vs recomputed {recomputed:.6} $"),
            });
        }
    }

    // ---- Storage physics (storage scenarios only): SoC bounds, rate
    // caps, and conservation of the SoC against the efficiency-weighted
    // integral of the recorded rates. ----
    if let Some(storage) = scenario.storage() {
        for (j, unit) in storage.units().iter().enumerate() {
            let (Some(soc), Some(charge), Some(discharge)) = (
                result.soc_mwh(j),
                result.battery_charge_mw(j),
                result.battery_discharge_mw(j),
            ) else {
                report.violations.push(Violation {
                    kind: ViolationKind::MissingData,
                    step: 0,
                    index: Some(j),
                    magnitude: 0.0,
                    detail: "storage scenario ran without battery series recorded".into(),
                });
                continue;
            };
            let mut expected = unit.initial_soc_mwh;
            for k in 0..steps {
                report.checks += 1;
                let s = soc[k];
                let over = (s - unit.capacity_mwh)
                    .max(-s)
                    .max(charge[k] - unit.max_charge_mw)
                    .max(-charge[k])
                    .max(discharge[k] - unit.max_discharge_mw)
                    .max(-discharge[k]);
                if over > 1e-9 {
                    report.violations.push(Violation {
                        kind: ViolationKind::SocBounds,
                        step: k,
                        index: Some(j),
                        magnitude: over,
                        detail: format!(
                            "SoC {s:.6} MWh (cap {:.3}), rates {:.6}/{:.6} MW",
                            unit.capacity_mwh, charge[k], discharge[k]
                        ),
                    });
                }
                report.checks += 1;
                expected +=
                    (unit.charge_efficiency * charge[k] - discharge[k] / unit.discharge_efficiency)
                        * ts;
                let drift = (s - expected).abs();
                if drift > 1e-9 {
                    report.violations.push(Violation {
                        kind: ViolationKind::BatteryConservation,
                        step: k,
                        index: Some(j),
                        magnitude: drift,
                        detail: format!("SoC {s:.9} MWh vs rate integral {expected:.9} MWh"),
                    });
                }
            }
        }
    }

    // ---- Demand-charge accrual (tariffed scenarios only): the recorded
    // cumulative series must match the recomputation off running billed
    // peaks of the recorded grid draw, and never decrease. ----
    if let Some(tariff) = scenario.demand_charge() {
        match result.demand_charge_cumulative() {
            Some(dc) => {
                let mut peaks = vec![0.0f64; n];
                let mut recomputed = 0.0;
                for (k, &recorded) in dc.iter().enumerate() {
                    for (j, peak) in peaks.iter_mut().enumerate() {
                        *peak = peak.max(result.power_mw(j)[k]);
                    }
                    recomputed += tariff.hourly_weight() * peaks.iter().sum::<f64>() * ts;
                    report.checks += 1;
                    let prev = if k == 0 { 0.0 } else { dc[k - 1] };
                    let err = (recorded - recomputed).abs() / recomputed.abs().max(1.0);
                    if err > tol.cost_rel || recorded < prev {
                        report.violations.push(Violation {
                            kind: ViolationKind::DemandChargeDrift,
                            step: k,
                            index: None,
                            magnitude: err,
                            detail: format!(
                                "recorded accrual {recorded:.6} vs recomputed {recomputed:.6} $"
                            ),
                        });
                    }
                }
            }
            None => report.violations.push(Violation {
                kind: ViolationKind::MissingData,
                step: 0,
                index: None,
                magnitude: 0.0,
                detail: "tariffed scenario ran without demand-charge accrual recorded".into(),
            }),
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
    use idc_core::scenario::{peak_shaving_scenario, smoothing_scenario};
    use idc_core::simulation::Simulator;

    #[test]
    fn missing_validation_extras_are_surfaced_not_panicked() {
        let scenario = smoothing_scenario();
        let result = Simulator::new()
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        let report = check_run(&scenario, &result, &Tolerances::default());
        assert!(!report.is_clean());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::MissingData);
    }

    #[test]
    fn clean_smoothing_run_passes_all_invariants() {
        let scenario = smoothing_scenario();
        let result = Simulator::with_validation()
            .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
            .unwrap();
        let report = check_run(&scenario, &result, &Tolerances::default());
        assert!(report.is_clean(), "{}", report.render());
        // 25 steps × (5 conservation + 15 negativity + 3 latency + 1 cost).
        assert_eq!(report.checks, 25 * (5 + 15 + 3 + 1));
        assert!(report.worst_budget_margin_mw.is_none());
    }

    #[test]
    fn peak_shaving_reports_worst_budget_margin() {
        let scenario = peak_shaving_scenario();
        let result = Simulator::with_validation()
            .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
            .unwrap();
        let report = check_run(&scenario, &result, &Tolerances::default());
        // Hard invariants must hold even while shaving peaks.
        assert!(report.hard_clean(), "{}", report.render());
        let (_, _, margin) = report.worst_budget_margin_mw.expect("budgets present");
        // The transient may overshoot, but it must stay in the same regime
        // as the budgets (not, say, the unclamped 11.4 MW optimum).
        assert!(margin > -2.0, "{}", report.render());
        assert!(report.render().contains("worst budget margin"));
    }

    #[test]
    fn storage_run_passes_storage_invariants() {
        let scenario = idc_core::scenario::storage_plus_shifting_scenario(11);
        let result = Simulator::with_validation()
            .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
            .unwrap();
        let report = check_run(&scenario, &result, &Tolerances::default());
        assert!(report.is_clean(), "{}", report.render());
        // 288 steps × (5 conservation + 15 negativity + 3 latency + 1 cost
        // + 3 IDCs × 2 storage checks + 1 demand-charge accrual).
        assert_eq!(report.checks, 288 * (5 + 15 + 3 + 1 + 6 + 1));
    }

    #[test]
    fn corrupted_battery_series_is_caught() {
        let scenario = idc_core::scenario::storage_plus_shifting_scenario(11);
        let result = Simulator::with_validation()
            .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
            .unwrap();
        // A non-validating rerun of the same scenario lacks the allocation
        // extras but still records battery series; stripping the storage
        // recording is not possible from outside, so corrupt via scenario
        // mismatch instead: check a storage scenario against a result from
        // a storage-free run.
        let plain = idc_core::scenario::demand_charge_scenario(11);
        let plain_result = Simulator::with_validation()
            .run(&plain, &mut MpcPolicy::paper_tuned(&plain).unwrap())
            .unwrap();
        let report = check_run(&scenario, &plain_result, &Tolerances::default());
        let missing = report.of_kind(ViolationKind::MissingData);
        assert_eq!(missing.len(), 3, "{}", report.render());
        // And sanity: the genuine storage run is clean (above), so the
        // checker distinguishes the two.
        let clean = check_run(&scenario, &result, &Tolerances::default());
        assert!(clean.of_kind(ViolationKind::MissingData).is_empty());
    }

    #[test]
    fn corrupted_cost_series_is_caught() {
        let scenario = smoothing_scenario();
        let result = Simulator::with_validation()
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        // Sanity: the genuine run is clean…
        let clean = check_run(&scenario, &result, &Tolerances::default());
        assert!(clean.is_clean(), "{}", clean.render());
        // …and a tolerance of zero flags accumulation-order-level drift at
        // most, never a sign/magnitude error. (The recomputation follows
        // the simulator's summation order exactly, so even tol = 0 passes.)
        let strict = check_run(
            &scenario,
            &result,
            &Tolerances {
                cost_rel: 0.0,
                ..Tolerances::default()
            },
        );
        assert!(strict.of_kind(ViolationKind::CostDrift).is_empty());
    }
}
