//! Brute-force differential oracles.
//!
//! Small, deliberately naive reference solvers that share **no code** with
//! `idc-opt`: a full-tableau two-phase simplex with Bland's rule for the
//! reference LP (paper eq. 46) and a textbook primal active-set method
//! with dense Gaussian-elimination KKT solves for the condensed MPC QP
//! (paper eq. 42–45). No caching, no warm starts, no factorization reuse —
//! every call rebuilds and re-solves from scratch. Production results must
//! agree with these to `1e-8` on the physically meaningful quantities
//! (objective value and horizon power), which is how solver refactors are
//! caught before they silently shift trajectories.

use idc_control::mpc::{MpcConfig, MpcProblem};
use idc_datacenter::idc::IdcConfig;

/// Relative agreement demanded between the oracles and production solvers.
pub const AGREEMENT_TOL: f64 = 1e-8;

// ---------------------------------------------------------------------------
// Dense linear algebra (self-contained).
// ---------------------------------------------------------------------------

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` on a (numerically) singular system.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        if a[piv][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for r in col + 1..n {
            let f = a[r][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[r][k] -= f * a[col][k];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in col + 1..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

// ---------------------------------------------------------------------------
// Textbook two-phase simplex.
// ---------------------------------------------------------------------------

/// A dense LP in the oracle's canonical form:
/// `min cᵀx  s.t.  E x = b_eq,  U x ≤ b_ub,  x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLp {
    /// Cost coefficients, one per structural variable.
    pub cost: Vec<f64>,
    /// Equality rows.
    pub eq_rows: Vec<Vec<f64>>,
    /// Equality right-hand sides.
    pub eq_rhs: Vec<f64>,
    /// Upper-bound (≤) rows.
    pub ub_rows: Vec<Vec<f64>>,
    /// Upper-bound right-hand sides.
    pub ub_rhs: Vec<f64>,
}

/// An optimal LP point.
#[derive(Debug, Clone, PartialEq)]
pub struct LpPoint {
    /// Optimal structural variables.
    pub x: Vec<f64>,
    /// Optimal objective `cᵀx`.
    pub objective: f64,
}

const LP_TOL: f64 = 1e-9;

impl DenseLp {
    /// Solves the LP by the two-phase full-tableau simplex with Bland's
    /// rule (anti-cycling). Returns `None` when infeasible, unbounded, or
    /// out of iterations.
    pub fn solve(&self) -> Option<LpPoint> {
        let nx = self.cost.len();
        let n_ub = self.ub_rows.len();
        let m = self.eq_rows.len() + n_ub;
        // Columns: structural, slack (one per ≤ row), artificial (one per
        // row), then the rhs.
        let slack0 = nx;
        let art0 = nx + n_ub;
        let ncols = art0 + m;
        let mut tab: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rhs: Vec<f64> = Vec::with_capacity(m);
        for (r, row) in self.eq_rows.iter().chain(&self.ub_rows).enumerate() {
            debug_assert_eq!(row.len(), nx);
            let mut t = vec![0.0; ncols];
            t[..nx].copy_from_slice(row);
            let mut b = if r < self.eq_rhs.len() {
                self.eq_rhs[r]
            } else {
                self.ub_rhs[r - self.eq_rhs.len()]
            };
            if r >= self.eq_rhs.len() {
                t[slack0 + (r - self.eq_rhs.len())] = 1.0;
            }
            if b < 0.0 {
                for v in t.iter_mut() {
                    *v = -*v;
                }
                b = -b;
            }
            t[art0 + r] = 1.0;
            tab.push(t);
            rhs.push(b);
        }
        let mut basis: Vec<usize> = (0..m).map(|r| art0 + r).collect();

        // Phase 1: minimize the sum of artificials. With the artificial
        // basis, the reduced cost of column j is −Σ_r tab[r][j].
        let mut red = vec![0.0; ncols];
        let mut obj = 0.0;
        for j in 0..art0 {
            red[j] = -(0..m).map(|r| tab[r][j]).sum::<f64>();
        }
        for r in 0..m {
            obj += rhs[r];
        }
        iterate(&mut tab, &mut rhs, &mut red, &mut obj, &mut basis, art0)?;
        if obj > 1e-7 {
            return None; // infeasible
        }
        // Drive leftover artificials out of the basis (degenerate rows).
        for r in 0..m {
            if basis[r] >= art0 {
                if let Some(j) = (0..art0).find(|&j| tab[r][j].abs() > LP_TOL) {
                    pivot(&mut tab, &mut rhs, &mut red, &mut obj, r, j);
                    basis[r] = j;
                }
                // A fully zero row is redundant; its artificial stays basic
                // at zero and (being banned from entering elsewhere) inert.
            }
        }

        // Phase 2: the real objective, artificials banned.
        let mut red = vec![0.0; ncols];
        for j in 0..art0 {
            let mut v = if j < nx { self.cost[j] } else { 0.0 };
            for r in 0..m {
                let cb = if basis[r] < nx {
                    self.cost[basis[r]]
                } else {
                    0.0
                };
                v -= tab[r][j] * cb;
            }
            red[j] = v;
        }
        let mut obj = (0..m)
            .map(|r| {
                let cb = if basis[r] < nx {
                    self.cost[basis[r]]
                } else {
                    0.0
                };
                rhs[r] * cb
            })
            .sum::<f64>();
        iterate(&mut tab, &mut rhs, &mut red, &mut obj, &mut basis, art0)?;

        let mut x = vec![0.0; nx];
        for r in 0..m {
            if basis[r] < nx {
                x[basis[r]] = rhs[r];
            }
        }
        let objective = self.cost.iter().zip(&x).map(|(c, v)| c * v).sum();
        Some(LpPoint { x, objective })
    }
}

/// One simplex phase: Bland entering (smallest eligible index, columns
/// `< banned_from` only), Bland leaving (min ratio, smallest basis index on
/// ties). Returns `None` on unboundedness or the iteration cap.
fn iterate(
    tab: &mut [Vec<f64>],
    rhs: &mut [f64],
    red: &mut [f64],
    obj: &mut f64,
    basis: &mut [usize],
    banned_from: usize,
) -> Option<()> {
    let m = tab.len();
    for _ in 0..20_000 {
        let Some(enter) = (0..banned_from).find(|&j| red[j] < -LP_TOL) else {
            return Some(());
        };
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for r in 0..m {
            if tab[r][enter] > LP_TOL {
                let ratio = rhs[r] / tab[r][enter];
                if ratio < best - 1e-12
                    || (ratio < best + 1e-12 && leave.is_some_and(|l| basis[r] < basis[l]))
                {
                    best = ratio;
                    leave = Some(r);
                }
            }
        }
        let leave = leave?; // None: unbounded
        pivot(tab, rhs, red, obj, leave, enter);
        basis[leave] = enter;
    }
    None
}

/// Pivots the tableau (and the reduced-cost row) on `(row, col)`.
fn pivot(
    tab: &mut [Vec<f64>],
    rhs: &mut [f64],
    red: &mut [f64],
    obj: &mut f64,
    row: usize,
    col: usize,
) {
    let p = tab[row][col];
    for v in tab[row].iter_mut() {
        *v /= p;
    }
    rhs[row] /= p;
    for r in 0..tab.len() {
        if r == row {
            continue;
        }
        let f = tab[r][col];
        if f == 0.0 {
            continue;
        }
        let (pr, cur) = if r < row {
            let (a, b) = tab.split_at_mut(row);
            (&b[0], &mut a[r])
        } else {
            let (a, b) = tab.split_at_mut(r);
            (&a[row], &mut b[0])
        };
        for (v, pv) in cur.iter_mut().zip(pr.iter()) {
            *v -= f * pv;
        }
        rhs[r] -= f * rhs[row];
    }
    let f = red[col];
    if f != 0.0 {
        for (v, pv) in red.iter_mut().zip(tab[row].iter()) {
            *v -= f * pv;
        }
        // The objective moves by (reduced cost) × (entering value).
        *obj += f * rhs[row];
    }
}

// ---------------------------------------------------------------------------
// Reference-LP oracle (paper eq. 46).
// ---------------------------------------------------------------------------

/// Independently rebuilds and solves the reference LP of paper eq. 46 for
/// one `(idcs, offered, prices)` instance:
///
/// ```text
/// min   Σ_j Pr_j · (b1_j·Σ_i λij + b0_j·m_j)        [MW · $/MWh]
/// s.t.  Σ_j λij = L_i                 (conservation, per portal)
///       Σ_i λij − µ_j·m_j ≤ −1/D_j   (latency/capacity, per IDC)
///       m_j ≤ M_j,   λij ≥ 0, m_j ≥ 0
/// ```
///
/// Returns `None` when infeasible. The objective is directly comparable to
/// [`idc_control::reference::ReferenceSolution::cost_rate_per_hour`].
pub fn reference_lp_oracle(idcs: &[IdcConfig], offered: &[f64], prices: &[f64]) -> Option<LpPoint> {
    let n = idcs.len();
    let c = offered.len();
    if n == 0 || c == 0 || prices.len() != n {
        return None;
    }
    let nv = n * c + n;
    let mut cost = vec![0.0; nv];
    for (j, idc) in idcs.iter().enumerate() {
        let b1_mw = idc.pue() * idc.server().b1() / 1e6;
        let b0_mw = idc.pue() * idc.server().b0() / 1e6;
        for i in 0..c {
            cost[j * c + i] = prices[j] * b1_mw;
        }
        cost[n * c + j] = prices[j] * b0_mw;
    }
    let mut eq_rows = Vec::with_capacity(c);
    for i in 0..c {
        let mut row = vec![0.0; nv];
        for j in 0..n {
            row[j * c + i] = 1.0;
        }
        eq_rows.push(row);
    }
    let mut ub_rows = Vec::with_capacity(2 * n);
    let mut ub_rhs = Vec::with_capacity(2 * n);
    for (j, idc) in idcs.iter().enumerate() {
        let mut row = vec![0.0; nv];
        for i in 0..c {
            row[j * c + i] = 1.0;
        }
        row[n * c + j] = -idc.service_rate();
        ub_rows.push(row);
        ub_rhs.push(-1.0 / idc.latency_bound());
    }
    for (j, idc) in idcs.iter().enumerate() {
        let mut row = vec![0.0; nv];
        row[n * c + j] = 1.0;
        ub_rows.push(row);
        ub_rhs.push(idc.total_servers() as f64);
    }
    DenseLp {
        cost,
        eq_rows,
        eq_rhs: offered.to_vec(),
        ub_rows,
        ub_rhs,
    }
    .solve()
}

// ---------------------------------------------------------------------------
// Condensed-QP oracle (paper eq. 42–45).
// ---------------------------------------------------------------------------

/// The dense QP data the oracle assembles from first principles:
/// `min ½ xᵀH x + gᵀx  s.t.  E x = b_eq,  U x ≤ b_ub` over the stacked
/// input changes `x = ΔU`.
struct QpData {
    h: Vec<Vec<f64>>,
    g: Vec<f64>,
    eq_rows: Vec<Vec<f64>>,
    eq_rhs: Vec<f64>,
    ub_rows: Vec<Vec<f64>>,
    ub_rhs: Vec<f64>,
}

/// One weighted least-squares row `w·(aᵀx − b)²` contributing to the QP.
struct LsRow {
    a: Vec<f64>,
    b: f64,
    w: f64,
}

/// All least-squares rows of paper eq. 42: per-IDC power tracking over the
/// prediction horizon, then per-IDC power-change smoothing over the
/// control horizon.
fn ls_rows(config: &MpcConfig, problem: &MpcProblem) -> Vec<LsRow> {
    let n = problem.num_idcs();
    let c = problem.num_portals();
    let nc = n * c;
    let beta1 = config.prediction_horizon;
    let beta2 = config.control_horizon;
    let nv = nc * beta2;
    let lambda0 = problem.current_idc_workloads();
    let mut rows = Vec::with_capacity((beta1 + beta2) * n);
    for s in 0..beta1 {
        for j in 0..n {
            let mut a = vec![0.0; nv];
            for t in 0..=s.min(beta2 - 1) {
                for i in 0..c {
                    a[t * nc + j * c + i] = problem.b1_mw[j];
                }
            }
            let current_p =
                problem.b1_mw[j] * lambda0[j] + problem.b0_mw[j] * problem.servers_on[j] as f64;
            rows.push(LsRow {
                a,
                b: problem.power_reference_mw[s][j] - current_p,
                w: config.tracking_weight * problem.tracking_multiplier[j],
            });
        }
    }
    for t in 0..beta2 {
        for j in 0..n {
            let mut a = vec![0.0; nv];
            for i in 0..c {
                a[t * nc + j * c + i] = problem.b1_mw[j];
            }
            rows.push(LsRow {
                a,
                b: 0.0,
                w: config.smoothing_weight,
            });
        }
    }
    rows
}

/// Assembles the dense QP: `H = 2(Σ w·a·aᵀ + ridge·I)`, `g = −2Σ w·b·a`,
/// cumulative conservation equalities (eq. 45) and cumulative capacity /
/// non-negativity inequalities (eq. 43–44).
fn build_qp(config: &MpcConfig, problem: &MpcProblem) -> QpData {
    let n = problem.num_idcs();
    let c = problem.num_portals();
    let nc = n * c;
    let beta2 = config.control_horizon;
    let nv = nc * beta2;
    let lambda0 = problem.current_idc_workloads();

    let mut h = vec![vec![0.0; nv]; nv];
    let mut g = vec![0.0; nv];
    for row in ls_rows(config, problem) {
        for p in 0..nv {
            if row.a[p] == 0.0 {
                continue;
            }
            g[p] -= 2.0 * row.w * row.b * row.a[p];
            for q in 0..nv {
                if row.a[q] != 0.0 {
                    h[p][q] += 2.0 * row.w * row.a[p] * row.a[q];
                }
            }
        }
    }
    for (p, hp) in h.iter_mut().enumerate() {
        hp[p] += 2.0 * config.input_ridge;
    }

    let mut eq_rows = Vec::with_capacity(beta2 * c);
    let mut eq_rhs = Vec::with_capacity(beta2 * c);
    for t in 0..beta2 {
        for i in 0..c {
            let mut row = vec![0.0; nv];
            for tp in 0..=t {
                for j in 0..n {
                    row[tp * nc + j * c + i] = 1.0;
                }
            }
            let prev: f64 = (0..n).map(|j| problem.prev_input[j * c + i]).sum();
            eq_rows.push(row);
            eq_rhs.push(problem.workload_forecast[t][i] - prev);
        }
    }
    let mut ub_rows = Vec::with_capacity(beta2 * (n + nc));
    let mut ub_rhs = Vec::with_capacity(beta2 * (n + nc));
    for t in 0..beta2 {
        for j in 0..n {
            let mut row = vec![0.0; nv];
            for tp in 0..=t {
                for i in 0..c {
                    row[tp * nc + j * c + i] = 1.0;
                }
            }
            ub_rows.push(row);
            ub_rhs.push(problem.capacities[j] - lambda0[j]);
        }
    }
    for t in 0..beta2 {
        for idx in 0..nc {
            let mut row = vec![0.0; nv];
            for tp in 0..=t {
                row[tp * nc + idx] = -1.0;
            }
            ub_rows.push(row);
            ub_rhs.push(problem.prev_input[idx]);
        }
    }
    QpData {
        h,
        g,
        eq_rows,
        eq_rhs,
        ub_rows,
        ub_rhs,
    }
}

/// Builds a feasible stacked `ΔU` directly: each control step greedily
/// refills the forecast portal workloads across IDCs in index order within
/// their capacities, then converts the absolute allocations to input
/// changes. Returns `None` when a step's total forecast exceeds the total
/// capacity (the QP is infeasible).
fn feasible_start(config: &MpcConfig, problem: &MpcProblem) -> Option<Vec<f64>> {
    let n = problem.num_idcs();
    let c = problem.num_portals();
    let nc = n * c;
    let beta2 = config.control_horizon;
    let mut x = vec![0.0; nc * beta2];
    let mut prev_u = problem.prev_input.clone();
    for t in 0..beta2 {
        let forecast = &problem.workload_forecast[t];
        let total: f64 = forecast.iter().sum();
        let cap_total: f64 = problem.capacities.iter().sum();
        if total > cap_total {
            return None;
        }
        let mut u_t = vec![0.0; nc];
        let mut headroom = problem.capacities.clone();
        for i in 0..c {
            let mut need = forecast[i];
            for j in 0..n {
                if need <= 0.0 {
                    break;
                }
                let take = need.min(headroom[j]);
                u_t[j * c + i] = take;
                headroom[j] -= take;
                need -= take;
            }
            if need > 1e-9 * forecast[i].max(1.0) {
                return None;
            }
        }
        for idx in 0..nc {
            x[t * nc + idx] = u_t[idx] - prev_u[idx];
        }
        prev_u = u_t;
    }
    Some(x)
}

/// The oracle's QP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct QpReplay {
    /// The stacked input changes `ΔU`.
    pub delta_u: Vec<f64>,
    /// The eq. 42 objective value at `delta_u` (see [`qp_objective`]).
    pub objective: f64,
    /// Active-set iterations used.
    pub iterations: usize,
}

const QP_ACT_TOL: f64 = 1e-6;
const QP_MAX_ITERATIONS: usize = 400;

/// Re-solves one captured per-step MPC problem with the naive dense
/// active-set method. Returns `None` when infeasible or the iteration
/// budget runs out (a finding in itself — the production solvers handle
/// every problem this is pointed at).
pub fn replay_qp(config: &MpcConfig, problem: &MpcProblem) -> Option<QpReplay> {
    let data = build_qp(config, problem);
    let mut x = feasible_start(config, problem)?;
    let nv = x.len();
    let n_ub = data.ub_rows.len();

    let residual = |rows: &[Vec<f64>], x: &[f64], r: usize| -> f64 {
        rows[r].iter().zip(x).map(|(a, v)| a * v).sum()
    };
    // Working set: inequalities active at the start point.
    let mut working: Vec<usize> = (0..n_ub)
        .filter(|&r| (data.ub_rhs[r] - residual(&data.ub_rows, &x, r)).abs() <= QP_ACT_TOL)
        .collect();

    for iter in 0..QP_MAX_ITERATIONS {
        // KKT system for the direction to the minimizer on the working set:
        //   [H  Eᵀ  Wᵀ][p;ν;λ] = [−(Hx+g); 0; 0]
        let m_eq = data.eq_rows.len();
        let m_w = working.len();
        let dim = nv + m_eq + m_w;
        let mut kkt = vec![vec![0.0; dim]; dim];
        let mut rhs = vec![0.0; dim];
        for p in 0..nv {
            for q in 0..nv {
                kkt[p][q] = data.h[p][q];
            }
            let mut grad = data.g[p];
            for q in 0..nv {
                grad += data.h[p][q] * x[q];
            }
            rhs[p] = -grad;
        }
        for (r, row) in data.eq_rows.iter().enumerate() {
            for p in 0..nv {
                kkt[nv + r][p] = row[p];
                kkt[p][nv + r] = row[p];
            }
        }
        for (r, &ci) in working.iter().enumerate() {
            for p in 0..nv {
                kkt[nv + m_eq + r][p] = data.ub_rows[ci][p];
                kkt[p][nv + m_eq + r] = data.ub_rows[ci][p];
            }
        }
        let Some(sol) = solve_dense(kkt, rhs) else {
            // Linearly dependent working set: drop the newest member and
            // retry (H is positive definite, so only W can be redundant).
            working.pop()?;
            continue;
        };
        let p_dir = &sol[..nv];
        let multipliers = &sol[nv + m_eq..];

        let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let p_norm = p_dir.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if p_norm <= 1e-9 * scale {
            // Stationary on the working set: optimal unless a multiplier
            // says a constraint should leave (Bland: smallest index wins).
            let lam_scale = multipliers.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            let mut drop: Option<usize> = None;
            for (r, &lam) in multipliers.iter().enumerate() {
                if lam < -1e-10 * lam_scale && drop.is_none_or(|d| working[r] < working[d]) {
                    drop = Some(r);
                }
            }
            match drop {
                None => {
                    let objective = qp_objective(config, problem, &x);
                    return Some(QpReplay {
                        delta_u: x,
                        objective,
                        iterations: iter + 1,
                    });
                }
                Some(r) => {
                    working.remove(r);
                }
            }
            continue;
        }

        // Ratio test against the inactive inequalities (Bland on ties).
        let mut alpha = 1.0f64;
        let mut blocker: Option<usize> = None;
        for r in 0..n_ub {
            if working.contains(&r) {
                continue;
            }
            let dir: f64 = data.ub_rows[r].iter().zip(p_dir).map(|(a, v)| a * v).sum();
            if dir <= 1e-12 * scale.max(1.0) {
                continue;
            }
            let slack = data.ub_rhs[r] - residual(&data.ub_rows, &x, r);
            let ratio = (slack / dir).max(0.0);
            if ratio < alpha - 1e-12 || (ratio < alpha + 1e-12 && blocker.is_none_or(|b| r < b)) {
                alpha = ratio.min(alpha);
                blocker = Some(r);
            }
        }
        for (v, d) in x.iter_mut().zip(p_dir) {
            *v += alpha * d;
        }
        if alpha < 1.0 {
            if let Some(b) = blocker {
                working.push(b);
                working.sort_unstable();
            }
        }
    }
    None
}

/// The eq. 42 objective evaluated directly from the problem data (no
/// lowering): tracking + smoothing + ridge, all as explicit sums. Both the
/// production plan and the oracle plan are scored with this same function,
/// so agreement checks cannot be fooled by a mis-lowered Hessian.
pub fn qp_objective(config: &MpcConfig, problem: &MpcProblem, delta_u: &[f64]) -> f64 {
    ls_rows(config, problem)
        .iter()
        .map(|row| {
            let r: f64 = row.a.iter().zip(delta_u).map(|(a, v)| a * v).sum::<f64>() - row.b;
            row.w * r * r
        })
        .sum::<f64>()
        + config.input_ridge * delta_u.iter().map(|v| v * v).sum::<f64>()
}

/// The summed predicted per-IDC power over the prediction horizon implied
/// by `delta_u` — the same scalar `bench_summary` uses for backend
/// agreement, comparable across solvers at `1e-8` relative.
pub fn horizon_power_sum_mw(config: &MpcConfig, problem: &MpcProblem, delta_u: &[f64]) -> f64 {
    let n = problem.num_idcs();
    let c = problem.num_portals();
    let nc = n * c;
    let beta2 = config.control_horizon;
    let lambda0 = problem.current_idc_workloads();
    let mut total = 0.0;
    for s in 0..config.prediction_horizon {
        for j in 0..n {
            let mut lam = lambda0[j];
            for t in 0..=s.min(beta2 - 1) {
                for i in 0..c {
                    lam += delta_u[t * nc + j * c + i];
                }
            }
            total += problem.b1_mw[j] * lam + problem.b0_mw[j] * problem.servers_on[j] as f64;
        }
    }
    total
}

/// `true` when `delta_u` satisfies every constraint of the captured
/// problem within `tol` (req/s).
pub fn qp_feasible(config: &MpcConfig, problem: &MpcProblem, delta_u: &[f64], tol: f64) -> bool {
    let data = build_qp(config, problem);
    let value = |row: &[f64]| -> f64 { row.iter().zip(delta_u).map(|(a, v)| a * v).sum() };
    data.eq_rows
        .iter()
        .zip(&data.eq_rhs)
        .all(|(row, &b)| (value(row) - b).abs() <= tol)
        && data
            .ub_rows
            .iter()
            .zip(&data.ub_rhs)
            .all(|(row, &b)| value(row) <= b + tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_elimination_solves_and_detects_singularity() {
        let x = solve_dense(vec![vec![2.0, 1.0], vec![1.0, 3.0]], vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
        assert!(solve_dense(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn simplex_solves_a_textbook_lp() {
        // min −x−y s.t. x+y ≤ 4, x ≤ 3, y ≤ 2 → x=3, y=1, obj −4.
        let lp = DenseLp {
            cost: vec![-1.0, -1.0],
            eq_rows: vec![],
            eq_rhs: vec![],
            ub_rows: vec![vec![1.0, 1.0], vec![1.0, 0.0], vec![0.0, 1.0]],
            ub_rhs: vec![4.0, 3.0, 2.0],
        };
        let p = lp.solve().unwrap();
        assert!((p.objective + 4.0).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn simplex_handles_equalities_and_negative_rhs() {
        // min x+2y s.t. x+y = 3, −x ≤ −1 (x ≥ 1) → x=3, y=0, obj 3.
        let lp = DenseLp {
            cost: vec![1.0, 2.0],
            eq_rows: vec![vec![1.0, 1.0]],
            eq_rhs: vec![3.0],
            ub_rows: vec![vec![-1.0, 0.0]],
            ub_rhs: vec![-1.0],
        };
        let p = lp.solve().unwrap();
        assert!((p.objective - 3.0).abs() < 1e-9, "{p:?}");
        assert!((p.x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn simplex_reports_infeasibility() {
        // x ≤ 1 and x ≥ 2 cannot both hold.
        let lp = DenseLp {
            cost: vec![1.0],
            eq_rows: vec![],
            eq_rhs: vec![],
            ub_rows: vec![vec![1.0], vec![-1.0]],
            ub_rhs: vec![1.0, -2.0],
        };
        assert!(lp.solve().is_none());
    }

    #[test]
    fn simplex_reports_unboundedness() {
        let lp = DenseLp {
            cost: vec![-1.0],
            eq_rows: vec![],
            eq_rhs: vec![],
            ub_rows: vec![],
            ub_rhs: vec![],
        };
        assert!(lp.solve().is_none());
    }

    #[test]
    fn reference_oracle_matches_production_lp_on_paper_instances() {
        use idc_datacenter::idc::paper_idcs;
        let idcs = paper_idcs();
        let offered = [30_000.0, 15_000.0, 15_000.0, 20_000.0, 20_000.0];
        for prices in [[43.26, 30.26, 19.06], [49.90, 29.47, 77.97]] {
            let oracle = reference_lp_oracle(&idcs, &offered, &prices).unwrap();
            let prod = idc_control::reference::optimal_reference(&idcs, &offered, &prices).unwrap();
            let rel = (oracle.objective - prod.cost_rate_per_hour()).abs()
                / prod.cost_rate_per_hour().abs().max(1.0);
            assert!(rel <= AGREEMENT_TOL, "rel diff {rel:.3e} at {prices:?}");
        }
    }

    #[test]
    fn reference_oracle_detects_infeasible_load() {
        use idc_datacenter::idc::paper_idcs;
        let idcs = paper_idcs();
        assert!(reference_lp_oracle(&idcs, &[150_000.0], &[1.0, 1.0, 1.0]).is_none());
    }
}
