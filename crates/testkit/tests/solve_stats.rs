//! Solver introspection counters checked against replayed problems.
//!
//! Problems are captured from a real closed-loop run
//! (`record_problems: true`), then re-solved by fresh production
//! controllers: the [`SolveStats`] the controller accumulates must agree
//! with the per-plan iteration count the plan itself reports, and the
//! naive testkit oracle must still solve every problem the counters were
//! measured on (so a miscounting solver cannot hide behind an unsolvable
//! instance).

use idc_control::mpc::{MpcConfig, MpcController, MpcProblem, SolverBackend};
use idc_core::metrics::SolveStats;
use idc_core::policy::{MpcPolicy, MpcPolicyConfig};
use idc_core::scenario::smoothing_scenario;
use idc_core::simulation::Simulator;
use idc_testkit::oracle::replay_qp;

/// Captures every per-step problem the paper MPC assembles on the
/// smoothing scenario.
fn capture_problems() -> (MpcConfig, Vec<MpcProblem>) {
    let scenario = smoothing_scenario();
    let config = MpcPolicyConfig {
        budgets: scenario.budgets().cloned(),
        record_problems: true,
        ..MpcPolicyConfig::default()
    };
    let mpc = config.mpc;
    let mut policy = MpcPolicy::new(config).expect("policy config");
    Simulator::new()
        .run(&scenario, &mut policy)
        .expect("simulation");
    let problems = policy.recorded_problems().to_vec();
    assert!(!problems.is_empty(), "no problems recorded");
    (mpc, problems)
}

#[test]
fn cold_solve_stats_match_reported_iterations_on_replayed_problems() {
    let (mpc, problems) = capture_problems();
    for backend in [SolverBackend::CondensedDense, SolverBackend::BandedRiccati] {
        for (idx, problem) in problems.iter().enumerate().step_by(5) {
            let tag = format!("{backend:?} step {idx}");
            let oracle = replay_qp(&mpc, problem)
                .unwrap_or_else(|| panic!("{tag}: oracle failed on a captured problem"));
            assert!(oracle.iterations > 0, "{tag}: oracle reported zero work");

            let mut controller = MpcController::new(MpcConfig { backend, ..mpc });
            let before = controller.solve_stats();
            assert_eq!(before, SolveStats::default(), "{tag}: fresh controller");
            let plan = controller
                .plan_cold(problem)
                .unwrap_or_else(|e| panic!("{tag}: production solve failed: {e}"));
            let stats = controller.solve_stats();

            assert_eq!(stats.solves, 1, "{tag}: one plan, one solve");
            assert_eq!(
                stats.iterations,
                plan.qp_iterations() as u64,
                "{tag}: accumulated iterations must equal the plan's report"
            );
            assert_eq!(
                stats.cold_fallbacks, 0,
                "{tag}: cold plan is not a fallback"
            );
            assert_eq!(
                stats.seed_offered, 0,
                "{tag}: cold plan offers no warm seed"
            );
            assert!(
                stats.constraints_added + stats.seed_accepted >= stats.constraints_dropped,
                "{tag}: cannot drop constraints that never entered the working set"
            );
        }
    }
}

#[test]
fn warm_replay_accumulates_and_reports_seed_survival() {
    let (mpc, problems) = capture_problems();
    assert!(problems.len() >= 3, "need a few steps to warm-start across");
    for backend in [SolverBackend::CondensedDense, SolverBackend::BandedRiccati] {
        let tag = format!("{backend:?}");
        let mut controller = MpcController::new(MpcConfig { backend, ..mpc });
        let mut reported: u64 = 0;
        for problem in &problems[..3] {
            let plan = controller
                .plan(problem)
                .unwrap_or_else(|e| panic!("{tag}: warm solve failed: {e}"));
            reported += plan.qp_iterations() as u64;
        }
        let stats = controller.solve_stats();
        assert_eq!(stats.solves, 3, "{tag}: three plans, three solves");
        assert_eq!(
            stats.iterations, reported,
            "{tag}: accumulated iterations must equal the sum of per-plan reports"
        );
        assert!(
            stats.seed_accepted <= stats.seed_offered,
            "{tag}: cannot accept more seed constraints than were offered"
        );
        let survival = stats.seed_survival();
        assert!(
            (0.0..=1.0).contains(&survival),
            "{tag}: survival fraction out of range: {survival}"
        );

        controller.reset_solve_stats();
        assert_eq!(
            controller.solve_stats(),
            SolveStats::default(),
            "{tag}: reset must zero the counters"
        );
    }
}
