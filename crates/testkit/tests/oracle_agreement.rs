//! Differential-oracle agreement: per-step problems captured from real
//! closed-loop runs are re-solved by the naive dense oracles and must
//! agree with **both** production backends to 1e-8 on the objective and
//! the horizon power. A seeded subsample keeps the brute-force cost
//! bounded without ever sampling the same steps twice across runs.

use idc_control::mpc::{MpcConfig, MpcController, MpcProblem, SolverBackend};
use idc_core::policy::{MpcPolicy, MpcPolicyConfig};
use idc_core::scenario::{peak_shaving_scenario, smoothing_scenario, Scenario};
use idc_core::simulation::Simulator;
use idc_testkit::oracle::{
    horizon_power_sum_mw, qp_feasible, qp_objective, reference_lp_oracle, replay_qp, AGREEMENT_TOL,
};
use rand::{Rng, SeedableRng, StdRng};

/// Runs the paper MPC policy over `scenario` with problem recording on and
/// returns every per-step [`MpcProblem`] it assembled.
fn capture_problems(scenario: &Scenario) -> (MpcConfig, Vec<MpcProblem>) {
    let config = MpcPolicyConfig {
        budgets: scenario.budgets().cloned(),
        record_problems: true,
        ..MpcPolicyConfig::default()
    };
    let mpc = config.mpc;
    let mut policy = MpcPolicy::new(config).expect("policy config");
    Simulator::new()
        .run(scenario, &mut policy)
        .expect("simulation");
    let problems = policy.recorded_problems().to_vec();
    assert!(!problems.is_empty(), "no problems recorded");
    (mpc, problems)
}

/// Draws `k` distinct indices out of `n` from a seeded stream.
fn subsample(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked = Vec::with_capacity(k.min(n));
    while picked.len() < k.min(n) {
        let idx = (rng.random::<u64>() % n as u64) as usize;
        if !picked.contains(&idx) {
            picked.push(idx);
        }
    }
    picked.sort_unstable();
    picked
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// The core agreement check for one captured problem: oracle vs both
/// production backends, on objective value and summed horizon power.
fn assert_agreement(mpc: &MpcConfig, problem: &MpcProblem, tag: &str) {
    let oracle = replay_qp(mpc, problem)
        .unwrap_or_else(|| panic!("{tag}: oracle failed on a problem production solved"));
    assert!(
        qp_feasible(mpc, problem, &oracle.delta_u, 1e-5),
        "{tag}: oracle solution violates its own constraints"
    );

    for backend in [SolverBackend::CondensedDense, SolverBackend::BandedRiccati] {
        let mut controller = MpcController::new(MpcConfig { backend, ..*mpc });
        let plan = controller
            .plan_cold(problem)
            .unwrap_or_else(|e| panic!("{tag}: {backend:?} failed: {e}"));
        assert!(
            qp_feasible(mpc, problem, plan.delta_u(), 1e-5),
            "{tag}: {backend:?} solution violates the oracle-assembled constraints"
        );

        let prod_obj = qp_objective(mpc, problem, plan.delta_u());
        let obj_rel = rel_diff(prod_obj, oracle.objective);
        assert!(
            obj_rel <= AGREEMENT_TOL,
            "{tag}: {backend:?} objective disagrees with oracle: \
             {prod_obj:.12e} vs {:.12e} (rel {obj_rel:.3e})",
            oracle.objective
        );

        let prod_power: f64 = plan.predicted_power_mw().iter().flatten().sum();
        let oracle_power = horizon_power_sum_mw(mpc, problem, &oracle.delta_u);
        let pw_rel = rel_diff(prod_power, oracle_power);
        assert!(
            pw_rel <= AGREEMENT_TOL,
            "{tag}: {backend:?} horizon power disagrees with oracle: \
             {prod_power:.12e} vs {oracle_power:.12e} MW (rel {pw_rel:.3e})"
        );
    }
}

#[test]
fn qp_oracle_agrees_with_both_backends_on_smoothing_run() {
    let scenario = smoothing_scenario();
    let (mpc, problems) = capture_problems(&scenario);
    for idx in subsample(problems.len(), 8, 0x5111) {
        assert_agreement(&mpc, &problems[idx], &format!("smoothing step {idx}"));
    }
}

#[test]
fn qp_oracle_agrees_with_both_backends_on_peak_shaving_run() {
    // Peak shaving clamps the reference and boosts tracking weights, which
    // is exactly where the QP goes degenerate (active budget constraints).
    let scenario = peak_shaving_scenario();
    let (mpc, problems) = capture_problems(&scenario);
    for idx in subsample(problems.len(), 8, 0x9ea7) {
        assert_agreement(&mpc, &problems[idx], &format!("peak-shaving step {idx}"));
    }
}

#[test]
fn lp_oracle_agrees_with_production_reference_on_simulated_prices() {
    // Re-solve the eq. 46 reference LP at prices/workloads taken from a
    // recorded validating run, not just hand-picked instances.
    let scenario = smoothing_scenario();
    let mut policy = MpcPolicy::paper_tuned(&scenario).expect("policy");
    let result = Simulator::with_validation()
        .run(&scenario, &mut policy)
        .expect("simulation");
    let offered = result.offered_workloads().expect("validating run");
    let prices = result.prices();
    let idcs = scenario.fleet().idcs();
    for idx in subsample(offered.len(), 6, 0x1f46) {
        let oracle = reference_lp_oracle(idcs, &offered[idx], &prices[idx])
            .unwrap_or_else(|| panic!("step {idx}: oracle LP infeasible"));
        let prod = idc_control::reference::optimal_reference(idcs, &offered[idx], &prices[idx])
            .unwrap_or_else(|e| panic!("step {idx}: production LP failed: {e}"));
        let rel = rel_diff(oracle.objective, prod.cost_rate_per_hour());
        assert!(
            rel <= AGREEMENT_TOL,
            "step {idx}: LP objectives disagree: oracle {:.12e} vs production {:.12e} (rel {rel:.3e})",
            oracle.objective,
            prod.cost_rate_per_hour()
        );
    }
}
