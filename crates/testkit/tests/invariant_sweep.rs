//! Invariant sweep: every scenario the repo ships, under every closed-loop
//! policy, replayed through the validating simulator and checked against
//! the paper's hard guarantees — workload conservation (eq. 9), `λij ≥ 0`,
//! M/M/n latency feasibility, and accumulated-cost consistency. The power
//! budget is a *soft* invariant (MPC transients may legitimately overshoot
//! for a step or two), so sweeps gate on [`Report::hard_clean`] and report
//! the worst budget margin instead of failing on it.

use idc_core::policy::{MpcPolicy, OptimalPolicy, Policy, ReferenceKind, StaticProportionalPolicy};
use idc_core::scenario::{
    demand_charge_scenario, diurnal_day_scenario, mmpp_hour_scenario, noisy_day_scenario,
    peak_shaving_scenario, smoothing_scenario, smoothing_scenario_table_ii,
    storage_peak_shaving_scenario, storage_plus_shifting_scenario, vicious_cycle_scenario,
    Scenario,
};
use idc_core::simulation::Simulator;
use idc_testkit::invariants::{check_run, Tolerances, ViolationKind};

/// Every scenario constructor the repo ships.
fn all_scenarios() -> Vec<Scenario> {
    vec![
        smoothing_scenario(),
        peak_shaving_scenario(),
        smoothing_scenario_table_ii(),
        vicious_cycle_scenario(0.9),
        noisy_day_scenario(2012),
        diurnal_day_scenario(2012),
        mmpp_hour_scenario(2012),
        storage_peak_shaving_scenario(),
        demand_charge_scenario(2012),
        storage_plus_shifting_scenario(2012),
    ]
}

/// Policy constructors paired with labels, fresh per scenario.
fn all_policies(scenario: &Scenario) -> Vec<(&'static str, Box<dyn Policy>)> {
    vec![
        (
            "mpc",
            Box::new(MpcPolicy::paper_tuned(scenario).expect("mpc policy")) as Box<dyn Policy>,
        ),
        (
            "optimal-greedy",
            Box::new(OptimalPolicy::new(ReferenceKind::PriceGreedy)),
        ),
        (
            "optimal-lp",
            Box::new(OptimalPolicy::new(ReferenceKind::LpOptimal)),
        ),
        ("static", Box::new(StaticProportionalPolicy::new())),
    ]
}

#[test]
fn every_scenario_and_policy_keeps_the_hard_invariants() {
    let mut swept = 0usize;
    for scenario in all_scenarios() {
        for (label, mut policy) in all_policies(&scenario) {
            let result = Simulator::with_validation()
                .run(&scenario, policy.as_mut())
                .unwrap_or_else(|e| panic!("{}/{label}: simulation failed: {e}", scenario.name()));
            let report = check_run(&scenario, &result, &Tolerances::default());
            assert!(
                report.hard_clean(),
                "{}/{label}:\n{}",
                scenario.name(),
                report.render()
            );
            assert!(report.checks > 0);
            swept += 1;
        }
    }
    // 10 scenarios × 4 policies: a silent drop in coverage is a failure too.
    assert_eq!(swept, 40);
}

#[test]
fn budget_scenarios_report_margins_and_bound_overshoot() {
    let scenario = peak_shaving_scenario();
    for (label, mut policy) in all_policies(&scenario) {
        let result = Simulator::with_validation()
            .run(&scenario, policy.as_mut())
            .expect("simulation");
        let report = check_run(&scenario, &result, &Tolerances::default());
        let (idc, step, margin) = report
            .worst_budget_margin_mw
            .unwrap_or_else(|| panic!("{label}: no budget margin on a budgeted scenario"));
        assert!(idc < result.num_idcs() && step < result.times_min().len());
        // Whatever the policy, the trajectory must stay in the budget
        // regime: overshoot bounded, not the unclamped optimum.
        assert!(
            margin > -3.0,
            "{label}: worst margin {margin:.3} MW\n{}",
            report.render()
        );
    }
}

#[test]
fn unvalidated_runs_are_rejected_not_miscounted() {
    let scenario = smoothing_scenario();
    let result = Simulator::new()
        .run(
            &scenario,
            &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
        )
        .expect("simulation");
    let report = check_run(&scenario, &result, &Tolerances::default());
    assert_eq!(report.of_kind(ViolationKind::MissingData).len(), 1);
    assert!(!report.is_clean());
}
