//! Golden-trace snapshot: the summary metrics of every repro scenario
//! under the paper MPC policy, pinned to a committed JSON file. The
//! simulator is bit-for-bit deterministic, so any drift here means a
//! behaviour change — intended changes must regenerate the snapshot:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p idc-testkit --test golden_trace
//! ```
//!
//! and commit the updated `crates/testkit/golden/repro_metrics.json`
//! alongside the change that moved the numbers.

use idc_core::policy::MpcPolicy;
use idc_core::scenario::{
    demand_charge_scenario, diurnal_day_scenario, mmpp_hour_scenario, noisy_day_scenario,
    peak_shaving_scenario, smoothing_scenario, smoothing_scenario_table_ii,
    storage_peak_shaving_scenario, storage_plus_shifting_scenario, vicious_cycle_scenario,
    Scenario,
};
use idc_core::simulation::Simulator;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/repro_metrics.json");
/// Snapshots match to this relative tolerance. The run itself is
/// deterministic; the slack only covers libm differences across hosts.
const REL_TOL: f64 = 1e-9;

fn scenarios() -> Vec<Scenario> {
    vec![
        smoothing_scenario(),
        smoothing_scenario_table_ii(),
        peak_shaving_scenario(),
        vicious_cycle_scenario(0.9),
        noisy_day_scenario(2012),
        diurnal_day_scenario(2012),
        mmpp_hour_scenario(2012),
        storage_peak_shaving_scenario(),
        demand_charge_scenario(2012),
        storage_plus_shifting_scenario(2012),
    ]
}

struct Row {
    scenario: String,
    total_cost_usd: f64,
    peak_fleet_mw: f64,
    mean_abs_step_mw: f64,
}

fn measure() -> Vec<Row> {
    scenarios()
        .iter()
        .map(|scenario| {
            let mut policy = MpcPolicy::paper_tuned(scenario).expect("policy");
            let result = Simulator::new().run(scenario, &mut policy).expect("run");
            let fleet = result.total_power_mw();
            let peak = fleet.iter().fold(0.0f64, |m, &p| m.max(p));
            let steps = fleet.windows(2).map(|w| (w[1] - w[0]).abs());
            let mean_abs_step = if fleet.len() > 1 {
                steps.sum::<f64>() / (fleet.len() - 1) as f64
            } else {
                0.0
            };
            Row {
                scenario: scenario.name().to_string(),
                total_cost_usd: result.total_cost(),
                peak_fleet_mw: peak,
                mean_abs_step_mw: mean_abs_step,
            }
        })
        .collect()
}

fn render(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"scenario\":{:?},\"policy\":\"mpc\",\"total_cost_usd\":{:.17e},\
             \"peak_fleet_mw\":{:.17e},\"mean_abs_step_mw\":{:.17e}}}{}\n",
            r.scenario,
            r.total_cost_usd,
            r.peak_fleet_mw,
            r.mean_abs_step_mw,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Extracts `"key":<number>` from a JSON line (the format `render` emits).
fn field(line: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\":");
    let start = line
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|ch: char| !matches!(ch, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("bad {key} in {line}: {e}"))
}

#[test]
fn repro_metrics_match_the_committed_golden_file() {
    let rows = measure();
    let rendered = render(&rows);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e}\nregenerate with REGEN_GOLDEN=1")
    });
    let golden_lines: Vec<&str> = golden
        .lines()
        .filter(|l| l.contains("\"scenario\""))
        .collect();
    assert_eq!(
        golden_lines.len(),
        rows.len(),
        "golden file covers {} scenarios, current run {} — regenerate with REGEN_GOLDEN=1",
        golden_lines.len(),
        rows.len()
    );
    for (row, line) in rows.iter().zip(&golden_lines) {
        assert!(
            line.contains(&format!("{:?}", row.scenario)),
            "scenario order drifted: expected {:?} in {line}",
            row.scenario
        );
        for (key, actual) in [
            ("total_cost_usd", row.total_cost_usd),
            ("peak_fleet_mw", row.peak_fleet_mw),
            ("mean_abs_step_mw", row.mean_abs_step_mw),
        ] {
            let pinned = field(line, key);
            let rel = (actual - pinned).abs() / pinned.abs().max(1.0);
            assert!(
                rel <= REL_TOL,
                "{}: {key} drifted from golden {pinned:.12e} to {actual:.12e} (rel {rel:.3e})\n\
                 if intended, regenerate with: REGEN_GOLDEN=1 cargo test -p idc-testkit --test golden_trace",
                row.scenario
            );
        }
    }
}
