//! Fault-injection matrix: seeded disturbances (price spikes, hold-last-
//! value dropouts, amplified prediction error, forced solver failures)
//! applied to real scenarios. Every cell must (a) reproduce byte-for-byte
//! when re-run, (b) complete without panicking, and (c) either keep the
//! hard trajectory invariants or surface the violations in the report —
//! never silently corrupt the trajectory.

use idc_core::scenario::smoothing_scenario;
use idc_testkit::faults::{FaultKind, FaultPlan};

const SEEDS: [u64; 3] = [7, 2012, 0xFEED];

#[test]
fn every_fault_cell_is_reproducible_and_degrades_gracefully() {
    let base = smoothing_scenario();
    let mut cells = 0usize;
    let batch_kinds: Vec<FaultKind> = FaultKind::ALL
        .into_iter()
        .filter(|k| !k.runtime_layer())
        .collect();
    for kind in batch_kinds.iter().copied() {
        for seed in SEEDS {
            let plan = FaultPlan::new(kind, seed);
            let first = plan.run(&base).expect("fault run");
            let second = plan.run(&base).expect("fault re-run");

            // (a) Byte-reproducible: the same plan yields the identical
            // trajectory, not merely a statistically similar one.
            assert_eq!(
                first.result, second.result,
                "{kind}#{seed}: re-run diverged"
            );
            assert_eq!(first.report.violations, second.report.violations);
            assert_eq!(first.fallback_steps, second.fallback_steps);

            // (c) Hard invariants survive the disturbance: conservation,
            // non-negativity, latency and cost consistency are exactly the
            // guarantees faults must not break. (Budget overshoot stays a
            // surfaced soft violation.)
            assert!(
                first.report.hard_clean(),
                "{kind}#{seed}:\n{}",
                first.report.render()
            );
            cells += 1;
        }
    }
    assert_eq!(cells, batch_kinds.len() * SEEDS.len());
}

#[test]
fn runtime_layer_kinds_have_no_batch_expression_but_reproducible_params() {
    // Delivery-layer faults (tenant overload) perturb an online host's
    // feed ingest, not a batch simulation: `apply`/`run` must refuse them
    // while the derived burst parameters stay seed-reproducible — the
    // online soak harness is what actually exercises them.
    let base = smoothing_scenario();
    for kind in FaultKind::ALL.into_iter().filter(|k| k.runtime_layer()) {
        for seed in SEEDS {
            let plan = FaultPlan::new(kind, seed);
            assert!(plan.apply(&base).is_none(), "{kind} applied to a batch");
            assert!(plan.run(&base).is_err(), "{kind} ran as a batch");
            let params = plan.overload_params().expect("overload params");
            assert_eq!(Some(params), plan.overload_params());
        }
    }
}

#[test]
fn solver_failures_actually_exercise_the_fallback_path() {
    let base = smoothing_scenario();
    for seed in SEEDS {
        let plan = FaultPlan::new(FaultKind::SolverFailure, seed);
        let (_, config) = plan.apply(&base).expect("applies");
        let run = plan.run(&base).expect("fault run");
        // Every injected failure step must show up as a recorded fallback:
        // the policy degraded instead of crashing or ignoring the fault.
        for step in &config.forced_failure_steps {
            assert!(
                run.fallback_steps.contains(step),
                "seed {seed}: forced step {step} not in fallbacks {:?}",
                run.fallback_steps
            );
        }
        assert!(run.report.hard_clean(), "{}", run.report.render());
    }
}

#[test]
fn fault_kinds_actually_change_the_trajectory() {
    // A fault harness that injects no-ops would pass everything above
    // (the perturbed scenario is *renamed*, so whole-result inequality is
    // vacuous); compare name-independent data instead. Price faults are
    // anchored inside the simulated span, so the recorded price stream
    // must move; the other kinds must move the power/cost trajectory.
    use idc_core::policy::MpcPolicy;
    use idc_core::simulation::Simulator;
    let base = smoothing_scenario();
    let clean = Simulator::with_validation()
        .run(&base, &mut MpcPolicy::paper_tuned(&base).unwrap())
        .expect("clean run");
    let spike_moved = SEEDS.iter().any(|&seed| {
        let run = FaultPlan::new(FaultKind::PriceSpike, seed)
            .run(&base)
            .expect("fault run");
        run.result.prices() != clean.prices()
    });
    assert!(spike_moved, "no seed's spike changed the recorded prices");
    // A dropout holding an already-constant hourly price is invisible, so
    // short scenarios cannot witness hold-last-value. Check it on the
    // 24-hour diurnal day, where a 2–5 h hold must span hourly changes.
    use idc_core::scenario::diurnal_day_scenario;
    let day = diurnal_day_scenario(2012);
    let day_clean = Simulator::with_validation()
        .run(&day, &mut MpcPolicy::paper_tuned(&day).unwrap())
        .expect("clean day run");
    let dropout_moved = SEEDS.iter().any(|&seed| {
        let run = FaultPlan::new(FaultKind::PriceDropout, seed)
            .run(&day)
            .expect("fault run");
        run.result.prices() != day_clean.prices()
    });
    assert!(
        dropout_moved,
        "no seed's dropout changed the recorded prices"
    );
    for kind in [FaultKind::PredictionError, FaultKind::SolverFailure] {
        let run = FaultPlan::new(kind, SEEDS[0])
            .run(&base)
            .expect("fault run");
        let power_moved =
            (0..clean.num_idcs()).any(|j| run.result.power_mw(j) != clean.power_mw(j));
        assert!(
            power_moved || run.result.total_cost() != clean.total_cost(),
            "{kind}: fault left the power trajectory and cost untouched"
        );
    }
}

#[test]
fn distinct_seeds_give_distinct_disturbances() {
    let base = smoothing_scenario();
    for kind in FaultKind::ALL.into_iter().filter(|k| !k.runtime_layer()) {
        let a = FaultPlan::new(kind, SEEDS[0]).run(&base).expect("run");
        let b = FaultPlan::new(kind, SEEDS[1]).run(&base).expect("run");
        assert_ne!(
            a.result, b.result,
            "{kind}: seeds {} and {} coincide",
            SEEDS[0], SEEDS[1]
        );
    }
}
