//! Sharded-vs-monolithic equivalence gate.
//!
//! The sharded backend decomposes the *same* strictly convex QP the
//! monolithic backends solve, so with the peak budget off its fixed point
//! is the unique monolithic minimizer: on randomized small fleets the plan
//! cost (total predicted power over the horizon) must agree to a relative
//! 1e-6, and the served split itself must agree to consensus tolerance.
//! CI runs this as the `shard-equivalence` step.

use idc_control::mpc::{MpcConfig, MpcController, MpcProblem, SolverBackend};
use idc_testkit::equivalence::within_tolerance_f64;
use rand::{Rng, SeedableRng, StdRng};

/// A randomized small fleet plus a deterministic per-step workload path.
struct RandomFleet {
    n: usize,
    c: usize,
    b1_mw: Vec<f64>,
    b0_mw: Vec<f64>,
    servers_on: Vec<u64>,
    capacities: Vec<f64>,
    /// Base per-portal offered workload (req/s); steps jitter around it.
    base_load: Vec<f64>,
}

impl RandomFleet {
    fn draw(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 + (rng.random::<u64>() % 3) as usize; // 2..=4 IDCs
        let c = 1 + (rng.random::<u64>() % 3) as usize; // 1..=3 portals
        let b1_mw: Vec<f64> = (0..n).map(|_| rng.random_range(50e-6, 120e-6)).collect();
        let b0_mw: Vec<f64> = (0..n).map(|_| rng.random_range(100e-6, 200e-6)).collect();
        let servers_on: Vec<u64> = (0..n)
            .map(|_| 5_000 + rng.random::<u64>() % 15_000)
            .collect();
        let capacities: Vec<f64> = (0..n)
            .map(|_| rng.random_range(8_000.0, 20_000.0))
            .collect();
        // Keep total demand well inside total capacity so every step is
        // feasible regardless of the jitter path.
        let headroom: f64 = capacities.iter().sum::<f64>() * 0.6;
        let mut base_load: Vec<f64> = (0..c).map(|_| rng.random_range(2_000.0, 8_000.0)).collect();
        let total: f64 = base_load.iter().sum();
        if total > headroom {
            for l in &mut base_load {
                *l *= headroom / total;
            }
        }
        RandomFleet {
            n,
            c,
            b1_mw,
            b0_mw,
            servers_on,
            capacities,
            base_load,
        }
    }

    /// Offered workload at `step`: a deterministic ±10 % wobble per portal.
    fn offered(&self, step: usize) -> Vec<f64> {
        self.base_load
            .iter()
            .enumerate()
            .map(|(i, &l)| l * (1.0 + 0.1 * ((step * 7 + i * 3) % 5) as f64 / 5.0 - 0.05))
            .collect()
    }

    /// The per-step problem: capacity-proportional reference power, the
    /// previous plan's split as `prev_input`.
    fn problem(&self, config: &MpcConfig, step: usize, prev_input: &[f64]) -> MpcProblem {
        let cap_total: f64 = self.capacities.iter().sum();
        let forecast: Vec<Vec<f64>> = (0..config.control_horizon)
            .map(|s| self.offered(step + s))
            .collect();
        let power_reference_mw: Vec<Vec<f64>> = (0..config.prediction_horizon)
            .map(|s| {
                let total: f64 = self
                    .offered(step + s.min(config.control_horizon - 1))
                    .iter()
                    .sum();
                (0..self.n)
                    .map(|j| {
                        let share = total * self.capacities[j] / cap_total;
                        self.b1_mw[j] * share + self.b0_mw[j] * self.servers_on[j] as f64
                    })
                    .collect()
            })
            .collect();
        MpcProblem {
            b1_mw: self.b1_mw.clone(),
            b0_mw: self.b0_mw.clone(),
            servers_on: self.servers_on.clone(),
            capacities: self.capacities.clone(),
            prev_input: prev_input.to_vec(),
            workload_forecast: forecast,
            power_reference_mw,
            tracking_multiplier: MpcProblem::uniform_tracking(self.n),
            storage: None,
        }
    }

    /// Capacity-proportional initial split of the step-0 workload.
    fn initial_input(&self) -> Vec<f64> {
        let cap_total: f64 = self.capacities.iter().sum();
        let offered = self.offered(0);
        let mut u = vec![0.0; self.n * self.c];
        for j in 0..self.n {
            for (i, &l) in offered.iter().enumerate() {
                u[j * self.c + i] = l * self.capacities[j] / cap_total;
            }
        }
        u
    }
}

/// Total predicted power over the horizon — the plan cost the gate
/// compares (uniform prices make cost proportional to energy).
fn plan_cost(plan: &idc_control::mpc::MpcPlan) -> f64 {
    plan.predicted_power_mw()
        .iter()
        .map(|row| row.iter().sum::<f64>())
        .sum()
}

#[test]
fn sharded_plans_match_monolithic_cost_on_random_fleets() {
    const STEPS: usize = 4;
    for seed in 0..8u64 {
        let fleet = RandomFleet::draw(seed);
        let shards = 1 + (seed as usize % 4).min(fleet.n - 1); // 1..=n shards
        let base = MpcConfig::default();
        let mut mono = MpcController::new(MpcConfig {
            backend: SolverBackend::BandedRiccati,
            ..base
        });
        let mut shard = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(shards),
            ..base
        });

        let mut mono_u = fleet.initial_input();
        let mut shard_u = mono_u.clone();
        for step in 0..STEPS {
            let tag = format!(
                "seed {seed} ({}x{}, {shards} shards) step {step}",
                fleet.n, fleet.c
            );
            let mono_plan = mono
                .plan(&fleet.problem(&base, step, &mono_u))
                .unwrap_or_else(|e| panic!("{tag}: monolithic solve failed: {e}"));
            let shard_plan = shard
                .plan(&fleet.problem(&base, step, &shard_u))
                .unwrap_or_else(|e| panic!("{tag}: sharded solve failed: {e}"));

            // The gate: plan cost agrees to a relative 1e-6.
            let mc = plan_cost(&mono_plan);
            let sc = plan_cost(&shard_plan);
            let rel = (mc - sc).abs() / mc.abs().max(1.0);
            assert!(rel <= 1e-6, "{tag}: cost {mc} vs {sc} (rel {rel:e})");

            // And the served split itself is consensus-close, so the two
            // closed loops cannot silently drift apart across steps.
            let scale: f64 = fleet.offered(step).iter().sum();
            if let Some(m) = within_tolerance_f64(
                "next_input",
                mono_plan.next_input(),
                shard_plan.next_input(),
                1e-5 * scale.max(1.0),
            ) {
                panic!("{tag}: {m}");
            }
            mono_u = mono_plan.next_input().to_vec();
            shard_u = shard_plan.next_input().to_vec();
        }
    }
}

#[test]
fn sharded_closed_loop_is_reproducible_across_runs() {
    let fleet = RandomFleet::draw(42);
    let base = MpcConfig::default();
    let run = |_: ()| -> Vec<Vec<f64>> {
        let mut ctl = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(2),
            ..base
        });
        let mut u = fleet.initial_input();
        (0..3)
            .map(|step| {
                let plan = ctl.plan(&fleet.problem(&base, step, &u)).expect("solve");
                u = plan.next_input().to_vec();
                u.clone()
            })
            .collect()
    };
    let a = run(());
    let b = run(());
    for (step, (x, y)) in a.iter().zip(&b).enumerate() {
        for (p, q) in x.iter().zip(y) {
            assert_eq!(p.to_bits(), q.to_bits(), "step {step} diverged");
        }
    }
}

/// Checkpoint/restore bit-identity of the sharded backend under penalty
/// retunes: after a closed loop whose residual balancer has retuned ρ, a
/// *fresh* controller (freshly built skeleton at ρ₀) restored from the
/// evolved controller's warm state must keep planning bit-identically.
/// The retunes rewrite the shard Hessians; if those rewrites were
/// incremental (`+= Δρ`) instead of absolute, the evolved Hessians would
/// carry rounding residue a rebuilt skeleton doesn't, and the two loops
/// would drift apart in the last bits — which is exactly how a restored
/// multi-week soak run used to diverge from its uninterrupted reference.
#[test]
fn restored_sharded_controller_plans_bit_identically_after_retunes() {
    // Seeds chosen so at least one draw retunes within the prefix; the
    // assert below keeps the test honest if tuning constants change.
    let mut total_retunes = 0u64;
    for seed in [7u64, 21, 42, 77] {
        let fleet = RandomFleet::draw(seed);
        let config = MpcConfig {
            backend: SolverBackend::sharded(2),
            ..MpcConfig::default()
        };
        let mut evolved = MpcController::new(config);
        let mut u = fleet.initial_input();
        for step in 0..4 {
            let plan = evolved
                .plan(&fleet.problem(&config, step, &u))
                .expect("prefix solve");
            total_retunes += plan.rho_retunes();
            u = plan.next_input().to_vec();
        }

        let mut restored = MpcController::new(config);
        restored.restore_warm_state(evolved.warm_state());
        let mut u_restored = u.clone();
        for step in 4..8 {
            let plan_e = evolved
                .plan(&fleet.problem(&config, step, &u))
                .expect("evolved solve");
            let plan_r = restored
                .plan(&fleet.problem(&config, step, &u_restored))
                .expect("restored solve");
            total_retunes += plan_e.rho_retunes();
            for (a, b) in plan_e.next_input().iter().zip(plan_r.next_input()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "seed {seed} step {step}: restored plan diverged ({a:e} vs {b:e})"
                );
            }
            u = plan_e.next_input().to_vec();
            u_restored = plan_r.next_input().to_vec();
        }
    }
    assert!(
        total_retunes > 0,
        "no penalty retunes fired — the bit-identity check above is vacuous"
    );
}
