//! Ablation: exact active-set QP vs penalized projected gradient on the
//! MPC's product-of-simplices structure (DESIGN.md decision #1), plus the
//! solve-path ladder the warm-start pipeline climbs: dense-KKT cold solve
//! → Schur-prepared cold solve → warm start from the previous solution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use idc_linalg::Matrix;
use idc_opt::projgrad::ProjectedGradientQp;
use idc_opt::qp::{QpWorkspace, QuadraticProgram};

/// `blocks` portals × 3 IDCs: minimize distance to a target allocation on
/// each portal's simplex.
fn setup(blocks: usize) -> (Matrix, Vec<f64>) {
    let n = 3 * blocks;
    let h = Matrix::diag(&vec![2.0; n]);
    let mut g = vec![0.0; n];
    for b in 0..blocks {
        g[3 * b] = -2.0; // pull everything toward IDC 0
    }
    (h, g)
}

/// The active-set QP for [`setup`], constraints included.
fn build_qp(blocks: usize) -> QuadraticProgram {
    let (h, g) = setup(blocks);
    let mut qp = QuadraticProgram::new(h, g).expect("valid");
    for b in 0..blocks {
        let mut row = vec![0.0; 3 * blocks];
        row[3 * b] = 1.0;
        row[3 * b + 1] = 1.0;
        row[3 * b + 2] = 1.0;
        qp = qp.equality(row, 1.0);
        for k in 0..3 {
            let mut nn = vec![0.0; 3 * blocks];
            nn[3 * b + k] = -1.0;
            qp = qp.inequality(nn, 0.0);
        }
    }
    qp
}

fn bench_qp(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("qp_ablation");
    group.sample_size(20);
    for blocks in [2usize, 5, 10] {
        let (h, g) = setup(blocks);
        group.bench_with_input(BenchmarkId::new("active_set", blocks), &blocks, |bch, _| {
            bch.iter(|| black_box(build_qp(blocks).solve().expect("feasible")))
        });
        // Solve-path ladder on a fixed problem: dense-KKT cold solve
        // (pre-`prepare()` path), Schur-prepared cold solve, and a warm
        // start seeded with the optimum's own active set (the best case a
        // receding-horizon shift can approach).
        let dense = build_qp(blocks);
        let mut ws = QpWorkspace::new();
        group.bench_with_input(
            BenchmarkId::new("active_set_dense_kkt", blocks),
            &blocks,
            |bch, _| bch.iter(|| black_box(dense.solve_with(&mut ws).expect("feasible"))),
        );
        let mut prepared = build_qp(blocks);
        prepared.prepare().expect("factorizable");
        group.bench_with_input(
            BenchmarkId::new("active_set_prepared", blocks),
            &blocks,
            |bch, _| bch.iter(|| black_box(prepared.solve_with(&mut ws).expect("feasible"))),
        );
        let opt = prepared.solve_with(&mut ws).expect("feasible");
        group.bench_with_input(
            BenchmarkId::new("active_set_warm", blocks),
            &blocks,
            |bch, _| {
                bch.iter(|| {
                    black_box(
                        prepared
                            .warm_start(opt.x(), opt.active_set(), &mut ws)
                            .expect("feasible"),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("projected_gradient", blocks),
            &blocks,
            |bch, _| {
                bch.iter(|| {
                    let mut pg = ProjectedGradientQp::new(h.clone(), g.clone()).expect("valid");
                    for b in 0..blocks {
                        pg = pg.simplex_block(3 * b, 3, 1.0);
                    }
                    black_box(pg.solve().expect("converges"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_qp);
criterion_main!(benches);
