//! Ablation: exact active-set QP vs penalized projected gradient on the
//! MPC's product-of-simplices structure (DESIGN.md decision #1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use idc_linalg::Matrix;
use idc_opt::projgrad::ProjectedGradientQp;
use idc_opt::qp::QuadraticProgram;

/// `blocks` portals × 3 IDCs: minimize distance to a target allocation on
/// each portal's simplex.
fn setup(blocks: usize) -> (Matrix, Vec<f64>) {
    let n = 3 * blocks;
    let h = Matrix::diag(&vec![2.0; n]);
    let mut g = vec![0.0; n];
    for b in 0..blocks {
        g[3 * b] = -2.0; // pull everything toward IDC 0
    }
    (h, g)
}

fn bench_qp(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("qp_ablation");
    group.sample_size(20);
    for blocks in [2usize, 5, 10] {
        let (h, g) = setup(blocks);
        group.bench_with_input(BenchmarkId::new("active_set", blocks), &blocks, |bch, _| {
            bch.iter(|| {
                let mut qp = QuadraticProgram::new(h.clone(), g.clone()).expect("valid");
                for b in 0..blocks {
                    let mut row = vec![0.0; 3 * blocks];
                    row[3 * b] = 1.0;
                    row[3 * b + 1] = 1.0;
                    row[3 * b + 2] = 1.0;
                    qp = qp.equality(row, 1.0);
                    for k in 0..3 {
                        let mut nn = vec![0.0; 3 * blocks];
                        nn[3 * b + k] = -1.0;
                        qp = qp.inequality(nn, 0.0);
                    }
                }
                black_box(qp.solve().expect("feasible"))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("projected_gradient", blocks),
            &blocks,
            |bch, _| {
                bch.iter(|| {
                    let mut pg =
                        ProjectedGradientQp::new(h.clone(), g.clone()).expect("valid");
                    for b in 0..blocks {
                        pg = pg.simplex_block(3 * b, 3, 1.0);
                    }
                    black_box(pg.solve().expect("converges"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_qp);
criterion_main!(benches);
