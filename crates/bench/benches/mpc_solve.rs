//! Solve-time of one condensed MPC step (the paper's eq. 42 QP) as the
//! horizons and fleet size grow, cold-started vs warm-started.
//!
//! `cold_start` resets the controller before every plan, so each
//! iteration pays the full pipeline: condensed-matrix build, QP
//! lowering, Schur-complement factorization and a cold active-set solve.
//! `warm_steady` keeps the controller state across iterations — the
//! structure cache hits and the shifted previous solution seeds the
//! active set, which is the steady-state cost of a receding-horizon run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use idc_control::mpc::{MpcConfig, MpcController, MpcProblem};

/// A synthetic fleet of `n` IDCs × `c` portals, mid-transition (load must
/// move from the last IDC to the first).
fn problem(n: usize, c: usize) -> MpcProblem {
    let per_portal = 10_000.0;
    let mut prev = vec![0.0; n * c];
    for i in 0..c {
        prev[(n - 1) * c + i] = per_portal;
    }
    MpcProblem {
        b1_mw: (0..n).map(|j| 60e-6 + 10e-6 * j as f64).collect(),
        b0_mw: vec![150e-6; n],
        servers_on: vec![20_000; n],
        capacities: vec![c as f64 * per_portal * 1.2 / n as f64 + 20_000.0; n],
        prev_input: prev,
        workload_forecast: vec![vec![per_portal; c]; 3],
        power_reference_mw: vec![(0..n).map(|j| if j == 0 { 4.0 } else { 3.0 }).collect(); 5],
        tracking_multiplier: MpcProblem::uniform_tracking(n),
        storage: None,
    }
}

fn bench_mpc(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("mpc_solve");
    // The cold-started active-set QP grows steeply with N·C; keep sample
    // counts modest so the sweep completes in minutes.
    group.sample_size(10);
    for (n, c) in [(3usize, 5usize), (5, 8), (6, 12), (8, 15)] {
        let p = problem(n, c);
        let mut controller = MpcController::new(MpcConfig::default());
        group.bench_with_input(
            BenchmarkId::new("cold_start", format!("{n}idc_x_{c}portal")),
            &p,
            |b, p| {
                b.iter(|| {
                    controller.reset();
                    black_box(controller.plan(black_box(p)).expect("feasible"))
                })
            },
        );
        let mut controller = MpcController::new(MpcConfig::default());
        controller.plan(&p).expect("feasible"); // prime cache + warm state
        group.bench_with_input(
            BenchmarkId::new("warm_steady", format!("{n}idc_x_{c}portal")),
            &p,
            |b, p| b.iter(|| black_box(controller.plan(black_box(p)).expect("feasible"))),
        );
    }
    // Horizon sweep on the paper-sized fleet (warm, steady state).
    for beta2 in [2usize, 3, 5] {
        let p = problem(3, 5);
        let mut controller = MpcController::new(MpcConfig {
            prediction_horizon: 5,
            control_horizon: beta2,
            ..MpcConfig::default()
        });
        let mut p2 = p;
        p2.workload_forecast = vec![vec![10_000.0; 5]; beta2];
        group.bench_with_input(BenchmarkId::new("control_horizon", beta2), &p2, |b, p| {
            b.iter(|| black_box(controller.plan(black_box(p)).expect("feasible")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mpc);
criterion_main!(benches);
