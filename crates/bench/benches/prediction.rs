//! Throughput of the online workload-prediction stack (paper Sec. III-D):
//! raw RLS updates and full predictor observe + multi-step forecast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use idc_timeseries::predictor::WorkloadPredictor;
use idc_timeseries::rls::RecursiveLeastSquares;
use idc_timeseries::traces::epa_like;
use rand::{rngs::StdRng, SeedableRng};

fn bench_prediction(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("prediction");
    let mut rng = StdRng::seed_from_u64(2012);
    let day = epa_like().generate(&mut rng, 1440, 60.0);

    for order in [2usize, 3, 8] {
        group.bench_with_input(
            BenchmarkId::new("rls_update_day", order),
            &order,
            |b, &p| {
                b.iter(|| {
                    let mut rls = RecursiveLeastSquares::new(p, 0.995);
                    for w in day.windows(p + 1) {
                        let (x, y) = w.split_at(p);
                        rls.update(black_box(x), y[0]);
                    }
                    black_box(rls.coefficients().to_vec())
                })
            },
        );
    }

    group.bench_function("predictor_observe_day", |b| {
        b.iter(|| {
            let mut p = WorkloadPredictor::new(3).expect("order > 0");
            for &v in &day {
                p.observe(black_box(v));
            }
            black_box(p.predict_next())
        })
    });

    group.bench_function("predictor_forecast_horizon_5", |b| {
        let mut p = WorkloadPredictor::new(3).expect("order > 0");
        for &v in &day {
            p.observe(v);
        }
        b.iter(|| black_box(p.forecast(black_box(5))))
    });
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
