//! Matrix-exponential cost for the ZOH discretization (paper eq. 23–25):
//! the nilpotent paper structure vs dense matrices of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use idc_control::discretize::discretize;
use idc_control::statespace::CostStateSpace;
use idc_linalg::{expm::expm, Matrix};

fn bench_expm(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("expm");

    // The paper's cost model: N = 3 IDCs, C = 5 portals, Ts = 30 s.
    let ss = CostStateSpace::new(
        &[43.26, 30.26, 19.06],
        &[67.5e-6, 108.0e-6, 77.14e-6],
        &[150e-6, 150e-6, 150e-6],
        5,
    )
    .expect("valid");
    group.bench_function("zoh_paper_cost_model", |b| {
        b.iter(|| black_box(discretize(black_box(&ss), 30.0 / 3600.0).expect("discretizes")))
    });

    // Dense pseudo-random matrices across the Padé degree thresholds.
    for n in [4usize, 16, 48] {
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = (((i * 31 + j * 17 + 7) % 101) as f64 / 101.0 - 0.5) * 0.6;
            if i == j {
                v - 0.2
            } else {
                v / n as f64 * 4.0
            }
        });
        group.bench_with_input(BenchmarkId::new("dense", n), &a, |b, a| {
            b.iter(|| black_box(expm(black_box(a)).expect("finite")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expm);
criterion_main!(benches);
