//! Simplex solve time for the control-reference LP (paper eq. 46).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use idc_control::reference::{optimal_reference, price_greedy_reference};
use idc_datacenter::idc::{paper_idcs, IdcConfig};
use idc_datacenter::server::ServerSpec;
use idc_opt::linprog::LinearProgram;

fn synthetic_idcs(n: usize) -> Vec<IdcConfig> {
    (0..n)
        .map(|j| {
            IdcConfig::new(
                format!("idc-{j}"),
                30_000,
                ServerSpec::new(150.0, 285.0, 1.0 + 0.25 * (j % 5) as f64).expect("valid"),
                0.001,
            )
            .expect("valid")
        })
        .collect()
}

fn bench_reference(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("reference_lp");
    // The paper's instance: 3 IDCs × 5 portals.
    let idcs = paper_idcs();
    let offered = [30_000.0, 15_000.0, 15_000.0, 20_000.0, 20_000.0];
    let prices = [43.26, 30.26, 19.06];
    group.bench_function("eq46_lp_paper_size", |b| {
        b.iter(|| {
            black_box(
                optimal_reference(black_box(&idcs), black_box(&offered), black_box(&prices))
                    .expect("feasible"),
            )
        })
    });
    group.bench_function("price_greedy_paper_size", |b| {
        b.iter(|| {
            black_box(
                price_greedy_reference(black_box(&idcs), black_box(&offered), black_box(&prices))
                    .expect("feasible"),
            )
        })
    });
    // Scaling in the number of IDCs.
    for n in [5usize, 10, 20] {
        let idcs = synthetic_idcs(n);
        let offered = vec![8_000.0; 10];
        let prices: Vec<f64> = (0..n).map(|j| 20.0 + (j as f64 * 7.3) % 40.0).collect();
        group.bench_with_input(BenchmarkId::new("eq46_lp_idcs", n), &n, |b, _| {
            b.iter(|| black_box(optimal_reference(&idcs, &offered, &prices).expect("feasible")))
        });
    }
    // A raw dense LP for the solver itself.
    group.bench_function("simplex_dense_30x60", |b| {
        b.iter(|| {
            let mut lp = LinearProgram::minimize((0..60).map(|i| ((i * 13) % 17) as f64).collect());
            for r in 0..30 {
                let row: Vec<f64> = (0..60)
                    .map(|i| if (i + r) % 4 == 0 { 1.0 } else { 0.0 })
                    .collect();
                lp = lp.inequality(row, 100.0 + r as f64);
            }
            black_box(lp.solve().expect("bounded"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reference);
criterion_main!(benches);
