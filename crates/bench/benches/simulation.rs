//! End-to-end simulation throughput: one full Fig. 4 window per iteration
//! (25 control periods, each with a reference LP + condensed MPC QP).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
use idc_core::scenario::{peak_shaving_scenario, smoothing_scenario};
use idc_core::simulation::Simulator;

fn bench_simulation(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("simulation");
    group.sample_size(20);
    let sim = Simulator::new();

    let scenario = smoothing_scenario();
    group.bench_function("fig4_window_mpc", |b| {
        b.iter(|| {
            let mut policy = MpcPolicy::paper_tuned(&scenario).expect("valid tuning");
            black_box(sim.run(&scenario, &mut policy).expect("runs"))
        })
    });
    group.bench_function("fig4_window_optimal", |b| {
        b.iter(|| {
            let mut policy = OptimalPolicy::new(ReferenceKind::PriceGreedy);
            black_box(sim.run(&scenario, &mut policy).expect("runs"))
        })
    });
    let peak = peak_shaving_scenario();
    group.bench_function("fig6_window_mpc", |b| {
        b.iter(|| {
            let mut policy = MpcPolicy::paper_tuned(&peak).expect("valid tuning");
            black_box(sim.run(&peak, &mut policy).expect("runs"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
