//! Shared utilities for the reproduction harness binaries and Criterion
//! benches. The actual figure/table regeneration lives in `src/bin/`.

#![warn(missing_docs)]

pub mod repro;
pub mod series;
