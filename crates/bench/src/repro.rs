//! Shared machinery for the figure-reproduction binaries.

use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
use idc_core::scenario::Scenario;
use idc_core::simulation::{SimulationResult, Simulator};

/// IDC display names in fleet order.
pub const IDC_NAMES: [&str; 3] = ["Michigan", "Minnesota", "Wisconsin"];

/// Both policies run through one scenario.
#[derive(Debug, Clone)]
pub struct FigureRuns {
    /// The paper's dynamic (MPC) controller.
    pub mpc: SimulationResult,
    /// The plotted "optimal method" baseline (price-greedy).
    pub opt: SimulationResult,
}

/// Runs the MPC and the plotted-optimal baseline through `scenario`.
///
/// # Panics
///
/// Panics if either run fails — the canned paper scenarios are known-good,
/// so a failure indicates a library regression.
pub fn run_both(scenario: &Scenario) -> FigureRuns {
    let sim = Simulator::new();
    let mpc = sim
        .run(
            scenario,
            &mut MpcPolicy::paper_tuned(scenario).expect("paper tuning is valid"),
        )
        .expect("MPC run succeeds on paper scenario");
    let opt = sim
        .run(
            scenario,
            &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
        )
        .expect("baseline run succeeds on paper scenario");
    FigureRuns { mpc, opt }
}

/// Prints one sub-figure (per-IDC power): `min | control | optimal`.
pub fn print_power_subfigure(title: &str, runs: &FigureRuns, idc: usize) {
    println!("## {title}");
    println!("{:>6} {:>14} {:>14}", "min", "control MW", "optimal MW");
    for (k, t) in runs.mpc.times_min().iter().enumerate() {
        println!(
            "{t:>6.1} {:>14.4} {:>14.4}",
            runs.mpc.power_mw(idc)[k],
            runs.opt.power_mw(idc)[k]
        );
    }
    println!();
}

/// Prints one sub-figure (per-IDC servers ON): `min | control | optimal`.
pub fn print_server_subfigure(title: &str, runs: &FigureRuns, idc: usize) {
    println!("## {title}");
    println!("{:>6} {:>14} {:>14}", "min", "control on", "optimal on");
    for (k, t) in runs.mpc.times_min().iter().enumerate() {
        println!(
            "{t:>6.1} {:>14} {:>14}",
            runs.mpc.servers(idc)[k],
            runs.opt.servers(idc)[k]
        );
    }
    println!();
}

/// Prints the paper-vs-measured endpoint summary for one figure family.
pub fn print_endpoint_summary(runs: &FigureRuns, paper_start_mw: [f64; 3], paper_end_mw: [f64; 3]) {
    println!("paper vs measured (optimal-method operating points, MW):");
    for (j, name) in IDC_NAMES.iter().enumerate() {
        let first = runs.opt.power_mw(j).first().copied().unwrap_or(f64::NAN);
        let last = runs.opt.power_mw(j).last().copied().unwrap_or(f64::NAN);
        println!(
            "  {name:>10}: pre-flip paper {:>8.4} measured {:>8.4} | post-flip paper {:>8.4} measured {:>8.4}",
            paper_start_mw[j], first, paper_end_mw[j], last
        );
    }
    let worst_mpc = (0..3)
        .map(|j| runs.mpc.power_stats(j).expect("nonempty").max_abs_step_mw)
        .fold(0.0f64, f64::max);
    let worst_opt = (0..3)
        .map(|j| runs.opt.power_stats(j).expect("nonempty").max_abs_step_mw)
        .fold(0.0f64, f64::max);
    println!(
        "worst single power jump: MPC {worst_mpc:.3} MW vs optimal {worst_opt:.3} MW ({:.0}% reduction)",
        100.0 * (1.0 - worst_mpc / worst_opt)
    );
    println!(
        "electricity cost over the window: MPC ${:.2} vs optimal ${:.2} ({:+.2}%)",
        runs.mpc.total_cost(),
        runs.opt.total_cost(),
        100.0 * (runs.mpc.total_cost() - runs.opt.total_cost()) / runs.opt.total_cost()
    );
    println!();
}
