//! Table/series pretty-printing shared by the reproduction binaries.

/// Prints a named time series as aligned `t, value` rows.
pub fn print_series(title: &str, times: &[f64], values: &[f64]) {
    println!("## {title}");
    for (t, v) in times.iter().zip(values) {
        println!("{t:>10.2}  {v:>14.6}");
    }
    println!();
}

/// Prints several same-length columns side by side with a header row.
///
/// # Panics
///
/// Panics if column lengths differ.
pub fn print_columns(title: &str, headers: &[&str], columns: &[&[f64]]) {
    assert!(!columns.is_empty(), "need at least one column");
    let len = columns[0].len();
    assert!(
        columns.iter().all(|c| c.len() == len),
        "all columns must have the same length"
    );
    assert_eq!(headers.len(), columns.len(), "one header per column");
    println!("## {title}");
    println!(
        "{}",
        headers
            .iter()
            .map(|h| format!("{h:>16}"))
            .collect::<String>()
    );
    for i in 0..len {
        let row: String = columns.iter().map(|c| format!("{:>16.6}", c[i])).collect();
        println!("{row}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_series_handles_empty_and_matched_lengths() {
        // Smoke: must not panic.
        print_series("empty", &[], &[]);
        print_series("two", &[0.0, 1.0], &[10.0, 20.0]);
    }

    #[test]
    fn print_columns_accepts_equal_lengths() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        print_columns("t", &["a", "b"], &[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn print_columns_rejects_ragged_input() {
        let a = [1.0, 2.0];
        let b = [3.0];
        print_columns("t", &["a", "b"], &[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "one header per column")]
    fn print_columns_rejects_missing_headers() {
        let a = [1.0];
        print_columns("t", &["a", "b"], &[&a]);
    }
}
