//! Fig. 7(a–c) — number of turned-ON servers under peak shaving.
//!
//! Run with: `cargo run -p idc-bench --bin fig7_servers_peak_shaving`

use idc_bench::repro::{print_server_subfigure, run_both, IDC_NAMES};
use idc_core::scenario::peak_shaving_scenario;

fn main() {
    let scenario = peak_shaving_scenario();
    let budgets = scenario.budgets().expect("scenario has budgets").clone();
    let runs = run_both(&scenario);
    for (j, name) in IDC_NAMES.iter().enumerate() {
        print_server_subfigure(
            &format!(
                "Fig. 7({}) — servers ON, {name}",
                char::from(b'a' + j as u8)
            ),
            &runs,
            j,
        );
    }
    println!("budget-implied server caps (budget / 285 W):");
    for (j, name) in IDC_NAMES.iter().enumerate() {
        let cap = (budgets.budget_mw(j) / 285e-6).floor();
        println!(
            "  {name:>10}: cap {:>6.0} servers | MPC final {:>6} | optimal final {:>6}",
            cap,
            runs.mpc.servers(j).last().expect("nonempty run"),
            runs.opt.servers(j).last().expect("nonempty run"),
        );
    }
}
