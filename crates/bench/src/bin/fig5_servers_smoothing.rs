//! Fig. 5(a–c) — number of turned-ON servers under power-demand smoothing.
//!
//! Paper values: 7 500 / 40 000 / 20 000 servers at 6H; the optimal method
//! jumps to 20 000 / 40 000 (no jump) / 5 715 at 7H while the control
//! method switches servers gradually.
//!
//! Run with: `cargo run -p idc-bench --bin fig5_servers_smoothing`

use idc_bench::repro::{print_server_subfigure, run_both, IDC_NAMES};
use idc_core::scenario::smoothing_scenario;

fn main() {
    let runs = run_both(&smoothing_scenario());
    for (j, name) in IDC_NAMES.iter().enumerate() {
        print_server_subfigure(
            &format!(
                "Fig. 5({}) — servers ON, {name}",
                char::from(b'a' + j as u8)
            ),
            &runs,
            j,
        );
    }
    let paper_start = [7_500u64, 40_000, 20_000];
    let paper_end = [20_000u64, 40_000, 5_715];
    println!("paper vs measured (optimal-method server counts):");
    for (j, name) in IDC_NAMES.iter().enumerate() {
        println!(
            "  {name:>10}: pre-flip paper {:>6} measured {:>6} | post-flip paper {:>6} measured {:>6}",
            paper_start[j],
            runs.opt.servers(j).first().expect("nonempty run"),
            paper_end[j],
            runs.opt.servers(j).last().expect("nonempty run"),
        );
    }
    let worst = |r: &idc_core::simulation::SimulationResult, j: usize| {
        r.servers(j)
            .windows(2)
            .map(|w| w[1].abs_diff(w[0]))
            .max()
            .unwrap_or(0)
    };
    for (j, name) in IDC_NAMES.iter().enumerate() {
        println!(
            "  {name:>10}: worst per-step switch — MPC {:>6} servers, optimal {:>6}",
            worst(&runs.mpc, j),
            worst(&runs.opt, j)
        );
    }
}
