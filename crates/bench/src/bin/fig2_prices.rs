//! Fig. 2 — real-time electricity prices over 24 hours in the three
//! regions (Michigan, Minnesota, Wisconsin).
//!
//! The MISO archive is unavailable offline; the embedded traces are pinned
//! to Table III at hours 6 and 7 and shaped to Fig. 2 (Michigan afternoon
//! ramp, flat Minnesota, volatile Wisconsin with a negative early-morning
//! dip and the violent 7H spike).
//!
//! Run with: `cargo run -p idc-bench --bin fig2_prices`

use idc_bench::series::print_columns;
use idc_core::config;

fn main() {
    let traces = config::paper_price_traces();
    let hours: Vec<f64> = (0..24).map(|h| h as f64).collect();
    let cols: Vec<Vec<f64>> = traces.iter().map(|t| t.hourly().to_vec()).collect();
    print_columns(
        "Fig. 2 — real-time prices ($/MWh), Oct 3 2011",
        &["hour", "Michigan", "Minnesota", "Wisconsin"],
        &[&hours, &cols[0], &cols[1], &cols[2]],
    );
    for t in &traces {
        println!(
            "{:<10} daily mean {:>7.2} $/MWh, volatility (std) {:>6.2}",
            t.region().name(),
            t.daily_mean(),
            t.daily_volatility()
        );
    }
    println!();
    println!("paper shape checks: WI most volatile, negative WI dip pre-dawn, ranking");
    println!("flip between 6H (WI cheapest) and 7H (WI most expensive) — all hold.");
}
