//! `verify_invariants` — the testkit invariant sweep as a CI gate.
//!
//! Replays every scenario the repo ships under every closed-loop policy
//! through the validating simulator, checks the paper's trajectory
//! invariants (conservation eq. 9, `λij ≥ 0`, M/M/n latency, budget
//! margin, accumulated-cost consistency), prints one timed row per cell,
//! and exits nonzero if any *hard* invariant is violated. Budget overshoot
//! is soft — MPC transients may briefly exceed `P_rb` — so it is reported
//! (worst margin, MW) rather than gated on.
//!
//! Run with: `cargo run --release -p idc-bench --bin verify_invariants`
//!
//! `--no-timing` replaces the wall-clock columns with `-` so the output
//! is byte-reproducible (used by `repro_all`, whose combined output must
//! be identical across runs). `--seed N` overrides the stochastic
//! scenarios' workload seed (default 2012) and `--steps N` truncates or
//! extends every scenario to N sampling periods (default: each scenario's
//! own length) — the defaults leave the golden output unchanged.
//! `--trace-out PATH` records per-cell timings (and the MPC spans inside
//! each cell) through the flight recorder and writes a Chrome trace-event
//! file on exit; it does not change the console output, so it composes
//! with `--no-timing`.

use std::time::Instant;

use idc_core::policy::{MpcPolicy, OptimalPolicy, Policy, ReferenceKind, StaticProportionalPolicy};
use idc_core::scenario::{
    demand_charge_scenario, diurnal_day_scenario, mmpp_hour_scenario, noisy_day_scenario,
    peak_shaving_scenario, smoothing_scenario, smoothing_scenario_table_ii,
    storage_peak_shaving_scenario, storage_plus_shifting_scenario, vicious_cycle_scenario,
    Scenario,
};
use idc_core::simulation::Simulator;
use idc_testkit::invariants::{check_run, Tolerances};

fn scenarios(seed: u64, steps: Option<usize>) -> Vec<Scenario> {
    let base = vec![
        smoothing_scenario(),
        peak_shaving_scenario(),
        smoothing_scenario_table_ii(),
        vicious_cycle_scenario(0.9),
        noisy_day_scenario(seed),
        diurnal_day_scenario(seed),
        mmpp_hour_scenario(seed),
        storage_peak_shaving_scenario(),
        demand_charge_scenario(seed),
        storage_plus_shifting_scenario(seed),
    ];
    match steps {
        Some(n) => base.into_iter().map(|s| s.with_num_steps(n)).collect(),
        None => base,
    }
}

/// Reads the value of `--<flag> N` from `args`, or `default` when absent.
/// Exits with a message on an unparsable value.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a numeric value");
                std::process::exit(2);
            }),
        None => default,
    }
}

fn policies(scenario: &Scenario) -> Vec<(&'static str, Box<dyn Policy>)> {
    vec![
        (
            "mpc",
            Box::new(MpcPolicy::paper_tuned(scenario).expect("mpc policy")) as Box<dyn Policy>,
        ),
        (
            "optimal",
            Box::new(OptimalPolicy::new(ReferenceKind::PriceGreedy)),
        ),
        ("lp", Box::new(OptimalPolicy::new(ReferenceKind::LpOptimal))),
        ("static", Box::new(StaticProportionalPolicy::new())),
    ]
}

/// Reads `--trace-out PATH` and installs the global flight recorder when
/// present.
fn trace_flag(args: &[String]) -> Option<String> {
    let i = args.iter().position(|a| a == "--trace-out")?;
    let path = args.get(i + 1).cloned().unwrap_or_else(|| {
        eprintln!("--trace-out needs a path");
        std::process::exit(2);
    });
    idc_obs::install_global_recorder(1 << 20);
    Some(path)
}

fn main() -> Result<(), idc_core::Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let timing = !args.iter().any(|a| a == "--no-timing");
    let trace_out = trace_flag(&args);
    let seed = flag_value(&args, "--seed", 2012u64);
    let steps = args
        .iter()
        .any(|a| a == "--steps")
        .then(|| flag_value(&args, "--steps", 0usize));
    println!("## verify_invariants — invariant sweep, all scenarios × policies");
    println!(
        "{:<42} {:>8} {:>8} {:>6} {:>6} {:>16} {:>9}",
        "scenario", "policy", "checks", "soft", "hard", "budget margin MW", "ms"
    );
    let mut hard_failures = Vec::new();
    let total = Instant::now();
    for scenario in scenarios(seed, steps) {
        for (label, mut policy) in policies(&scenario) {
            let cell_span =
                idc_obs::Span::enter_cat(format!("verify.{}/{label}", scenario.name()), "verify");
            let t = Instant::now();
            let result = Simulator::with_validation().run(&scenario, policy.as_mut())?;
            let report = check_run(&scenario, &result, &Tolerances::default());
            let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
            drop(cell_span);
            let soft = report.violations.len() - report.hard_violations();
            let hard = report.hard_violations();
            let margin = report
                .worst_budget_margin_mw
                .map_or_else(|| "-".into(), |(_, _, m)| format!("{m:+.4}"));
            let ms = if timing {
                format!("{elapsed_ms:.1}")
            } else {
                "-".into()
            };
            println!(
                "{:<42} {:>8} {:>8} {:>6} {:>6} {:>16} {:>9}",
                scenario.name(),
                label,
                report.checks,
                soft,
                hard,
                margin,
                ms
            );
            if hard > 0 {
                eprintln!("{}", report.render());
                hard_failures.push(format!("{} / {label}", scenario.name()));
            }
        }
    }
    if timing {
        println!("sweep total: {:.1} ms", total.elapsed().as_secs_f64() * 1e3);
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, idc_obs::export_global_trace())
            .map_err(|e| idc_core::Error::Config(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    if hard_failures.is_empty() {
        println!("invariant sweep OK");
        Ok(())
    } else {
        Err(idc_core::Error::Config(format!(
            "hard invariant violations in: {}",
            hard_failures.join(", ")
        )))
    }
}
