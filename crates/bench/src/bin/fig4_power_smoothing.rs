//! Fig. 4(a–c) — power-demand smoothing: per-IDC power under the dynamic
//! (MPC) controller vs the plotted optimal method across the 6H→7H price
//! flip.
//!
//! Paper values: at 6H the fleet sits at 2.1375 / 11.4 / 5.7 MW; the
//! optimal method jumps to 5.7 / 11.4 / 1.628775 MW at 7H while the
//! control method ramps smoothly.
//!
//! Run with: `cargo run -p idc-bench --bin fig4_power_smoothing`

use idc_bench::repro::{print_endpoint_summary, print_power_subfigure, run_both, IDC_NAMES};
use idc_core::scenario::smoothing_scenario;

fn main() {
    let runs = run_both(&smoothing_scenario());
    for (j, name) in IDC_NAMES.iter().enumerate() {
        print_power_subfigure(
            &format!("Fig. 4({}) — power, {name}", char::from(b'a' + j as u8)),
            &runs,
            j,
        );
    }
    print_endpoint_summary(&runs, [2.1375, 11.4, 5.7], [5.7, 11.4, 1.628775]);
}
