//! Extension — the monetary value of peak shaving under forward contracts
//! (paper Sec. I: volatile, budget-violating demand forecloses "price
//! rebates by signing up advance-contracts" and triggers penalties \[10\]).
//!
//! Each IDC signs a take-or-pay block contract whose baseline equals its
//! Sec. V-C grid power budget (5.13 / 10.26 / 4.275 MW): the block is
//! bought at a 10 % discount to spot, consumption above the block pays a
//! 2× premium. The peak-shaving MPC tracks its budgets and pays strike
//! prices; the optimal baseline exceeds two of the three blocks at almost
//! every step and pays the premium — turning Fig. 6's physical violation
//! into dollars.
//!
//! Run with: `cargo run -p idc-bench --bin ext_hedging`

use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
use idc_core::scenario::peak_shaving_scenario;
use idc_core::simulation::{SimulationResult, Simulator};
use idc_market::contract::{spot_trajectory_cost, ForwardContract};

const DISCOUNT: f64 = 0.10;
const PREMIUM: f64 = 2.0;

fn costs(run: &SimulationResult, budgets: &[f64], ts_hours: f64) -> (f64, f64) {
    let mut spot = 0.0;
    let mut contracted = 0.0;
    for j in 0..run.num_idcs() {
        let power = run.power_mw(j);
        let prices: Vec<f64> = run.prices().iter().map(|p| p[j]).collect();
        spot += spot_trajectory_cost(power, &prices, ts_hours);
        let contract = ForwardContract::new(budgets[j], DISCOUNT, PREMIUM).expect("valid terms");
        contracted += contract.trajectory_cost(power, &prices, ts_hours);
    }
    (spot, contracted)
}

fn main() -> Result<(), idc_core::Error> {
    let scenario = peak_shaving_scenario();
    let budgets = scenario.budgets().expect("scenario has budgets").clone();
    let ts = scenario.ts_hours();
    let sim = Simulator::new();
    let mpc = sim.run(&scenario, &mut MpcPolicy::paper_tuned(&scenario)?)?;
    let opt = sim.run(
        &scenario,
        &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
    )?;

    println!("## extension — contract value of peak shaving (Fig. 6 scenario)");
    println!(
        "block = grid budget {:?} MW, {:.0}% strike discount, {PREMIUM}x exceedance premium",
        budgets.as_slice(),
        DISCOUNT * 100.0
    );
    println!();
    let (mpc_spot, mpc_hedged) = costs(&mpc, budgets.as_slice(), ts);
    let (opt_spot, opt_hedged) = costs(&opt, budgets.as_slice(), ts);
    println!(
        "{:>28} {:>12} {:>14} {:>22}",
        "policy", "spot $", "contracted $", "premium exposure $"
    );
    for (name, spot, hedged) in [
        ("dynamic control (MPC)", mpc_spot, mpc_hedged),
        ("optimal (price-greedy)", opt_spot, opt_hedged),
    ] {
        println!(
            "{name:>28} {spot:>12.2} {hedged:>14.2} {:>22.2}",
            hedged - spot * (1.0 - DISCOUNT)
        );
    }
    println!();
    println!(
        "contracted-cost advantage of peak shaving: {:.2}% (spot-only gap was {:+.2}%)",
        100.0 * (opt_hedged - mpc_hedged) / opt_hedged,
        100.0 * (mpc_spot - opt_spot) / opt_spot,
    );
    println!("under pure spot the smoothing MPC costs more; once the budget is a contracted");
    println!("block with an exceedance premium, the ranking flips — the paper's economic");
    println!("motivation for peak shaving, quantified.");
    Ok(())
}
