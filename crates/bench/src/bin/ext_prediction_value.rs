//! Extension — the value of workload prediction (paper Sec. III-D's
//! motivation, quantified).
//!
//! Runs the diurnal day twice with identical MPC tuning, once with the
//! anticipatory reference (re-solved at each prediction step's AR+RLS
//! forecast, the paper's design) and once with the no-prediction ablation
//! (current reference held across the horizon). Reports cost, tracking
//! lag and demand volatility.
//!
//! Run with: `cargo run -p idc-bench --bin ext_prediction_value`

use idc_core::policy::{MpcPolicy, MpcPolicyConfig, OptimalPolicy, ReferenceKind};
use idc_core::scenario::diurnal_day_scenario;
use idc_core::simulation::{SimulationResult, Simulator};

fn summarize(name: &str, run: &SimulationResult, opt_cost: f64) {
    let vol = (0..run.num_idcs())
        .map(|j| run.power_stats(j).expect("nonempty").mean_abs_step_mw)
        .sum::<f64>();
    let jump = (0..run.num_idcs())
        .map(|j| run.power_stats(j).expect("nonempty").max_abs_step_mw)
        .fold(0.0f64, f64::max);
    println!(
        "{name:>24}: cost ${:>9.2} ({:+.3}% vs optimal) | volatility {:.4} MW/step | worst jump {:.3} MW",
        run.total_cost(),
        100.0 * (run.total_cost() - opt_cost) / opt_cost,
        vol,
        jump
    );
}

fn main() -> Result<(), idc_core::Error> {
    let scenario = diurnal_day_scenario(2012);
    let sim = Simulator::new();
    let opt = sim.run(
        &scenario,
        &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
    )?;

    println!("## extension — value of workload prediction (diurnal day)");
    let mut anticipatory = MpcPolicy::new(MpcPolicyConfig::default())?;
    let with = sim.run(&scenario, &mut anticipatory)?;
    summarize("anticipatory (paper)", &with, opt.total_cost());

    let mut held = MpcPolicy::new(MpcPolicyConfig {
        anticipatory_reference: false,
        ..MpcPolicyConfig::default()
    })?;
    let without = sim.run(&scenario, &mut held)?;
    summarize("held reference", &without, opt.total_cost());

    println!();
    println!(
        "anticipation changes the daily bill by {:+.3}% at equal smoothing budgets.",
        100.0 * (with.total_cost() - without.total_cost()) / without.total_cost()
    );
    println!("negative result worth knowing: with a 30 s–5 min control period and a 5-step");
    println!("horizon, the diurnal ramp moves so little within the horizon that re-solving");
    println!("the reference on AR+RLS forecasts adds noise, not value — the predictor's");
    println!("real role in this controller is the conservation constraint's one-step");
    println!("forecast, not long-horizon reference anticipation.");
    Ok(())
}
