//! Runs every table/figure reproduction (the contents of EXPERIMENTS.md
//! are generated from this output).
//!
//! The reproductions are independent processes, so they run concurrently;
//! each child's output is captured whole and printed in the fixed bin
//! order below, which makes the combined output byte-identical to a
//! sequential run regardless of how the children are scheduled.
//!
//! Run with: `cargo run -p idc-bench --bin repro_all`

use std::process::Command;
use std::thread;

fn main() {
    let bins = [
        "tables",
        "fig2_prices",
        "fig3_prediction",
        "fig4_power_smoothing",
        "fig5_servers_smoothing",
        "fig6_peak_shaving",
        "fig7_servers_peak_shaving",
        "ext_vicious_cycle",
        "ext_diurnal_day",
        "ext_weight_ablation",
        "ext_two_time_scale",
        "ext_delay_tolerant",
        "ext_hedging",
        "ext_green_energy",
        "ext_prediction_value",
        "verify_invariants",
    ];
    let own = std::env::current_exe().expect("own path");
    thread::scope(|scope| {
        // Launch everything up front; `output()` drains each child's pipes
        // on its own thread so no child ever blocks on a full pipe.
        let handles: Vec<_> = bins
            .iter()
            .map(|bin| {
                let path = own.with_file_name(bin);
                scope.spawn(move || {
                    let mut cmd = Command::new(path);
                    if *bin == "verify_invariants" {
                        // Wall-clock columns would break the byte-identical
                        // combined-output guarantee.
                        cmd.arg("--no-timing");
                    }
                    cmd.output()
                })
            })
            .collect();
        // Print in launch order — completion order is scheduling noise.
        for (bin, handle) in bins.iter().zip(handles) {
            println!("\n================================================================");
            println!("==== {bin}");
            println!("================================================================");
            match handle.join().expect("runner thread never panics") {
                Ok(out) => {
                    print!("{}", String::from_utf8_lossy(&out.stdout));
                    eprint!("{}", String::from_utf8_lossy(&out.stderr));
                    if !out.status.success() {
                        eprintln!("{bin} exited with {}", out.status);
                    }
                }
                Err(e) => eprintln!(
                    "failed to launch {bin}: {e} (build with `cargo build -p idc-bench --bins` first)"
                ),
            }
        }
    });
}
