//! Runs every table/figure reproduction in sequence (the contents of
//! EXPERIMENTS.md are generated from this output).
//!
//! Run with: `cargo run -p idc-bench --bin repro_all`

use std::process::Command;

fn main() {
    let bins = [
        "tables",
        "fig2_prices",
        "fig3_prediction",
        "fig4_power_smoothing",
        "fig5_servers_smoothing",
        "fig6_peak_shaving",
        "fig7_servers_peak_shaving",
        "ext_vicious_cycle",
        "ext_diurnal_day",
        "ext_weight_ablation",
        "ext_two_time_scale",
        "ext_delay_tolerant",
        "ext_hedging",
        "ext_green_energy",
        "ext_prediction_value",
    ];
    for bin in bins {
        println!("\n================================================================");
        println!("==== {bin}");
        println!("================================================================");
        let status = Command::new(std::env::current_exe().expect("own path").with_file_name(bin))
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("failed to launch {bin}: {e} (build with `cargo build -p idc-bench --bins` first)"),
        }
    }
}
