//! Extension — a full day with diurnal workload and hourly price changes:
//! the predictor, sleep loop and MPC all working at once.
//!
//! Prints hourly snapshots of total fleet power, per-IDC shares, cost and
//! compares the MPC day against the optimal baseline's.
//!
//! Run with: `cargo run -p idc-bench --bin ext_diurnal_day`

use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
use idc_core::scenario::diurnal_day_scenario;
use idc_core::simulation::Simulator;

fn main() -> Result<(), idc_core::Error> {
    let scenario = diurnal_day_scenario(2012);
    let sim = Simulator::new();
    let mpc = sim.run(&scenario, &mut MpcPolicy::paper_tuned(&scenario)?)?;
    let opt = sim.run(
        &scenario,
        &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
    )?;

    println!("## extension — diurnal day (hourly snapshots)");
    println!(
        "{:>4} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "hour", "MPC tot MW", "opt tot MW", "MI MW", "MN MW", "WI MW"
    );
    let steps_per_hour = 12; // 5-minute sampling
    let mpc_total = mpc.total_power_mw();
    let opt_total = opt.total_power_mw();
    for h in 0..24 {
        let k = h * steps_per_hour;
        println!(
            "{h:>4} {:>12.3} {:>12.3} {:>10.3} {:>10.3} {:>10.3}",
            mpc_total[k],
            opt_total[k],
            mpc.power_mw(0)[k],
            mpc.power_mw(1)[k],
            mpc.power_mw(2)[k],
        );
    }
    println!();
    let vol = |r: &idc_core::simulation::SimulationResult| {
        (0..3)
            .map(|j| r.power_stats(j).expect("nonempty").mean_abs_step_mw)
            .sum::<f64>()
    };
    println!(
        "daily cost: MPC ${:.2} vs optimal ${:.2} ({:+.2}%)",
        mpc.total_cost(),
        opt.total_cost(),
        100.0 * (mpc.total_cost() - opt.total_cost()) / opt.total_cost()
    );
    println!(
        "fleet demand volatility (Σ mean |ΔP|): MPC {:.4} vs optimal {:.4} MW/step",
        vol(&mpc),
        vol(&opt)
    );
    let jump = |r: &idc_core::simulation::SimulationResult| {
        (0..3)
            .map(|j| r.power_stats(j).expect("nonempty").max_abs_step_mw)
            .fold(0.0f64, f64::max)
    };
    println!(
        "worst single power jump: MPC {:.3} vs optimal {:.3} MW",
        jump(&mpc),
        jump(&opt)
    );
    println!(
        "request volume shed by admission control: MPC {:.4}% / optimal {:.4}%",
        100.0 * mpc.shed_fraction(),
        100.0 * opt.shed_fraction()
    );
    println!(
        "latency-bound compliance: MPC {:.2}% vs optimal {:.2}%",
        100.0 * mpc.latency_ok_fraction(),
        100.0 * opt.latency_ok_fraction()
    );
    Ok(())
}
