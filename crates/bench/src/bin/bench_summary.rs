//! `bench_summary` — machine-readable before/after numbers for the
//! warm-started MPC solve pipeline, written to `BENCH_mpc.json`.
//!
//! Two measurement families, both on the synthetic price-flip fleets of
//! `ext_scaling`:
//!
//! * **single_step** — median wall-clock of one `MpcController::plan`
//!   call, cold (controller reset before every call, so the structure
//!   cache rebuilds and the QP solves from scratch) vs warm (state kept,
//!   the steady-state cost of a receding-horizon run).
//! * **end_to_end** — full simulated price-flip window through
//!   `MpcPolicy`, `solver_reuse: false` vs `true`, including the
//!   controller's own warm/cold solve accounting and the relative cost
//!   difference between the two trajectories (the QP is strictly convex,
//!   so both modes land on the same plan up to solver rounding).
//!
//! Run with:
//! `cargo run --release -p idc-bench --bin bench_summary [-- <output.json>]`

use std::time::Instant;

use idc_control::mpc::{MpcConfig, MpcController, MpcProblem};
use idc_core::policy::{MpcPolicy, MpcPolicyConfig};
use idc_core::scenario::{PricingSpec, Scenario};
use idc_core::simulation::Simulator;
use idc_datacenter::fleet::IdcFleet;
use idc_datacenter::idc::IdcConfig;
use idc_datacenter::portal::FrontEndPortal;
use idc_datacenter::server::ServerSpec;
use idc_market::region::Region;
use idc_market::rtp::TracePricing;
use idc_market::trace::PriceTrace;

const SIZES: [(usize, usize); 4] = [(3, 5), (4, 8), (6, 12), (8, 15)];
const SINGLE_STEP_REPS: usize = 9;

/// A synthetic fleet of `n` IDCs × `c` portals sized like the paper's
/// (same construction as `ext_scaling`).
fn synthetic(n: usize, c: usize) -> (IdcFleet, Vec<PriceTrace>) {
    let idcs: Vec<IdcConfig> = (0..n)
        .map(|j| {
            IdcConfig::new(
                format!("idc-{j}"),
                30_000,
                ServerSpec::new(150.0, 285.0, 1.25 + 0.25 * (j % 4) as f64).expect("valid"),
                1.0,
            )
            .expect("valid")
        })
        .collect();
    let per_portal = idcs.iter().map(|i| i.max_workload()).sum::<f64>() * 0.6 / c as f64;
    let portals: Vec<FrontEndPortal> = (0..c)
        .map(|i| FrontEndPortal::new(format!("portal-{i}"), per_portal).expect("valid"))
        .collect();
    let traces: Vec<PriceTrace> = (0..n)
        .map(|j| {
            let base = 25.0 + (j as f64 * 13.7) % 30.0;
            let hourly: Vec<f64> = (0..24)
                .map(|h| {
                    if h >= 7 {
                        base + ((j as f64 * 31.1) % 45.0) - 20.0
                    } else {
                        base
                    }
                })
                .collect();
            PriceTrace::new(Region::new(j, format!("region-{j}")), hourly).expect("24 values")
        })
        .collect();
    (IdcFleet::new(portals, idcs).expect("non-empty"), traces)
}

/// One mid-transition MPC step for the synthetic fleet (same construction
/// as the `mpc_solve` bench).
fn step_problem(n: usize, c: usize) -> MpcProblem {
    let per_portal = 10_000.0;
    let mut prev = vec![0.0; n * c];
    for i in 0..c {
        prev[(n - 1) * c + i] = per_portal;
    }
    MpcProblem {
        b1_mw: (0..n).map(|j| 60e-6 + 10e-6 * j as f64).collect(),
        b0_mw: vec![150e-6; n],
        servers_on: vec![20_000; n],
        capacities: vec![c as f64 * per_portal * 1.2 / n as f64 + 20_000.0; n],
        prev_input: prev,
        workload_forecast: vec![vec![per_portal; c]; 3],
        power_reference_mw: vec![(0..n).map(|j| if j == 0 { 4.0 } else { 3.0 }).collect(); 5],
        tracking_multiplier: MpcProblem::uniform_tracking(n),
    }
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct SingleStepRow {
    n: usize,
    c: usize,
    vars: usize,
    cold_ms: f64,
    warm_ms: f64,
}

struct EndToEndRow {
    n: usize,
    c: usize,
    vars: usize,
    cold_ms_per_step: f64,
    warm_ms_per_step: f64,
    warm_solve_fraction: f64,
    cost_rel_diff: f64,
}

fn measure_single_step(n: usize, c: usize) -> SingleStepRow {
    let p = step_problem(n, c);
    let mut controller = MpcController::new(MpcConfig::default());
    let mut cold = Vec::with_capacity(SINGLE_STEP_REPS);
    for _ in 0..SINGLE_STEP_REPS {
        controller.reset();
        let start = Instant::now();
        std::hint::black_box(controller.plan(&p).expect("feasible"));
        cold.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let mut controller = MpcController::new(MpcConfig::default());
    controller.plan(&p).expect("feasible"); // prime cache + warm state
    let mut warm = Vec::with_capacity(SINGLE_STEP_REPS);
    for _ in 0..SINGLE_STEP_REPS {
        let start = Instant::now();
        std::hint::black_box(controller.plan(&p).expect("feasible"));
        warm.push(start.elapsed().as_secs_f64() * 1e3);
    }
    SingleStepRow {
        n,
        c,
        vars: n * c * controller.config().control_horizon,
        cold_ms: median_ms(&mut cold),
        warm_ms: median_ms(&mut warm),
    }
}

fn measure_end_to_end(n: usize, c: usize) -> Result<EndToEndRow, idc_core::Error> {
    let sim = Simulator::new();
    let ts = 30.0 / 3600.0;
    let mut per_mode = [0.0f64; 2];
    let mut costs = [0.0f64; 2];
    let mut warm_fraction = 0.0;
    for (mode, solver_reuse) in [false, true].into_iter().enumerate() {
        let (fleet, traces) = synthetic(n, c);
        let scenario = Scenario::new(
            format!("scale-{n}x{c}"),
            fleet,
            PricingSpec::Trace(TracePricing::new(traces)),
            7.0 - 5.0 * ts,
            25.0 * ts,
            ts,
        )
        .expect("consistent")
        .with_init_hour(6.0);
        let mut policy = MpcPolicy::new(MpcPolicyConfig {
            solver_reuse,
            ..MpcPolicyConfig::default()
        })?;
        let start = Instant::now();
        let run = sim.run(&scenario, &mut policy)?;
        let elapsed = start.elapsed().as_secs_f64();
        per_mode[mode] = 1e3 * elapsed / run.times_min().len() as f64;
        costs[mode] = run.total_cost();
        if solver_reuse {
            let controller = policy.controller();
            let solves = (controller.warm_solves() + controller.cold_solves()).max(1);
            warm_fraction = controller.warm_solves() as f64 / solves as f64;
        }
    }
    Ok(EndToEndRow {
        n,
        c,
        vars: n * c * 3,
        cold_ms_per_step: per_mode[0],
        warm_ms_per_step: per_mode[1],
        warm_solve_fraction: warm_fraction,
        cost_rel_diff: (costs[0] - costs[1]).abs() / costs[1].abs().max(1e-12),
    })
}

fn main() -> Result<(), idc_core::Error> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_mpc.json".to_string());

    println!("## bench_summary — cold vs warm MPC solve pipeline");
    println!(
        "{:>6} {:>8} {:>8} | {:>16} {:>16} {:>8} | {:>17} {:>17} {:>8} {:>7}",
        "IDCs",
        "portals",
        "ΔU vars",
        "1-step cold ms",
        "1-step warm ms",
        "speedup",
        "e2e cold ms/step",
        "e2e warm ms/step",
        "speedup",
        "warm %"
    );

    let mut single = Vec::new();
    let mut end_to_end = Vec::new();
    for (n, c) in SIZES {
        let s = measure_single_step(n, c);
        let e = measure_end_to_end(n, c)?;
        println!(
            "{:>6} {:>8} {:>8} | {:>16.2} {:>16.2} {:>7.1}x | {:>17.2} {:>17.2} {:>7.1}x {:>7.1}",
            n,
            c,
            s.vars,
            s.cold_ms,
            s.warm_ms,
            s.cold_ms / s.warm_ms.max(1e-9),
            e.cold_ms_per_step,
            e.warm_ms_per_step,
            e.cold_ms_per_step / e.warm_ms_per_step.max(1e-9),
            100.0 * e.warm_solve_fraction,
        );
        single.push(s);
        end_to_end.push(e);
    }

    let json = render_json(&single, &end_to_end);
    std::fs::write(&out_path, &json)
        .map_err(|e| idc_core::Error::Config(format!("cannot write {out_path}: {e}")))?;
    println!("\nwrote {out_path}");
    Ok(())
}

/// Hand-rendered pretty JSON (the vendored `serde_json` emits compact
/// output only; review diffs want one field per line).
fn render_json(single: &[SingleStepRow], end_to_end: &[EndToEndRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"generator\": \"cargo run --release -p idc-bench --bin bench_summary\",\n");
    s.push_str("  \"units\": \"milliseconds of wall-clock per MPC control step\",\n");
    s.push_str("  \"modes\": {\n");
    s.push_str(
        "    \"cold\": \"controller state reset before every step: structure cache rebuilt, \
         Schur complement refactored, active-set QP solved from scratch\",\n",
    );
    s.push_str(
        "    \"warm\": \"state reused across steps: cached condensed matrices and \
         factorizations, solve warm-started from the shifted previous solution\"\n",
    );
    s.push_str("  },\n");
    s.push_str("  \"single_step\": [\n");
    for (i, r) in single.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"idcs\": {}, \"portals\": {}, \"delta_u_vars\": {}, \
             \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.n,
            r.c,
            r.vars,
            r.cold_ms,
            r.warm_ms,
            r.cold_ms / r.warm_ms.max(1e-9),
            if i + 1 < single.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"end_to_end\": [\n");
    for (i, r) in end_to_end.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"idcs\": {}, \"portals\": {}, \"delta_u_vars\": {}, \
             \"cold_ms_per_step\": {:.3}, \"warm_ms_per_step\": {:.3}, \"speedup\": {:.2}, \
             \"warm_solve_fraction\": {:.3}, \"cost_rel_diff\": {:.3e}}}{}\n",
            r.n,
            r.c,
            r.vars,
            r.cold_ms_per_step,
            r.warm_ms_per_step,
            r.cold_ms_per_step / r.warm_ms_per_step.max(1e-9),
            r.warm_solve_fraction,
            r.cost_rel_diff,
            if i + 1 < end_to_end.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
