//! `bench_summary` — machine-readable before/after numbers for the MPC
//! solve pipeline, written to `BENCH_mpc.json`.
//!
//! Measurements cover all three solver backends
//! ([`SolverBackend::CondensedDense`], [`SolverBackend::BandedRiccati`],
//! and [`SolverBackend::Sharded`] with 8 shards) on the synthetic
//! price-flip fleets of `ext_scaling`, up to the 64×128 fleet only the
//! sharded backend reaches within the step budget:
//!
//! * **single_step** — median wall-clock of one `MpcController::plan`
//!   call, cold (controller reset before every call, so the structure
//!   cache rebuilds and the QP solves from scratch) vs warm (state kept,
//!   the steady-state cost of a receding-horizon run).
//! * **end_to_end** — full simulated price-flip window through
//!   `MpcPolicy`, `solver_reuse: false` vs `true`, including the
//!   controller's own warm/cold solve accounting, the relative cost
//!   difference between the two trajectories, and the per-phase
//!   wall-clock breakdown of the warm run (refresh / factor / condense /
//!   solve / reference / simulate).
//! * **storage_end_to_end** — one storage-enabled cell at the paper-scale
//!   8×15 size (banded backend): a battery per IDC plus the typical
//!   commercial demand-charge tariff, so the QP carries the enlarged
//!   charge/discharge/SoC blocks and the demand-charge epigraph row.
//!   Same schema as `end_to_end` (including `solve_stats`), so
//!   `bench_diff` gates it alongside the plain rows.
//! * **backend_agreement** — per fleet size, a *lockstep* comparison: one
//!   trajectory is driven forward and at every step both backends solve
//!   the *identical* `MpcProblem`; the reported figure is the maximum
//!   per-step relative difference of the plans' predicted fleet power
//!   cost. This isolates solver agreement (the two backends factor the
//!   same strictly convex QP through entirely different structures) from
//!   closed-loop divergence: independently-run windows drift apart at the
//!   10⁻⁶..10⁻⁴ level because integer server counts in the sleep loop
//!   amplify last-bit rounding — the same mechanism behind the nonzero
//!   same-backend `cost_rel_diff` — which says nothing about the solvers.
//!
//! Run with:
//! `cargo run --release -p idc-bench --bin bench_summary [-- <output.json>]`
//!
//! * **sharded_agreement** — the same lockstep comparison between the
//!   banded and sharded backends, gated at ≤ 1e-6 (the consensus outer
//!   loop stops on residuals rather than solving exactly).
//!
//! `-- --smoke` runs the 3×5 case only, asserts lockstep backend cost
//! agreement (dense-vs-banded ≤ 1e-8, banded-vs-sharded ≤ 1e-6) and
//! writes nothing — the CI regression gate.
//!
//! `--sizes 3x5,12x24` overrides the measured fleet sizes,
//! `--max-dense-vars N` caps the dense backend (sizes whose ΔU variable
//! count exceeds `N`, default 600, run without it), and `--max-step-ms M`
//! (default 120000) is a per-step wall-clock budget: a cell whose cold or
//! warm step overruns it is aborted, and a cell whose *projected* cold
//! step (quadratic scaling from the backend's previous size — an
//! underestimate of the observed growth) already busts the budget is
//! skipped without paying the probe. Every cell not measured — dense cap,
//! step budget, or an agreement row missing a backend — is recorded
//! explicitly in the JSON `skipped` section instead of silently missing.

use std::time::Instant;

use idc_control::mpc::{MpcConfig, MpcController, MpcProblem, SolverBackend};
use idc_core::metrics::{PhaseBreakdown, SolveStats};
use idc_core::policy::{MpcPolicy, MpcPolicyConfig};
use idc_core::scenario::{PricingSpec, Scenario};
use idc_core::simulation::Simulator;
use idc_datacenter::fleet::IdcFleet;
use idc_datacenter::idc::IdcConfig;
use idc_datacenter::portal::FrontEndPortal;
use idc_datacenter::server::ServerSpec;
use idc_market::region::Region;
use idc_market::rtp::TracePricing;
use idc_market::tariff::DemandCharge;
use idc_market::trace::PriceTrace;
use idc_storage::{paper_test_battery, StorageFleet};

const SIZES: [(usize, usize); 7] = [
    (3, 5),
    (4, 8),
    (6, 12),
    (8, 15),
    (12, 24),
    (32, 64),
    (64, 128),
];
const BACKENDS: [SolverBackend; 3] = [
    SolverBackend::CondensedDense,
    SolverBackend::BandedRiccati,
    SolverBackend::sharded(BENCH_SHARDS),
];
/// Shard count of the sharded backend's bench rows (clamped to the fleet
/// size on the small cases).
const BENCH_SHARDS: usize = 8;
/// Backend cost agreement required by the smoke gate (the two backends
/// solve the same strictly convex QP).
const AGREEMENT_TOL: f64 = 1e-8;
/// Sharded-vs-monolithic plan cost agreement: the consensus outer loop
/// stops on residuals, so the gate is looser than the direct-solver one
/// but still far below any cost signal the paper's experiments read.
const SHARDED_AGREEMENT_TOL: f64 = 1e-6;
/// Default `--max-dense-vars`: the dense backend refactors an O(vars³)
/// Hessian per cold solve, so the big fleets (12×24 = 864 vars,
/// 32×64 = 6144 vars) run banded-only unless the cap is raised.
const DEFAULT_MAX_DENSE_VARS: usize = 600;
/// Default `--max-step-ms`: a cell whose cold or warm step exceeds this
/// wall-clock budget is aborted and recorded as skipped instead of
/// stretching the sweep by hours — the monolithic backends' cold solve
/// grows super-cubically in `N·C`, so the 64×128 fleet is only
/// reachable by the sharded backend within the default budget (the
/// 32×64 banded cold step, ~90 s, still fits).
const DEFAULT_MAX_STEP_MS: f64 = 120_000.0;
/// ΔU horizon used by `MpcConfig::default()` (sizes are capped by
/// `n·c·horizon` before any controller exists).
const CONTROL_HORIZON: usize = 3;
/// Fleet size of the storage-enabled end-to-end cell: the paper-scale
/// 8×15 case with a battery per IDC and a demand-charge tariff.
const STORAGE_E2E_SIZE: (usize, usize) = (8, 15);

fn backend_label(b: SolverBackend) -> &'static str {
    match b {
        SolverBackend::CondensedDense => "condensed_dense",
        SolverBackend::BandedRiccati => "banded_riccati",
        SolverBackend::Sharded { .. } => "sharded",
    }
}

/// Shard count of a backend's rows: 0 for the monolithic backends, so the
/// JSON key `size × backend × shards` stays total.
fn backend_shards(b: SolverBackend) -> usize {
    match b {
        SolverBackend::Sharded { shards, .. } => shards,
        _ => 0,
    }
}

/// A synthetic fleet of `n` IDCs × `c` portals sized like the paper's
/// (same construction as `ext_scaling`).
fn synthetic(n: usize, c: usize) -> (IdcFleet, Vec<PriceTrace>) {
    let idcs: Vec<IdcConfig> = (0..n)
        .map(|j| {
            IdcConfig::new(
                format!("idc-{j}"),
                30_000,
                ServerSpec::new(150.0, 285.0, 1.25 + 0.25 * (j % 4) as f64).expect("valid"),
                1.0,
            )
            .expect("valid")
        })
        .collect();
    let per_portal = idcs.iter().map(|i| i.max_workload()).sum::<f64>() * 0.6 / c as f64;
    let portals: Vec<FrontEndPortal> = (0..c)
        .map(|i| FrontEndPortal::new(format!("portal-{i}"), per_portal).expect("valid"))
        .collect();
    let traces: Vec<PriceTrace> = (0..n)
        .map(|j| {
            let base = 25.0 + (j as f64 * 13.7) % 30.0;
            let hourly: Vec<f64> = (0..24)
                .map(|h| {
                    if h >= 7 {
                        base + ((j as f64 * 31.1) % 45.0) - 20.0
                    } else {
                        base
                    }
                })
                .collect();
            PriceTrace::new(Region::new(j, format!("region-{j}")), hourly).expect("24 values")
        })
        .collect();
    (IdcFleet::new(portals, idcs).expect("non-empty"), traces)
}

/// An MPC step for the synthetic fleet with an explicit starting
/// allocation and a reference "flip" (the cheap IDC moves from the first
/// to the last position, like the price flip does mid-window).
fn step_problem_at(n: usize, c: usize, prev: Vec<f64>, flip: bool) -> MpcProblem {
    let per_portal = 10_000.0;
    let favoured = if flip { n - 1 } else { 0 };
    MpcProblem {
        b1_mw: (0..n).map(|j| 60e-6 + 10e-6 * j as f64).collect(),
        b0_mw: vec![150e-6; n],
        servers_on: vec![20_000; n],
        capacities: vec![c as f64 * per_portal * 1.2 / n as f64 + 20_000.0; n],
        prev_input: prev,
        workload_forecast: vec![vec![per_portal; c]; 3],
        power_reference_mw: vec![
            (0..n)
                .map(|j| if j == favoured { 4.0 } else { 3.0 })
                .collect();
            5
        ],
        tracking_multiplier: MpcProblem::uniform_tracking(n),
        storage: None,
    }
}

/// One mid-transition MPC step for the synthetic fleet (same construction
/// as the `mpc_solve` bench).
fn step_problem(n: usize, c: usize) -> MpcProblem {
    let per_portal = 10_000.0;
    let mut prev = vec![0.0; n * c];
    for i in 0..c {
        prev[(n - 1) * c + i] = per_portal;
    }
    step_problem_at(n, c, prev, false)
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct SingleStepRow {
    n: usize,
    c: usize,
    vars: usize,
    backend: SolverBackend,
    cold_ms: f64,
    warm_ms: f64,
}

struct EndToEndRow {
    n: usize,
    c: usize,
    vars: usize,
    backend: SolverBackend,
    cold_ms_per_step: f64,
    warm_ms_per_step: f64,
    warm_solve_fraction: f64,
    cost_rel_diff: f64,
    warm_total_cost: f64,
    /// Per-phase breakdown of the warm (`solver_reuse: true`) run.
    phases: PhaseBreakdown,
    /// Solver introspection counters of the warm run.
    stats: SolveStats,
    steps: usize,
}

fn mpc_config(backend: SolverBackend) -> MpcConfig {
    MpcConfig {
        backend,
        ..MpcConfig::default()
    }
}

/// Measures one size×backend single-step cell, or aborts it with a skip
/// reason the moment any step overruns the `--max-step-ms` budget — the
/// remaining reps and the end-to-end window behind them would multiply
/// the overrun, and an explicit skip record reads better than an
/// hours-long sweep.
fn measure_single_step(
    n: usize,
    c: usize,
    backend: SolverBackend,
    max_step_ms: f64,
) -> Result<SingleStepRow, String> {
    // The dense cold path refactors an O((ncβ₂)³) Hessian per rep; keep
    // the big fleets to a few reps so the sweep stays minutes, not hours.
    let reps = if n * c >= 200 { 3 } else { 9 };
    let p = step_problem(n, c);
    let over = |kind: &str, ms: f64| {
        format!("{kind} step took {ms:.0} ms, over --max-step-ms {max_step_ms:.0}")
    };
    let mut controller = MpcController::new(mpc_config(backend));
    let mut cold = Vec::with_capacity(reps);
    for _ in 0..reps {
        controller.reset();
        let start = Instant::now();
        std::hint::black_box(controller.plan(&p).expect("feasible"));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms > max_step_ms {
            return Err(over("cold", ms));
        }
        cold.push(ms);
    }
    let mut controller = MpcController::new(mpc_config(backend));
    controller.plan(&p).expect("feasible"); // prime cache + warm state
    let mut warm = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(controller.plan(&p).expect("feasible"));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms > max_step_ms {
            return Err(over("warm", ms));
        }
        warm.push(ms);
    }
    Ok(SingleStepRow {
        n,
        c,
        vars: n * c * controller.config().control_horizon,
        backend,
        cold_ms: median_ms(&mut cold),
        warm_ms: median_ms(&mut warm),
    })
}

fn measure_end_to_end(
    n: usize,
    c: usize,
    backend: SolverBackend,
    storage: bool,
) -> Result<EndToEndRow, idc_core::Error> {
    let sim = Simulator::new();
    let ts = 30.0 / 3600.0;
    let mut per_mode = [0.0f64; 2];
    let mut costs = [0.0f64; 2];
    let mut warm_fraction = 0.0;
    let mut phases = PhaseBreakdown::default();
    let mut stats = SolveStats::default();
    let mut steps = 0;
    for (mode, solver_reuse) in [false, true].into_iter().enumerate() {
        let (fleet, traces) = synthetic(n, c);
        let mut scenario = Scenario::new(
            format!("scale-{n}x{c}"),
            fleet,
            PricingSpec::Trace(TracePricing::new(traces)),
            7.0 - 5.0 * ts,
            25.0 * ts,
            ts,
        )
        .expect("consistent")
        .with_init_hour(6.0);
        if storage {
            // Battery + demand charge enlarge every QP block (3 extra
            // decision variables per IDC per horizon step plus the
            // epigraph row), so this cell prices the storage extension.
            scenario = scenario
                .with_storage(StorageFleet::uniform(n, paper_test_battery()).expect("non-empty"))
                .expect("battery rates fit the fleet")
                .with_demand_charge(DemandCharge::typical_commercial());
        }
        let mut policy = MpcPolicy::new(MpcPolicyConfig {
            solver_reuse,
            mpc: mpc_config(backend),
            storage: scenario.storage().cloned(),
            demand_charge: scenario.demand_charge().copied(),
            ..MpcPolicyConfig::default()
        })?;
        let start = Instant::now();
        let run = sim.run(&scenario, &mut policy)?;
        let elapsed = start.elapsed();
        per_mode[mode] = 1e3 * elapsed.as_secs_f64() / run.times_min().len() as f64;
        costs[mode] = run.total_cost();
        if solver_reuse {
            let controller = policy.controller();
            let solves = (controller.warm_solves() + controller.cold_solves()).max(1);
            warm_fraction = controller.warm_solves() as f64 / solves as f64;
            phases = policy
                .phase_breakdown()
                .with_total(elapsed.as_nanos() as u64);
            stats = policy.solve_stats();
            steps = run.times_min().len();
        }
    }
    Ok(EndToEndRow {
        n,
        c,
        vars: n * c * 3,
        backend,
        cold_ms_per_step: per_mode[0],
        warm_ms_per_step: per_mode[1],
        warm_solve_fraction: warm_fraction,
        cost_rel_diff: (costs[0] - costs[1]).abs() / costs[1].abs().max(1e-12),
        warm_total_cost: costs[1],
        phases,
        stats,
        steps,
    })
}

/// Per-size lockstep backend agreement: over one driven trajectory both
/// backends solve identical problems every step; `rel_diff` is the
/// maximum per-step relative difference of the plans' predicted fleet
/// power cost, and the costs are the window sums of that per-plan cost.
struct AgreementRow {
    n: usize,
    c: usize,
    steps: usize,
    dense_cost: f64,
    banded_cost: f64,
    rel_diff: f64,
    /// Step index where `rel_diff` was attained, with the two per-plan
    /// costs at that step — so a gate failure names the offending solve,
    /// not just the aggregate maximum.
    worst_step: usize,
    worst_dense_cost: f64,
    worst_banded_cost: f64,
}

/// Run both backends in lockstep over a price-flip-shaped window: the
/// trajectory is advanced with the banded plan's `next_input`, so the
/// dense backend sees the *same* `MpcProblem` at every step and any
/// difference is pure solver disagreement (no closed-loop amplification).
fn lockstep_agreement(n: usize, c: usize) -> AgreementRow {
    const STEPS: usize = 25;
    const FLIP_AT: usize = 10;
    let mut dense = MpcController::new(mpc_config(SolverBackend::CondensedDense));
    let mut banded = MpcController::new(mpc_config(SolverBackend::BandedRiccati));
    let mut prev = vec![0.0; n * c];
    for i in 0..c {
        prev[(n - 1) * c + i] = 10_000.0;
    }
    let plan_cost = |p: &idc_control::mpc::MpcPlan| -> f64 {
        p.predicted_power_mw()
            .iter()
            .map(|row| row.iter().sum::<f64>())
            .sum()
    };
    let (mut dense_sum, mut banded_sum, mut max_rel) = (0.0f64, 0.0f64, 0.0f64);
    let (mut worst_step, mut worst_dense, mut worst_banded) = (0usize, 0.0f64, 0.0f64);
    for step in 0..STEPS {
        let p = step_problem_at(n, c, prev.clone(), step >= FLIP_AT);
        let pd = dense.plan(&p).expect("dense backend feasible");
        let pb = banded.plan(&p).expect("banded backend feasible");
        let (cd, cb) = (plan_cost(&pd), plan_cost(&pb));
        dense_sum += cd;
        banded_sum += cb;
        let rel = (cd - cb).abs() / cd.abs().max(1e-12);
        if rel > max_rel {
            max_rel = rel;
            worst_step = step;
            worst_dense = cd;
            worst_banded = cb;
        }
        prev = pb.next_input().to_vec();
    }
    AgreementRow {
        n,
        c,
        steps: STEPS,
        dense_cost: dense_sum,
        banded_cost: banded_sum,
        rel_diff: max_rel,
        worst_step,
        worst_dense_cost: worst_dense,
        worst_banded_cost: worst_banded,
    }
}

/// Sharded-vs-monolithic lockstep agreement: banded reference, banded
/// plan drives the trajectory, and the sharded backend solves the same
/// `MpcProblem` every step. `rel_diff` gates at [`SHARDED_AGREEMENT_TOL`]
/// in the smoke run and the CI `shard-equivalence` step.
struct ShardedAgreementRow {
    n: usize,
    c: usize,
    shards: usize,
    steps: usize,
    banded_cost: f64,
    sharded_cost: f64,
    rel_diff: f64,
    worst_step: usize,
}

fn lockstep_sharded_agreement(n: usize, c: usize) -> ShardedAgreementRow {
    const STEPS: usize = 25;
    const FLIP_AT: usize = 10;
    let backend = SolverBackend::sharded(BENCH_SHARDS);
    let mut banded = MpcController::new(mpc_config(SolverBackend::BandedRiccati));
    let mut sharded = MpcController::new(mpc_config(backend));
    let mut prev = vec![0.0; n * c];
    for i in 0..c {
        prev[(n - 1) * c + i] = 10_000.0;
    }
    let plan_cost = |p: &idc_control::mpc::MpcPlan| -> f64 {
        p.predicted_power_mw()
            .iter()
            .map(|row| row.iter().sum::<f64>())
            .sum()
    };
    let (mut banded_sum, mut sharded_sum, mut max_rel) = (0.0f64, 0.0f64, 0.0f64);
    let mut worst_step = 0usize;
    for step in 0..STEPS {
        let p = step_problem_at(n, c, prev.clone(), step >= FLIP_AT);
        let pb = banded.plan(&p).expect("banded backend feasible");
        let ps = sharded.plan(&p).expect("sharded backend feasible");
        let (cb, cs) = (plan_cost(&pb), plan_cost(&ps));
        banded_sum += cb;
        sharded_sum += cs;
        let rel = (cb - cs).abs() / cb.abs().max(1e-12);
        if rel > max_rel {
            max_rel = rel;
            worst_step = step;
        }
        prev = pb.next_input().to_vec();
    }
    ShardedAgreementRow {
        n,
        c,
        shards: BENCH_SHARDS,
        steps: STEPS,
        banded_cost: banded_sum,
        sharded_cost: sharded_sum,
        rel_diff: max_rel,
        worst_step,
    }
}

/// A measurement cell deliberately not run, recorded in the JSON so a
/// missing row reads as a decision, not an omission.
struct SkipRow {
    n: usize,
    c: usize,
    vars: usize,
    /// JSON section the cell would have landed in.
    section: &'static str,
    backend: Option<SolverBackend>,
    reason: String,
}

/// The skip rows for one size the dense cap excludes: both dense
/// measurement sections plus the lockstep agreement (which needs both
/// backends to run).
fn dense_cap_skips(n: usize, c: usize, max_dense_vars: usize) -> Vec<SkipRow> {
    let vars = n * c * CONTROL_HORIZON;
    let reason = format!("{vars} ΔU vars exceed --max-dense-vars {max_dense_vars}");
    let row = |section, backend| SkipRow {
        n,
        c,
        vars,
        section,
        backend,
        reason: reason.clone(),
    };
    vec![
        row("single_step", Some(SolverBackend::CondensedDense)),
        row("end_to_end", Some(SolverBackend::CondensedDense)),
        row("backend_agreement", None),
    ]
}

/// Parses `--sizes 3x5,12x24` into `(idcs, portals)` pairs.
fn parse_sizes(spec: &str) -> Result<Vec<(usize, usize)>, idc_core::Error> {
    spec.split(',')
        .map(|pair| {
            let bad = || {
                idc_core::Error::Config(format!(
                    "--sizes expects comma-separated NxC pairs (e.g. 3x5,12x24), got '{pair}'"
                ))
            };
            let (n, c) = pair.split_once(['x', 'X']).ok_or_else(bad)?;
            match (n.trim().parse(), c.trim().parse()) {
                (Ok(n), Ok(c)) if n > 0 && c > 0 => Ok((n, c)),
                _ => Err(bad()),
            }
        })
        .collect()
}

fn phase_ms(ns: u64, steps: usize) -> f64 {
    ns as f64 / 1e6 / steps.max(1) as f64
}

fn print_e2e_row(e: &EndToEndRow) {
    println!(
        "{:>6} {:>8} {:>8} {:>16} | {:>17.2} {:>17.2} {:>7.1}x {:>7.1}",
        e.n,
        e.c,
        e.vars,
        backend_label(e.backend),
        e.cold_ms_per_step,
        e.warm_ms_per_step,
        e.cold_ms_per_step / e.warm_ms_per_step.max(1e-9),
        100.0 * e.warm_solve_fraction,
    );
    println!(
        "{:>41} | per step: refresh {:.3} factor {:.3} condense {:.3} solve {:.3} \
         reference {:.3} simulate {:.3} ms",
        "phases",
        phase_ms(e.phases.refresh_ns, e.steps),
        phase_ms(e.phases.factor_ns, e.steps),
        phase_ms(e.phases.condense_ns, e.steps),
        phase_ms(e.phases.solve_ns, e.steps),
        phase_ms(e.phases.reference_ns, e.steps),
        phase_ms(e.phases.simulate_ns, e.steps),
    );
    let per_step = |v: u64| v as f64 / e.steps.max(1) as f64;
    println!(
        "{:>41} | per step: iters {:.2} churn {:.2} refine {:.2} | seed survival \
         {:.3} bland {} cold-fallbacks {}",
        "solver",
        per_step(e.stats.iterations),
        per_step(e.stats.working_set_churn()),
        per_step(e.stats.refinement_passes),
        e.stats.seed_survival(),
        e.stats.bland_switches,
        e.stats.cold_fallbacks,
    );
}

fn run_smoke() -> Result<(), idc_core::Error> {
    let (n, c) = SIZES[0];
    println!("## bench_summary --smoke — {n}×{c}, both backends");
    for backend in BACKENDS {
        let e = measure_end_to_end(n, c, backend, false)?;
        print_e2e_row(&e);
    }
    let a = lockstep_agreement(n, c);
    println!(
        "lockstep backend agreement over {} steps: dense {:.9} vs banded {:.9} \
         (max step rel diff {:.3e} at step {})",
        a.steps, a.dense_cost, a.banded_cost, a.rel_diff, a.worst_step
    );
    if a.rel_diff > AGREEMENT_TOL {
        // Name the offending solve precisely: size, backend pair, step,
        // and the two per-plan costs behind the relative difference.
        return Err(idc_core::Error::Config(format!(
            "backend cost disagreement on the {}x{} case: {} vs {} differ by \
             rel {:.3e} (> {AGREEMENT_TOL:.0e}) at step {} of {} — \
             {} cost {:.12e} vs {} cost {:.12e}",
            a.n,
            a.c,
            backend_label(SolverBackend::CondensedDense),
            backend_label(SolverBackend::BandedRiccati),
            a.rel_diff,
            a.worst_step,
            a.steps,
            backend_label(SolverBackend::CondensedDense),
            a.worst_dense_cost,
            backend_label(SolverBackend::BandedRiccati),
            a.worst_banded_cost,
        )));
    }
    let sa = lockstep_sharded_agreement(n, c);
    println!(
        "lockstep sharded agreement over {} steps ({} shards): banded {:.9} vs \
         sharded {:.9} (max step rel diff {:.3e} at step {})",
        sa.steps, sa.shards, sa.banded_cost, sa.sharded_cost, sa.rel_diff, sa.worst_step
    );
    if sa.rel_diff > SHARDED_AGREEMENT_TOL {
        return Err(idc_core::Error::Config(format!(
            "sharded backend cost disagreement on the {}x{} case ({} shards): \
             banded {:.12e} vs sharded {:.12e} differ by rel {:.3e} \
             (> {SHARDED_AGREEMENT_TOL:.0e}) at step {} of {}",
            sa.n,
            sa.c,
            sa.shards,
            sa.banded_cost,
            sa.sharded_cost,
            sa.rel_diff,
            sa.worst_step,
            sa.steps,
        )));
    }
    println!("smoke OK");
    Ok(())
}

/// Dumps the global flight recorder as a Chrome trace-event file.
fn write_trace(path: &str) -> Result<(), idc_core::Error> {
    std::fs::write(path, idc_obs::export_global_trace())
        .map_err(|e| idc_core::Error::Config(format!("cannot write {path}: {e}")))?;
    println!("wrote Chrome trace to {path} (open in Perfetto / chrome://tracing)");
    Ok(())
}

fn main() -> Result<(), idc_core::Error> {
    let mut smoke = false;
    let mut trace_out: Option<String> = None;
    let mut out_path = "BENCH_mpc.json".to_string();
    let mut sizes: Vec<(usize, usize)> = SIZES.to_vec();
    let mut max_dense_vars = DEFAULT_MAX_DENSE_VARS;
    let mut max_step_ms = DEFAULT_MAX_STEP_MS;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--trace-out" => {
                trace_out = Some(it.next().ok_or_else(|| {
                    idc_core::Error::Config("--trace-out needs a path".to_string())
                })?);
            }
            "--sizes" => {
                sizes = parse_sizes(&it.next().ok_or_else(|| {
                    idc_core::Error::Config("--sizes needs NxC,... pairs".to_string())
                })?)?;
            }
            "--max-dense-vars" => {
                max_dense_vars = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                    idc_core::Error::Config("--max-dense-vars needs a number".to_string())
                })?;
            }
            "--max-step-ms" => {
                max_step_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|ms: &f64| *ms > 0.0)
                    .ok_or_else(|| {
                        idc_core::Error::Config("--max-step-ms needs a positive number".to_string())
                    })?;
            }
            other => out_path = other.to_string(),
        }
    }
    if trace_out.is_some() {
        idc_obs::install_global_recorder(1 << 20);
    }
    if smoke {
        run_smoke()?;
        if let Some(path) = &trace_out {
            write_trace(path)?;
        }
        return Ok(());
    }

    println!("## bench_summary — cold vs warm MPC solve pipeline, both backends");
    println!(
        "{:>6} {:>8} {:>8} {:>16} | {:>17} {:>17} {:>8} {:>7}",
        "IDCs",
        "portals",
        "ΔU vars",
        "backend",
        "e2e cold ms/step",
        "e2e warm ms/step",
        "speedup",
        "warm %"
    );

    let dense_fits = |n: usize, c: usize| n * c * CONTROL_HORIZON <= max_dense_vars;
    let mut single = Vec::new();
    let mut end_to_end = Vec::new();
    let mut skipped = Vec::new();
    // Last completed single-step cell per backend, as (ΔU vars, cold
    // ms): sizes run in ascending order, so a quadratic projection from
    // the previous size *under*-estimates the observed super-cubic cold
    // growth — if even that projection busts the budget, the cell is
    // skipped without paying a possibly hours-long probe solve.
    let mut last_cold: Vec<(SolverBackend, usize, f64)> = Vec::new();
    for &(n, c) in &sizes {
        if !dense_fits(n, c) {
            println!(
                "{:>6} {:>8} {:>8} {:>16} | skipped ({} vars > --max-dense-vars {})",
                n,
                c,
                n * c * CONTROL_HORIZON,
                backend_label(SolverBackend::CondensedDense),
                n * c * CONTROL_HORIZON,
                max_dense_vars
            );
            skipped.extend(dense_cap_skips(n, c, max_dense_vars));
        }
        for backend in BACKENDS {
            if matches!(backend, SolverBackend::CondensedDense) && !dense_fits(n, c) {
                continue;
            }
            let vars = n * c * CONTROL_HORIZON;
            let projected = last_cold
                .iter()
                .find(|(b, ..)| backend_label(*b) == backend_label(backend))
                .map(|&(_, pvars, pcold)| {
                    let ratio = vars as f64 / pvars.max(1) as f64;
                    (pcold * ratio * ratio, pvars)
                });
            if let Some((est, pvars)) = projected.filter(|&(est, _)| est > max_step_ms) {
                let reason = format!(
                    "projected cold step ~{est:.0} ms (quadratic scaling from the \
                     {pvars}-var cell) over --max-step-ms {max_step_ms:.0}"
                );
                println!(
                    "{:>6} {:>8} {:>8} {:>16} | skipped ({reason})",
                    n,
                    c,
                    vars,
                    backend_label(backend),
                );
                for section in ["single_step", "end_to_end"] {
                    skipped.push(SkipRow {
                        n,
                        c,
                        vars,
                        section,
                        backend: Some(backend),
                        reason: reason.clone(),
                    });
                }
                continue;
            }
            match measure_single_step(n, c, backend, max_step_ms) {
                Ok(s) => {
                    let e = measure_end_to_end(n, c, backend, false)?;
                    print_e2e_row(&e);
                    println!(
                        "{:>41} | single step: cold {:.3} ms, warm {:.3} ms ({:.1}x)",
                        "1-step",
                        s.cold_ms,
                        s.warm_ms,
                        s.cold_ms / s.warm_ms.max(1e-9),
                    );
                    last_cold.retain(|(b, ..)| backend_label(*b) != backend_label(backend));
                    last_cold.push((backend, s.vars, s.cold_ms));
                    single.push(s);
                    end_to_end.push(e);
                }
                Err(reason) => {
                    println!(
                        "{:>6} {:>8} {:>8} {:>16} | skipped ({reason})",
                        n,
                        c,
                        n * c * CONTROL_HORIZON,
                        backend_label(backend),
                    );
                    // The end-to-end window replays hundreds of such
                    // steps, so it inherits the single-step verdict.
                    for section in ["single_step", "end_to_end"] {
                        skipped.push(SkipRow {
                            n,
                            c,
                            vars: n * c * CONTROL_HORIZON,
                            section,
                            backend: Some(backend),
                            reason: reason.clone(),
                        });
                    }
                }
            }
        }
    }
    // One storage-enabled cell at the paper-scale 8×15 size: battery
    // rates and SoC dynamics enlarge every QP block and the demand
    // charge adds the epigraph row, so this row prices the storage
    // extension against the plain 8×15 row above.
    let mut storage_rows = Vec::new();
    {
        let (n, c) = STORAGE_E2E_SIZE;
        println!("\nstorage-enabled end-to-end (battery + demand charge, banded backend):");
        let e = measure_end_to_end(n, c, SolverBackend::BandedRiccati, true)?;
        print_e2e_row(&e);
        storage_rows.push(e);
    }

    println!("\nbackend agreement (lockstep, identical problems per step):");
    let mut agree = Vec::new();
    for &(n, c) in &sizes {
        if !dense_fits(n, c) {
            println!("  {n:>2}×{c:<2}: skipped (dense backend over --max-dense-vars cap)");
            continue;
        }
        let a = lockstep_agreement(n, c);
        println!(
            "  {:>2}×{:<2}: dense {:.9} vs banded {:.9} over {} steps \
             (max step rel diff {:.3e} at step {})",
            a.n, a.c, a.dense_cost, a.banded_cost, a.steps, a.rel_diff, a.worst_step
        );
        agree.push(a);
    }
    println!("\nsharded agreement (lockstep vs banded, identical problems per step):");
    let mut shard_agree = Vec::new();
    for &(n, c) in &sizes {
        // The comparison replays both backends in lockstep, so it only
        // runs where both finished their single-step cells within the
        // wall-clock budget.
        let completed = |want_sharded: bool| {
            single.iter().any(|s| {
                s.n == n
                    && s.c == c
                    && matches!(s.backend, SolverBackend::Sharded { .. }) == want_sharded
                    && (want_sharded || matches!(s.backend, SolverBackend::BandedRiccati))
            })
        };
        if !(completed(false) && completed(true)) {
            println!("  {n:>2}×{c:<2}: skipped (banded or sharded cell over --max-step-ms)");
            skipped.push(SkipRow {
                n,
                c,
                vars: n * c * CONTROL_HORIZON,
                section: "sharded_agreement",
                backend: None,
                reason: format!(
                    "banded or sharded single-step cell over --max-step-ms {max_step_ms:.0}"
                ),
            });
            continue;
        }
        let a = lockstep_sharded_agreement(n, c);
        println!(
            "  {:>2}×{:<2}: banded {:.9} vs sharded {:.9} over {} steps, {} shards \
             (max step rel diff {:.3e} at step {})",
            a.n, a.c, a.banded_cost, a.sharded_cost, a.steps, a.shards, a.rel_diff, a.worst_step
        );
        if a.rel_diff > SHARDED_AGREEMENT_TOL {
            return Err(idc_core::Error::Config(format!(
                "sharded backend cost disagreement on the {n}x{c} case: rel {:.3e} \
                 (> {SHARDED_AGREEMENT_TOL:.0e}) at step {} of {}",
                a.rel_diff, a.worst_step, a.steps,
            )));
        }
        shard_agree.push(a);
    }

    let json = render_json(
        &single,
        &end_to_end,
        &storage_rows,
        &agree,
        &shard_agree,
        &skipped,
    );
    std::fs::write(&out_path, &json)
        .map_err(|e| idc_core::Error::Config(format!("cannot write {out_path}: {e}")))?;
    println!("\nwrote {out_path}");
    if let Some(path) = &trace_out {
        write_trace(path)?;
    }
    Ok(())
}

/// Hand-rendered pretty JSON (the vendored `serde_json` emits compact
/// output only; review diffs want one field per line).
/// Renders one end-to-end row (shared by the plain and storage-enabled
/// sections — same schema, so `bench_diff` reads both).
fn push_e2e_json(s: &mut String, r: &EndToEndRow, last: bool) {
    s.push_str(&format!(
        "    {{\"idcs\": {}, \"portals\": {}, \"delta_u_vars\": {}, \"backend\": \"{}\", \
         \"shards\": {}, \"cold_ms_per_step\": {:.3}, \"warm_ms_per_step\": {:.3}, \
         \"speedup\": {:.2}, \"warm_solve_fraction\": {:.3}, \"cost_rel_diff\": {:.3e}, \
         \"warm_total_cost\": {:.9},\n",
        r.n,
        r.c,
        r.vars,
        backend_label(r.backend),
        backend_shards(r.backend),
        r.cold_ms_per_step,
        r.warm_ms_per_step,
        r.cold_ms_per_step / r.warm_ms_per_step.max(1e-9),
        r.warm_solve_fraction,
        r.cost_rel_diff,
        r.warm_total_cost,
    ));
    s.push_str(&format!(
        "     \"warm_phases_ms_per_step\": {{\"refresh\": {:.3}, \"factor\": {:.3}, \
         \"condense\": {:.3}, \"solve\": {:.3}, \"reference\": {:.3}, \
         \"simulate\": {:.3}}},\n",
        phase_ms(r.phases.refresh_ns, r.steps),
        phase_ms(r.phases.factor_ns, r.steps),
        phase_ms(r.phases.condense_ns, r.steps),
        phase_ms(r.phases.solve_ns, r.steps),
        phase_ms(r.phases.reference_ns, r.steps),
        phase_ms(r.phases.simulate_ns, r.steps),
    ));
    let per_step = |v: u64| v as f64 / r.steps.max(1) as f64;
    s.push_str(&format!(
        "     \"solve_stats\": {{\"iterations_per_step\": {:.3}, \
         \"constraints_added_per_step\": {:.3}, \"constraints_dropped_per_step\": {:.3}, \
         \"degenerate_pops\": {}, \"bland_switches\": {}, \
         \"refinement_passes_per_step\": {:.3}, \"refactorizations_per_step\": {:.3}, \
         \"updates_applied_per_step\": {:.3}, \"downdates_applied_per_step\": {:.3}, \
         \"working_set_delta_per_step\": {:.3}, \"warm_seed_survival\": {:.4}, \
         \"cold_fallbacks\": {}, \"outer_rounds_per_step\": {:.3}, \
         \"consensus_residual_nano\": {}}}}}{}\n",
        per_step(r.stats.iterations),
        per_step(r.stats.constraints_added),
        per_step(r.stats.constraints_dropped),
        r.stats.degenerate_pops,
        r.stats.bland_switches,
        per_step(r.stats.refinement_passes),
        per_step(r.stats.refactorizations),
        per_step(r.stats.updates_applied),
        per_step(r.stats.downdates_applied),
        per_step(r.stats.working_set_delta),
        r.stats.seed_survival(),
        r.stats.cold_fallbacks,
        per_step(r.stats.outer_iterations),
        r.stats.consensus_residual_nano,
        if last { "" } else { "," }
    ));
}

fn render_json(
    single: &[SingleStepRow],
    end_to_end: &[EndToEndRow],
    storage_rows: &[EndToEndRow],
    agree: &[AgreementRow],
    shard_agree: &[ShardedAgreementRow],
    skipped: &[SkipRow],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"generator\": \"cargo run --release -p idc-bench --bin bench_summary\",\n");
    s.push_str("  \"units\": \"milliseconds of wall-clock per MPC control step\",\n");
    s.push_str("  \"modes\": {\n");
    s.push_str(
        "    \"cold\": \"controller state reset before every step: structure cache rebuilt, \
         Hessian refactored, active-set QP solved from scratch\",\n",
    );
    s.push_str(
        "    \"warm\": \"state reused across steps: cached structure and factorizations, \
         solve warm-started from the shifted previous solution\"\n",
    );
    s.push_str("  },\n");
    s.push_str("  \"backends\": {\n");
    s.push_str(
        "    \"condensed_dense\": \"dense condensed Hessian over cumulative-sum lowering, \
         Schur-complement KKT steps\",\n",
    );
    s.push_str(
        "    \"banded_riccati\": \"block-tridiagonal Hessian in cumulative-input space, \
         banded Cholesky + Riccati-style block recursion, never forms the dense Hessian\",\n",
    );
    s.push_str(
        "    \"sharded\": \"fleet partitioned into regional shards, per-shard banded MPC \
         subproblems coordinated by exchange-ADMM on workload conservation and the peak \
         budget; shards field gives the shard count (0 = monolithic)\"\n",
    );
    s.push_str("  },\n");
    s.push_str("  \"single_step\": [\n");
    for (i, r) in single.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"idcs\": {}, \"portals\": {}, \"delta_u_vars\": {}, \"backend\": \"{}\", \
             \"shards\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.n,
            r.c,
            r.vars,
            backend_label(r.backend),
            backend_shards(r.backend),
            r.cold_ms,
            r.warm_ms,
            r.cold_ms / r.warm_ms.max(1e-9),
            if i + 1 < single.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"end_to_end\": [\n");
    for (i, r) in end_to_end.iter().enumerate() {
        push_e2e_json(&mut s, r, i + 1 == end_to_end.len());
    }
    s.push_str("  ],\n");
    s.push_str(
        "  \"storage_end_to_end_mode\": \"same schema as end_to_end, with a battery per IDC \
         (paper test battery) and the typical commercial demand-charge tariff enabled: the QP \
         carries charge/discharge/SoC blocks and the demand-charge epigraph row\",\n",
    );
    s.push_str("  \"storage_end_to_end\": [\n");
    for (i, r) in storage_rows.iter().enumerate() {
        push_e2e_json(&mut s, r, i + 1 == storage_rows.len());
    }
    s.push_str("  ],\n");
    s.push_str("  \"skipped\": [\n");
    for (i, k) in skipped.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"idcs\": {}, \"portals\": {}, \"delta_u_vars\": {}, \"section\": \"{}\", \
             \"backend\": {}, \"reason\": \"{}\"}}{}\n",
            k.n,
            k.c,
            k.vars,
            k.section,
            match k.backend {
                Some(b) => format!("\"{}\"", backend_label(b)),
                None => "null".to_string(),
            },
            k.reason,
            if i + 1 < skipped.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(
        "  \"backend_agreement_mode\": \"lockstep: one driven trajectory, both backends \
         solve the identical MpcProblem at every step; rel_diff is the max per-step \
         relative difference of the plans' predicted fleet power cost\",\n",
    );
    s.push_str("  \"backend_agreement\": [\n");
    for (i, a) in agree.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"idcs\": {}, \"portals\": {}, \"lockstep_steps\": {}, \
             \"dense_lockstep_cost\": {:.9}, \"banded_lockstep_cost\": {:.9}, \
             \"max_step_rel_diff\": {:.3e}}}{}\n",
            a.n,
            a.c,
            a.steps,
            a.dense_cost,
            a.banded_cost,
            a.rel_diff,
            if i + 1 < agree.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(
        "  \"sharded_agreement_mode\": \"lockstep: the banded plan drives the trajectory \
         and the sharded backend solves the identical MpcProblem at every step; rel_diff \
         gates at 1e-6 in CI (shard-equivalence)\",\n",
    );
    s.push_str("  \"sharded_agreement\": [\n");
    for (i, a) in shard_agree.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"idcs\": {}, \"portals\": {}, \"shards\": {}, \"lockstep_steps\": {}, \
             \"banded_lockstep_cost\": {:.9}, \"sharded_lockstep_cost\": {:.9}, \
             \"max_step_rel_diff\": {:.3e}}}{}\n",
            a.n,
            a.c,
            a.shards,
            a.steps,
            a.banded_cost,
            a.sharded_cost,
            a.rel_diff,
            if i + 1 < shard_agree.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
