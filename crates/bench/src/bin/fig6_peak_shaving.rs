//! Fig. 6(a–c) — power under peak shaving with the Sec. V-C budgets
//! (5.13 / 10.26 / 4.275 MW).
//!
//! Paper behaviour: the optimal method violates the Michigan and Minnesota
//! budgets (5.7 > 5.13, 11.4 > 10.26); the control method tracks both down
//! to their budgets, and Wisconsin "converges to the value between its
//! power budget and the power consumption derived from the optimal
//! policy".
//!
//! Run with: `cargo run -p idc-bench --bin fig6_peak_shaving`

use idc_bench::repro::{print_power_subfigure, run_both, IDC_NAMES};
use idc_core::scenario::peak_shaving_scenario;

fn main() {
    let scenario = peak_shaving_scenario();
    let budgets = scenario.budgets().expect("scenario has budgets").clone();
    let runs = run_both(&scenario);
    for (j, name) in IDC_NAMES.iter().enumerate() {
        print_power_subfigure(
            &format!(
                "Fig. 6({}) — power, {name} (budget {} MW)",
                char::from(b'a' + j as u8),
                budgets.budget_mw(j)
            ),
            &runs,
            j,
        );
    }
    println!("paper vs measured (final operating points, MW):");
    println!("  paper: Michigan and Minnesota track their budgets; Wisconsin converges");
    println!("  between its budget (4.275) and the optimal value (1.63).");
    for (j, name) in IDC_NAMES.iter().enumerate() {
        let mpc_final = runs.mpc.power_mw(j).last().expect("nonempty run");
        let opt_final = runs.opt.power_mw(j).last().expect("nonempty run");
        println!(
            "  {name:>10}: budget {:>6.3} | MPC final {:>7.3} | optimal final {:>7.3}",
            budgets.budget_mw(j),
            mpc_final,
            opt_final
        );
    }
    let mpc_v = runs.mpc.budget_violation_fractions(budgets.as_slice());
    let opt_v = runs.opt.budget_violation_fractions(budgets.as_slice());
    println!("over-budget sample fractions: MPC {mpc_v:?} vs optimal {opt_v:?}");
    println!("(MPC transients during the ramp count as violations; the endpoint is under budget.)");
}
