//! Fig. 3 — original vs AR+RLS-predicted workload.
//!
//! The paper predicts the EPA-HTTP trace (Aug 30 1995) with a time-varying
//! AR(p) model fitted online by RLS and shows the two curves coinciding.
//! The EPA trace is not redistributable offline, so the statistically
//! similar `epa_like` diurnal/bursty trace stands in; the experiment —
//! one-step-ahead tracking quality of the online predictor — is identical.
//!
//! Run with: `cargo run -p idc-bench --bin fig3_prediction`

use idc_bench::series::print_columns;
use idc_timeseries::holt::HoltPredictor;
use idc_timeseries::metrics::{mape, rmse};
use idc_timeseries::predictor::WorkloadPredictor;
use idc_timeseries::traces::epa_like;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    let day = epa_like().generate(&mut rng, 1440, 60.0);

    let mut predictor = WorkloadPredictor::new(3).expect("order > 0");
    let mut predicted = Vec::with_capacity(day.len());
    for &v in &day {
        predicted.push(predictor.predict_next());
        predictor.observe(v);
    }

    // Print every 15th minute to keep the series plot-sized (96 rows).
    let times: Vec<f64> = (0..day.len())
        .step_by(15)
        .map(|k| k as f64 / 60.0)
        .collect();
    let orig: Vec<f64> = day.iter().step_by(15).copied().collect();
    let pred: Vec<f64> = predicted.iter().step_by(15).copied().collect();
    print_columns(
        "Fig. 3 — original vs predicted workload (req/s, hour of day)",
        &["hour", "original", "predicted"],
        &[&times, &orig, &pred],
    );

    let actual = &day[10..];
    let p = &predicted[10..];
    println!(
        "one-step accuracy: RMSE {:.1} req/s, MAPE {:.1}%",
        rmse(actual, p),
        mape(actual, p, 50.0)
    );
    println!("paper: visual coincidence of the two curves (no metric reported).");

    // Predictor ablation: Holt double-exponential smoothing on the same
    // trace (not in the paper — shows the AR+RLS choice is competitive).
    let mut holt = HoltPredictor::new(0.6, 0.1).expect("valid factors");
    let mut holt_pred = Vec::with_capacity(day.len());
    for &v in &day {
        holt_pred.push(holt.predict(1));
        holt.observe(v);
    }
    let hp = &holt_pred[10..];
    println!(
        "ablation — Holt(0.6, 0.1):  RMSE {:.1} req/s, MAPE {:.1}%",
        rmse(actual, hp),
        mape(actual, hp, 50.0)
    );
}
