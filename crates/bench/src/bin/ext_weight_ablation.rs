//! Extension — the Q/R trade-off the paper describes but does not plot:
//! "the relative magnitudes of Q and R provide a way to trade off
//! minimizing electricity cost for smaller changes in volatile power
//! demand" (Sec. IV-C).
//!
//! Sweeps the smoothing weight R and reports (cost overhead vs the optimal
//! baseline, demand volatility, worst jump) — the trade-off curve.
//!
//! Run with: `cargo run -p idc-bench --bin ext_weight_ablation`

use idc_control::mpc::MpcConfig;
use idc_core::policy::{MpcPolicy, MpcPolicyConfig, OptimalPolicy, ReferenceKind};
use idc_core::scenario::smoothing_scenario;
use idc_core::simulation::Simulator;

fn main() -> Result<(), idc_core::Error> {
    let scenario = smoothing_scenario();
    let sim = Simulator::new();
    let opt = sim.run(
        &scenario,
        &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
    )?;

    println!("## extension — smoothing-weight (R) ablation on the Fig. 4 scenario");
    println!(
        "{:>8} {:>14} {:>18} {:>16}",
        "R", "cost ovh %", "volatility MW/st", "worst jump MW"
    );
    for r in [0.0001, 0.01, 0.5, 1.0, 4.0, 16.0, 64.0, 256.0] {
        // The slow-loop server ramp is opened wide so the smoothing weight
        // R is the only binding knob (the paper-tuned ramp of 1 500
        // servers/step otherwise dominates for small R).
        let mut policy = MpcPolicy::new(MpcPolicyConfig {
            mpc: MpcConfig {
                smoothing_weight: r,
                ..MpcConfig::default()
            },
            server_ramp_limit: 50_000,
            ..MpcPolicyConfig::default()
        })?;
        let run = sim.run(&scenario, &mut policy)?;
        let vol = (0..3)
            .map(|j| run.power_stats(j).expect("nonempty").mean_abs_step_mw)
            .sum::<f64>()
            / 3.0;
        let jump = (0..3)
            .map(|j| run.power_stats(j).expect("nonempty").max_abs_step_mw)
            .fold(0.0f64, f64::max);
        println!(
            "{r:>8.4} {:>14.3} {:>18.4} {:>16.3}",
            100.0 * (run.total_cost() - opt.total_cost()) / opt.total_cost(),
            vol,
            jump
        );
    }
    println!();
    println!("expectation: volatility and worst jump fall monotonically with R while the");
    println!("cost overhead grows — the knob trades smoothing against tracking lag.");
    Ok(())
}
