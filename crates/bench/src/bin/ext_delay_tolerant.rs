//! Extension — the cost↔delay trade-off for delay-tolerant (batch)
//! workloads (paper Sec. II, citing Yao et al. \[9\].).
//!
//! Sweeps the release-price percentile of the threshold deferral strategy
//! and prints the trade-off curve: electricity cost saved vs mean batch
//! delay incurred, for 30 % deferrable workload with an 8-hour deadline.
//!
//! Run with: `cargo run -p idc-bench --bin ext_delay_tolerant`

use idc_core::config;
use idc_core::delay_tolerant::{simulate_day, DeferralStrategy, DelayTolerantConfig};

fn main() -> Result<(), idc_core::Error> {
    let fleet = config::paper_fleet_calibrated();
    let traces = config::paper_price_traces();
    let cfg = DelayTolerantConfig {
        batch_fraction: 0.3,
        max_delay_hours: 8,
    };

    let baseline = simulate_day(&fleet, &traces, cfg, DeferralStrategy::ServeImmediately)?;
    println!("## extension — delay-tolerant batch deferral (30% batch, 8 h deadline)");
    println!(
        "serve-immediately baseline: ${:.2}/day, mean delay 0.0 h",
        baseline.total_cost()
    );
    println!();
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>16}",
        "percentile", "cost $/day", "saving %", "mean delay h", "max backlog"
    );
    for percentile in [10.0, 20.0, 30.0, 40.0, 50.0, 75.0] {
        let r = simulate_day(
            &fleet,
            &traces,
            cfg,
            DeferralStrategy::ThresholdDefer { percentile },
        )?;
        assert_eq!(r.deadline_violations(), 0, "deadline violated");
        println!(
            "{percentile:>12.0} {:>12.2} {:>12.2} {:>14.2} {:>16.0}",
            r.total_cost(),
            100.0 * (baseline.total_cost() - r.total_cost()) / baseline.total_cost(),
            r.mean_delay_hours(),
            r.max_backlog(),
        );
    }
    println!();
    println!("lower percentiles defer harder: more savings, more delay — the [9]-style");
    println!("power-cost/delay trade-off, composed with the paper's geographic LP.");
    Ok(())
}
