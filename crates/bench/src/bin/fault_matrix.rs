//! `fault_matrix` — the seeded fault-injection matrix as a CI gate.
//!
//! Runs every batch fault kind (price spike, hold-last-value dropout,
//! amplified prediction error, forced solver failure, forced factor
//! refactorization, coordinator stall, battery outage) across a fixed
//! seed set on the paper's smoothing scenario. Each cell is executed **twice** and the two
//! trajectories compared field-for-field: a deterministic harness must
//! reproduce byte-identically or the cell fails. Cells also fail on hard
//! invariant violations; budget overshoot and fallback activations are
//! reported, not gated. One timed row per cell.
//!
//! Run with: `cargo run --release -p idc-bench --bin fault_matrix`
//!
//! `--seed N` restricts the matrix to a single fault seed (default: the
//! built-in seed set) and `--steps N` changes the scenario length
//! (default: the smoothing scenario's 25 periods) — the defaults leave
//! the golden output unchanged. `--trace-out PATH` additionally records
//! every cell (and the spans inside it) through the flight recorder and
//! writes a Chrome trace-event file; the console output is unchanged.

use std::time::Instant;

use idc_core::scenario::smoothing_scenario;
use idc_testkit::faults::{FaultKind, FaultPlan};

const SEEDS: [u64; 3] = [7, 2012, 0xFEED];

/// Reads the value of `--<flag> N` from `args`, if the flag is present.
/// Exits with a message on an unparsable value.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a numeric value");
                std::process::exit(2);
            })
    })
}

/// Reads the value of `--trace-out PATH` and installs the global flight
/// recorder when present.
fn trace_flag(args: &[String]) -> Option<String> {
    let i = args.iter().position(|a| a == "--trace-out")?;
    let path = args.get(i + 1).cloned().unwrap_or_else(|| {
        eprintln!("--trace-out needs a path");
        std::process::exit(2);
    });
    idc_obs::install_global_recorder(1 << 20);
    Some(path)
}

fn main() -> Result<(), idc_core::Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = trace_flag(&args);
    let seeds: Vec<u64> = match flag_value(&args, "--seed") {
        Some(s) => vec![s],
        None => SEEDS.to_vec(),
    };
    let base = match flag_value::<usize>(&args, "--steps") {
        Some(n) => smoothing_scenario().with_num_steps(n),
        None => smoothing_scenario(),
    };
    println!(
        "## fault_matrix — {} kinds × {} seeds on '{}'",
        FaultKind::ALL.len(),
        seeds.len(),
        base.name()
    );
    println!(
        "{:<18} {:>8} {:>12} {:>6} {:>6} {:>10} {:>12} {:>9}",
        "fault", "seed", "cost $", "soft", "hard", "fallbacks", "reproduced", "ms"
    );
    let mut failures = Vec::new();
    for kind in FaultKind::ALL {
        if kind.runtime_layer() {
            // Delivery-layer faults have no batch expression; the online
            // soak harness (`runtime_soak --tenants`) is their matrix.
            println!(
                "{:<18} {:>8} {:>12} {:>6} {:>6} {:>10} {:>12} {:>9}",
                kind.label(),
                "-",
                "skipped",
                "-",
                "-",
                "-",
                "runtime",
                "-"
            );
            continue;
        }
        for seed in seeds.iter().copied() {
            let plan = FaultPlan::new(kind, seed);
            let cell_span =
                idc_obs::Span::enter_cat(format!("fault.{}#{seed}", kind.label()), "verify");
            let t = Instant::now();
            let first = plan.run(&base)?;
            let second = plan.run(&base)?;
            let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
            drop(cell_span);
            let reproduced = first.result == second.result
                && first.report.violations == second.report.violations
                && first.fallback_steps == second.fallback_steps;
            let hard = first.report.hard_violations();
            let soft = first.report.violations.len() - hard;
            println!(
                "{:<18} {:>8} {:>12.2} {:>6} {:>6} {:>10} {:>12} {:>9.1}",
                kind.label(),
                seed,
                first.result.total_cost(),
                soft,
                hard,
                first.fallback_steps.len(),
                if reproduced { "yes" } else { "NO" },
                elapsed_ms
            );
            if !reproduced {
                failures.push(format!("{kind}#{seed}: re-run diverged"));
            }
            if hard > 0 {
                eprintln!("{}", first.report.render());
                failures.push(format!("{kind}#{seed}: {hard} hard violation(s)"));
            }
        }
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, idc_obs::export_global_trace())
            .map_err(|e| idc_core::Error::Config(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    if failures.is_empty() {
        println!("fault matrix OK");
        Ok(())
    } else {
        Err(idc_core::Error::Config(failures.join("; ")))
    }
}
