//! `bench_diff` — compares two `BENCH_mpc.json` (or `BENCH_runtime.json`)
//! files and flags warm-step performance regressions.
//!
//! ```text
//! cargo run -p idc-bench --bin bench_diff -- \
//!     BASELINE.json CURRENT.json [--threshold F] [--iters-threshold F] [--warn-only]
//! ```
//!
//! Rows are keyed by `(idcs, portals, backend, shards)` — the shard
//! count suffixes the key (e.g. `64x128 sharded[8]`) so sharded rows at
//! different shard counts never silently compare — and matched across
//! the two files; the comparison metrics are `warm_ms` for `single_step`
//! rows, `warm_ms_per_step` for `end_to_end` and `storage_end_to_end`
//! rows (warm solves are the steady-state cost of the controller, so
//! they are what CI guards) and `solve_stats.iterations_per_step` of the
//! same rows — iteration count is hardware-independent, so it catches
//! active-set regressions that shared-runner timing noise would hide.
//! Storage rows carry a ` +storage` key suffix so they never collide
//! with the plain row at the same size and backend.
//! `BENCH_runtime.json` documents (schema `bench.runtime.v1`, written by
//! `runtime_soak`) contribute per-tenant `p99_step_ms` rows keyed by
//! `tenant scenario backend` plus aggregate `p50_step_ms` / `p99_step_ms`
//! / `step_ms` (the inverse of `steps_per_sec`, so lower is better like
//! every other timing row); all are gated by `--threshold`.
//! A row regresses when `current > baseline * (1 + threshold)`; both
//! thresholds are relative (`--threshold`, default 0.10 = 10%, gates the
//! timing rows; `--iters-threshold`, default 0.25, gates the iteration
//! rows). Improvements and rows present on only one side are reported
//! but never gated on.
//!
//! Exit status: 0 when no row regresses (or with `--warn-only`, always,
//! so CI can surface the table without flaking on shared-runner noise),
//! 1 on regression, 2 on usage/parse errors.

use serde::Value;

/// A comparable row: table name, key, and the compared metric (warm
/// wall-clock for the timing tables, a per-step count for `iterations`).
struct Row {
    table: &'static str,
    key: String,
    warm_ms: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff BASELINE.json CURRENT.json [--threshold F] \
         [--iters-threshold F] [--warn-only]\n\
         \x20 compares warm-step timings and iterations-per-step row by row;\n\
         \x20 exits 1 when any timing row regresses by more than --threshold\n\
         \x20 (default 0.10) or any iteration row by more than --iters-threshold\n\
         \x20 (default 0.25), both relative"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn number(value: &Value, key: &str) -> Option<f64> {
    match value.get(key) {
        Some(Value::Number(n)) => Some(*n),
        _ => None,
    }
}

fn text<'v>(value: &'v Value, key: &str) -> Option<&'v str> {
    match value.get(key) {
        Some(Value::String(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Extracts the comparable rows of one `BENCH_mpc.json` document.
fn rows(doc: &Value) -> Vec<Row> {
    let mut out = Vec::new();
    for (table, metric) in [
        ("single_step", "warm_ms"),
        ("end_to_end", "warm_ms_per_step"),
        ("storage_end_to_end", "warm_ms_per_step"),
    ] {
        let Some(Value::Array(items)) = doc.get(table) else {
            continue;
        };
        for item in items {
            let (Some(idcs), Some(portals), Some(backend)) = (
                number(item, "idcs"),
                number(item, "portals"),
                text(item, "backend"),
            ) else {
                continue;
            };
            let Some(warm_ms) = number(item, metric) else {
                continue;
            };
            // Key by size × backend × shards: a row measured at a
            // different shard count is a different experiment, not a
            // regression candidate. Monolithic rows (shards 0 or the
            // field absent in pre-sharding baselines) keep the bare key.
            let shards = number(item, "shards").unwrap_or(0.0) as u64;
            let mut key = if shards > 0 {
                format!("{}x{} {backend}[{shards}]", idcs as u64, portals as u64)
            } else {
                format!("{}x{} {backend}", idcs as u64, portals as u64)
            };
            if table == "storage_end_to_end" {
                key.push_str(" +storage");
            }
            // The end-to-end rows carry nested solver introspection; gate
            // on iterations per step too — it is hardware-independent, so
            // it catches active-set regressions that timing noise hides.
            if metric == "warm_ms_per_step" {
                if let Some(iters) = item
                    .get("solve_stats")
                    .and_then(|stats| number(stats, "iterations_per_step"))
                {
                    out.push(Row {
                        table: "iterations",
                        key: key.clone(),
                        warm_ms: iters,
                    });
                }
            }
            out.push(Row {
                table,
                key,
                warm_ms,
            });
        }
    }
    // `BENCH_runtime.json` (schema bench.runtime.v1): per-tenant p99 step
    // latency plus aggregate percentiles and throughput. Throughput is
    // folded into `step_ms` (its inverse) so every compared metric is
    // lower-is-better and the single gating rule applies unchanged.
    if let Some(Value::Array(items)) = doc.get("runtime") {
        for item in items {
            let (Some(tenant), Some(p99)) = (text(item, "tenant"), number(item, "p99_step_ms"))
            else {
                continue;
            };
            let scenario = text(item, "scenario").unwrap_or("?");
            let backend = text(item, "backend").unwrap_or("default");
            out.push(Row {
                table: "runtime",
                key: format!("{tenant} {scenario} {backend}"),
                warm_ms: p99,
            });
        }
    }
    if let Some(agg) = doc.get("aggregate") {
        for metric in ["p50_step_ms", "p99_step_ms"] {
            if let Some(ms) = number(agg, metric) {
                out.push(Row {
                    table: "runtime_agg",
                    key: metric.to_string(),
                    warm_ms: ms,
                });
            }
        }
        if let Some(sps) = number(agg, "steps_per_sec") {
            if sps > 0.0 {
                out.push(Row {
                    table: "runtime_agg",
                    key: "step_ms".to_string(),
                    warm_ms: 1000.0 / sps,
                });
            }
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.10f64;
    let mut iters_threshold = 0.25f64;
    let mut warn_only = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--iters-threshold" => {
                iters_threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--warn-only" => warn_only = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with("--") => paths.push(other.to_string()),
            _ => usage(),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        usage()
    };
    let baseline = rows(&load(baseline_path));
    let current = rows(&load(current_path));

    println!(
        "## bench_diff — {baseline_path} -> {current_path} \
         (timing threshold {:.0}%, iterations threshold {:.0}%)",
        100.0 * threshold,
        100.0 * iters_threshold
    );
    println!(
        "{:<12} {:<28} {:>12} {:>12} {:>9} {:>10}",
        "table", "row", "base ms", "cur ms", "change", "status"
    );
    let mut regressions = 0usize;
    for base_row in &baseline {
        let Some(cur_row) = current
            .iter()
            .find(|r| r.table == base_row.table && r.key == base_row.key)
        else {
            println!(
                "{:<12} {:<28} {:>12.3} {:>12} {:>9} {:>10}",
                base_row.table, base_row.key, base_row.warm_ms, "-", "-", "MISSING"
            );
            continue;
        };
        let rel = if base_row.warm_ms > 0.0 {
            cur_row.warm_ms / base_row.warm_ms - 1.0
        } else {
            0.0
        };
        let row_threshold = if base_row.table == "iterations" {
            iters_threshold
        } else {
            threshold
        };
        let status = if rel > row_threshold {
            regressions += 1;
            "REGRESSED"
        } else if rel < -row_threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<12} {:<28} {:>12.3} {:>12.3} {:>+8.1}% {:>10}",
            base_row.table,
            base_row.key,
            base_row.warm_ms,
            cur_row.warm_ms,
            100.0 * rel,
            status
        );
    }
    for cur_row in &current {
        if !baseline
            .iter()
            .any(|r| r.table == cur_row.table && r.key == cur_row.key)
        {
            println!(
                "{:<12} {:<28} {:>12} {:>12.3} {:>9} {:>10}",
                cur_row.table, cur_row.key, "-", cur_row.warm_ms, "-", "NEW"
            );
        }
    }
    if baseline.is_empty() {
        eprintln!("bench_diff: no comparable rows in {baseline_path}");
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!(
            "bench_diff: {regressions} row(s) regressed beyond their threshold{}",
            if warn_only { " (warn-only)" } else { "" }
        );
        if !warn_only {
            std::process::exit(1);
        }
    } else {
        println!("bench_diff: no warm-step or iteration regressions");
    }
}
