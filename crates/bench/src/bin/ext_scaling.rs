//! Extension — scalability study: controller solve time and achievable
//! smoothing as the fleet grows beyond the paper's 3 × 5 instance.
//!
//! Builds synthetic fleets of N IDCs × C portals, runs one price-flip
//! window under the MPC, and reports wall-clock per control step alongside
//! the smoothing quality — the numbers a deployment engineer needs before
//! adopting the controller at scale.
//!
//! Run with: `cargo run --release -p idc-bench --bin ext_scaling`

use std::time::Instant;

use idc_core::policy::{MpcPolicy, MpcPolicyConfig};
use idc_core::scenario::{PricingSpec, Scenario};
use idc_core::simulation::Simulator;
use idc_datacenter::fleet::IdcFleet;
use idc_datacenter::idc::IdcConfig;
use idc_datacenter::portal::FrontEndPortal;
use idc_datacenter::server::ServerSpec;
use idc_market::region::Region;
use idc_market::rtp::TracePricing;
use idc_market::trace::PriceTrace;

/// A synthetic fleet of `n` IDCs × `c` portals sized like the paper's.
fn synthetic(n: usize, c: usize) -> (IdcFleet, Vec<PriceTrace>) {
    let idcs: Vec<IdcConfig> = (0..n)
        .map(|j| {
            IdcConfig::new(
                format!("idc-{j}"),
                30_000,
                ServerSpec::new(150.0, 285.0, 1.25 + 0.25 * (j % 4) as f64).expect("valid"),
                1.0,
            )
            .expect("valid")
        })
        .collect();
    let per_portal = idcs.iter().map(|i| i.max_workload()).sum::<f64>() * 0.6 / c as f64;
    let portals: Vec<FrontEndPortal> = (0..c)
        .map(|i| FrontEndPortal::new(format!("portal-{i}"), per_portal).expect("valid"))
        .collect();
    // Hourly prices that flip ranking at hour 7, like the paper's traces.
    let traces: Vec<PriceTrace> = (0..n)
        .map(|j| {
            let base = 25.0 + (j as f64 * 13.7) % 30.0;
            let hourly: Vec<f64> = (0..24)
                .map(|h| {
                    if h >= 7 {
                        base + ((j as f64 * 31.1) % 45.0) - 20.0
                    } else {
                        base
                    }
                })
                .collect();
            PriceTrace::new(Region::new(j, format!("region-{j}")), hourly).expect("24 values")
        })
        .collect();
    (IdcFleet::new(portals, idcs).expect("non-empty"), traces)
}

fn main() -> Result<(), idc_core::Error> {
    println!("## extension — scaling study (one 12.5-minute price-flip window)");
    println!(
        "{:>6} {:>8} {:>10} {:>13} {:>13} {:>9} {:>16} {:>14} {:>8}",
        "IDCs",
        "portals",
        "ΔU vars",
        "cold ms/step",
        "warm ms/step",
        "speedup",
        "worst jump MW",
        "latency ok %",
        "warm %"
    );
    let sim = Simulator::new();
    for (n, c) in [(3usize, 5usize), (4, 8), (6, 12), (8, 15)] {
        let ts = 30.0 / 3600.0;
        let mut per_mode = [0.0f64; 2];
        let mut warm_pct = 0.0;
        let mut worst = 0.0f64;
        let mut latency_ok = 0.0;
        for (mode, solver_reuse) in [false, true].into_iter().enumerate() {
            let (fleet, traces) = synthetic(n, c);
            let scenario = Scenario::new(
                format!("scale-{n}x{c}"),
                fleet,
                PricingSpec::Trace(TracePricing::new(traces)),
                7.0 - 5.0 * ts,
                25.0 * ts,
                ts,
            )
            .expect("consistent")
            .with_init_hour(6.0);
            let mut policy = MpcPolicy::new(MpcPolicyConfig {
                solver_reuse,
                ..MpcPolicyConfig::default()
            })?;
            let start = Instant::now();
            let run = sim.run(&scenario, &mut policy)?;
            let elapsed = start.elapsed().as_secs_f64();
            let steps = run.times_min().len() as f64;
            per_mode[mode] = 1e3 * elapsed / steps;
            if solver_reuse {
                worst = (0..n)
                    .map(|j| run.power_stats(j).expect("nonempty").max_abs_step_mw)
                    .fold(0.0f64, f64::max);
                latency_ok = run.latency_ok_fraction();
                let controller = policy.controller();
                let solves = (controller.warm_solves() + controller.cold_solves()).max(1);
                warm_pct = 100.0 * controller.warm_solves() as f64 / solves as f64;
            }
        }
        println!(
            "{n:>6} {c:>8} {:>10} {:>13.2} {:>13.2} {:>8.1}x {:>16.3} {:>14.2} {:>8.1}",
            n * c * 3, // β₂ = 3 blocks
            per_mode[0],
            per_mode[1],
            per_mode[0] / per_mode[1].max(1e-9),
            worst,
            100.0 * latency_ok,
            warm_pct,
        );
    }
    println!();
    println!("cold = the controller state is reset every sampling period (rebuild + cold");
    println!("active-set solve, the pre-warm-start baseline); warm = the structure cache,");
    println!("Schur-complement factorizations and shifted warm starts are reused across");
    println!("steps. The QP is strictly convex, so both modes land on the same plan up");
    println!("to solver rounding (≲1e-5 relative cost over a closed-loop window).");
    Ok(())
}
