//! Extension — scalability study: controller solve time and achievable
//! smoothing as the fleet grows beyond the paper's 3 × 5 instance.
//!
//! Builds synthetic fleets of N IDCs × C portals, runs one price-flip
//! window under the MPC, and reports wall-clock per control step alongside
//! the smoothing quality — the numbers a deployment engineer needs before
//! adopting the controller at scale.
//!
//! Run with: `cargo run --release -p idc-bench --bin ext_scaling`

use std::time::Instant;

use idc_core::policy::{MpcPolicy, MpcPolicyConfig};
use idc_core::scenario::{PricingSpec, Scenario};
use idc_core::simulation::Simulator;
use idc_datacenter::fleet::IdcFleet;
use idc_datacenter::idc::IdcConfig;
use idc_datacenter::portal::FrontEndPortal;
use idc_datacenter::server::ServerSpec;
use idc_market::region::Region;
use idc_market::rtp::TracePricing;
use idc_market::trace::PriceTrace;

/// A synthetic fleet of `n` IDCs × `c` portals sized like the paper's.
fn synthetic(n: usize, c: usize) -> (IdcFleet, Vec<PriceTrace>) {
    let idcs: Vec<IdcConfig> = (0..n)
        .map(|j| {
            IdcConfig::new(
                format!("idc-{j}"),
                30_000,
                ServerSpec::new(150.0, 285.0, 1.25 + 0.25 * (j % 4) as f64).expect("valid"),
                1.0,
            )
            .expect("valid")
        })
        .collect();
    let per_portal = idcs.iter().map(|i| i.max_workload()).sum::<f64>() * 0.6 / c as f64;
    let portals: Vec<FrontEndPortal> = (0..c)
        .map(|i| FrontEndPortal::new(format!("portal-{i}"), per_portal).expect("valid"))
        .collect();
    // Hourly prices that flip ranking at hour 7, like the paper's traces.
    let traces: Vec<PriceTrace> = (0..n)
        .map(|j| {
            let base = 25.0 + (j as f64 * 13.7) % 30.0;
            let hourly: Vec<f64> = (0..24)
                .map(|h| {
                    if h >= 7 {
                        base + ((j as f64 * 31.1) % 45.0) - 20.0
                    } else {
                        base
                    }
                })
                .collect();
            PriceTrace::new(Region::new(j, format!("region-{j}")), hourly).expect("24 values")
        })
        .collect();
    (IdcFleet::new(portals, idcs).expect("non-empty"), traces)
}

fn main() -> Result<(), idc_core::Error> {
    println!("## extension — scaling study (one 12.5-minute price-flip window)");
    println!(
        "{:>6} {:>8} {:>10} {:>16} {:>16} {:>14}",
        "IDCs", "portals", "ΔU vars", "ms per step", "worst jump MW", "latency ok %"
    );
    let sim = Simulator::new();
    for (n, c) in [(3usize, 5usize), (4, 8), (6, 12), (8, 15)] {
        let (fleet, traces) = synthetic(n, c);
        let ts = 30.0 / 3600.0;
        let scenario = Scenario::new(
            format!("scale-{n}x{c}"),
            fleet,
            PricingSpec::Trace(TracePricing::new(traces)),
            7.0 - 5.0 * ts,
            25.0 * ts,
            ts,
        )
        .expect("consistent")
        .with_init_hour(6.0);
        let mut policy = MpcPolicy::new(MpcPolicyConfig::default())?;
        let start = Instant::now();
        let run = sim.run(&scenario, &mut policy)?;
        let elapsed = start.elapsed().as_secs_f64();
        let steps = run.times_min().len() as f64;
        let worst = (0..n)
            .map(|j| run.power_stats(j).expect("nonempty").max_abs_step_mw)
            .fold(0.0f64, f64::max);
        println!(
            "{n:>6} {c:>8} {:>10} {:>16.2} {:>16.3} {:>14.2}",
            n * c * 3, // β₂ = 3 blocks
            1e3 * elapsed / steps,
            worst,
            100.0 * run.latency_ok_fraction(),
        );
    }
    println!();
    println!("the dense active-set QP (cold-started every step) scales steeply in N·C·β₂ —");
    println!("fine for the paper-sized instance at a 30 s control period, and the clear");
    println!("future-work item (warm starts / sparse KKT solves) for continental fleets.");
    Ok(())
}
