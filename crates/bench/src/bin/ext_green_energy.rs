//! Extension — greening geographical load balancing (paper Sec. II,
//! citing Liu et al. \[6\].).
//!
//! Gives each region a renewable profile (Michigan wind, Minnesota a small
//! wind farm, Wisconsin solar) and walks the 24-hour day twice: once with
//! the plain cost-optimal LP (renewable-blind) and once with the
//! green-aware LP that places load under the renewable caps first.
//! Reports hourly green fractions and the daily brown-energy reduction.
//!
//! Run with: `cargo run -p idc-bench --bin ext_green_energy`

use idc_control::green::green_aware_reference;
use idc_control::reference::optimal_reference;
use idc_core::config;
use idc_market::renewable::{green_brown_split, RenewableProfile};

fn main() -> Result<(), idc_core::Error> {
    let fleet = config::paper_fleet_calibrated();
    let traces = config::paper_price_traces();
    let offered = fleet.offered_workloads();
    // The solar farm sits in Minnesota — the region the cost-optimal LP
    // avoids (highest energy-per-request) — so renewable awareness must
    // actively pull load there to harvest it.
    let renewables = vec![
        RenewableProfile::wind(1.5).expect("valid"),
        RenewableProfile::solar(8.0).expect("valid"),
        RenewableProfile::wind(1.0).expect("valid"),
    ];

    println!(
        "## extension — green-aware load balancing (MI wind 1.5, MN solar 8.0, WI wind 1.0 MW)"
    );
    println!(
        "{:>4} {:>16} {:>16} {:>14} {:>14}",
        "hour", "green% blind", "green% aware", "brown$ blind", "brown$ aware"
    );
    let mut blind_brown_cost = 0.0;
    let mut aware_brown_cost = 0.0;
    let mut blind_green_mwh = 0.0;
    let mut aware_green_mwh = 0.0;
    for h in 0..24 {
        let hour = h as f64;
        let prices: Vec<f64> = traces.iter().map(|t| t.price_at_hour(hour)).collect();

        // Renewable-blind LP, green accounted after the fact.
        let blind = optimal_reference(fleet.idcs(), &offered, &prices)?;
        let mut blind_green = 0.0;
        let mut blind_total = 0.0;
        let mut blind_cost_h = 0.0;
        for j in 0..3 {
            let (g, b) =
                green_brown_split(blind.power_mw()[j], renewables[j].available_at_hour(hour));
            blind_green += g;
            blind_total += blind.power_mw()[j];
            blind_cost_h += b * prices[j].max(0.0);
        }
        // Green-aware LP.
        let aware = green_aware_reference(fleet.idcs(), &offered, &prices, &renewables, hour)?;
        let aware_total: f64 = aware.power_mw().iter().sum();

        blind_brown_cost += blind_cost_h;
        aware_brown_cost += aware.brown_cost_rate();
        blind_green_mwh += blind_green;
        aware_green_mwh += aware.green_mw().iter().sum::<f64>();
        println!(
            "{h:>4} {:>16.1} {:>16.1} {:>14.2} {:>14.2}",
            100.0 * blind_green / blind_total,
            100.0 * aware.green_fraction(),
            blind_cost_h,
            aware.brown_cost_rate(),
        );
        let _ = aware_total;
    }
    println!();
    println!(
        "daily green energy used: blind {blind_green_mwh:.1} MWh vs aware {aware_green_mwh:.1} MWh ({:+.1}%)",
        100.0 * (aware_green_mwh - blind_green_mwh) / blind_green_mwh.max(1e-9)
    );
    println!(
        "daily brown-energy cost: blind ${blind_brown_cost:.2} vs aware ${aware_brown_cost:.2} ({:.2}% saved)",
        100.0 * (blind_brown_cost - aware_brown_cost) / blind_brown_cost
    );
    println!("answering [6]: yes — geographic load balancing with renewable awareness");
    println!("raises green utilization and cuts brown-energy cost on the same fleet.");
    Ok(())
}
