//! Extension — two-time-scale ablation (DESIGN.md decision #4): how the
//! slow-loop period (sleep decisions every k fast steps) and the server
//! ramp limit shape the smoothing/cost trade-off on the Fig. 4 scenario.
//!
//! Run with: `cargo run -p idc-bench --bin ext_two_time_scale`

use idc_core::policy::{MpcPolicy, MpcPolicyConfig, OptimalPolicy, ReferenceKind};
use idc_core::scenario::smoothing_scenario;
use idc_core::simulation::Simulator;

fn main() -> Result<(), idc_core::Error> {
    let scenario = smoothing_scenario();
    let sim = Simulator::new();
    let opt = sim.run(
        &scenario,
        &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
    )?;

    println!("## extension — two-time-scale ablation (Fig. 4 scenario)");
    println!(
        "{:>8} {:>8} {:>14} {:>16} {:>14} {:>16}",
        "k_slow", "ramp", "cost ovh %", "worst jump MW", "MI final MW", "worst switch"
    );
    for slow_period in [1usize, 2, 4] {
        for ramp in [500u64, 1_500, 5_000, 40_000] {
            let mut policy = MpcPolicy::new(MpcPolicyConfig {
                slow_period,
                server_ramp_limit: ramp,
                ..MpcPolicyConfig::default()
            })?;
            let run = sim.run(&scenario, &mut policy)?;
            let jump = (0..3)
                .map(|j| run.power_stats(j).expect("nonempty").max_abs_step_mw)
                .fold(0.0f64, f64::max);
            let switch = (0..3)
                .map(|j| {
                    run.servers(j)
                        .windows(2)
                        .map(|w| w[1].abs_diff(w[0]))
                        .max()
                        .unwrap_or(0)
                })
                .max()
                .unwrap_or(0);
            println!(
                "{slow_period:>8} {ramp:>8} {:>14.3} {:>16.3} {:>14.3} {:>16}",
                100.0 * (run.total_cost() - opt.total_cost()) / opt.total_cost(),
                jump,
                run.power_mw(0).last().expect("nonempty"),
                switch,
            );
        }
    }
    println!();
    println!("reading: larger ramp limits / shorter slow periods track faster (lower cost");
    println!("overhead) but switch more servers at once and jump harder — the separation");
    println!("the paper motivates in Sec. IV-B made quantitative.");
    Ok(())
}
