//! Extension — the demand↔price "vicious cycle" of paper Sec. I,
//! quantified.
//!
//! Sweeps the price-impact coefficient γ of the demand-responsive pricing
//! model and reports how price volatility and worst power jumps grow for
//! the naive optimal policy while the MPC stays damped.
//!
//! Run with: `cargo run -p idc-bench --bin ext_vicious_cycle`

use idc_core::metrics::price_volatility;
use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
use idc_core::scenario::vicious_cycle_scenario;
use idc_core::simulation::{SimulationResult, Simulator};

fn worst_jump(r: &SimulationResult) -> f64 {
    (0..r.num_idcs())
        .map(|j| r.power_stats(j).expect("nonempty").max_abs_step_mw)
        .fold(0.0f64, f64::max)
}

fn main() -> Result<(), idc_core::Error> {
    let sim = Simulator::new();
    println!("## extension — vicious cycle (γ sweep, $/MWh per MW of own demand)");
    println!(
        "{:>6} {:>16} {:>16} {:>14} {:>14} {:>12} {:>12}",
        "gamma",
        "price-vol opt",
        "price-vol mpc",
        "jump opt MW",
        "jump mpc MW",
        "cost opt $",
        "cost mpc $"
    );
    for gamma in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let scenario = vicious_cycle_scenario(gamma);
        let opt = sim.run(
            &scenario,
            &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
        )?;
        let mpc = sim.run(&scenario, &mut MpcPolicy::paper_tuned(&scenario)?)?;
        println!(
            "{gamma:>6.2} {:>16.3} {:>16.3} {:>14.3} {:>14.3} {:>12.2} {:>12.2}",
            price_volatility(opt.prices()),
            price_volatility(mpc.prices()),
            worst_jump(&opt),
            worst_jump(&mpc),
            opt.total_cost(),
            mpc.total_cost(),
        );
    }
    println!();
    println!("the paper argues this loop qualitatively (Sec. I); no figure to match —");
    println!(
        "the expectation is monotone growth of baseline volatility with γ and a flat MPC row."
    );
    Ok(())
}
