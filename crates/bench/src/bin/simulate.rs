//! `simulate` — a small CLI over the simulator for interactive
//! experimentation.
//!
//! ```text
//! cargo run -p idc-bench --bin simulate -- \
//!     [--scenario smoothing|peak|table2|vicious:<gamma>|diurnal:<seed>] \
//!     [--policy mpc|optimal|lp|static] \
//!     [--smoothing-weight <R>] [--tracking-weight <Q>] \
//!     [--ramp <servers/step>] [--slow-period <k>] [--quiet] [--csv]
//! ```
//!
//! Prints the per-IDC trajectories and summary statistics.

use idc_core::policy::{
    MpcPolicy, MpcPolicyConfig, OptimalPolicy, Policy, ReferenceKind, StaticProportionalPolicy,
};
use idc_core::report::{render_csv, render_trajectories};
use idc_core::scenario::{
    diurnal_day_scenario, peak_shaving_scenario, smoothing_scenario, smoothing_scenario_table_ii,
    vicious_cycle_scenario, Scenario,
};
use idc_core::simulation::Simulator;
use idc_control::mpc::MpcConfig;

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--scenario smoothing|peak|table2|vicious:<gamma>|diurnal:<seed>]\n\
         \x20               [--policy mpc|optimal|lp|static]\n\
         \x20               [--smoothing-weight R] [--tracking-weight Q]\n\
         \x20               [--ramp N] [--slow-period K] [--quiet] [--csv]"
    );
    std::process::exit(2);
}

fn parse_scenario(spec: &str) -> Option<Scenario> {
    match spec {
        "smoothing" => Some(smoothing_scenario()),
        "peak" => Some(peak_shaving_scenario()),
        "table2" => Some(smoothing_scenario_table_ii()),
        other => {
            if let Some(gamma) = other.strip_prefix("vicious:") {
                return Some(vicious_cycle_scenario(gamma.parse().ok()?));
            }
            if let Some(seed) = other.strip_prefix("diurnal:") {
                return Some(diurnal_day_scenario(seed.parse().ok()?));
            }
            None
        }
    }
}

fn main() -> Result<(), idc_core::Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_spec = "smoothing".to_string();
    let mut policy_spec = "mpc".to_string();
    let mut mpc_cfg = MpcConfig::default();
    let mut ramp = 1_500u64;
    let mut slow_period = 1usize;
    let mut quiet = false;
    let mut csv = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--scenario" => scenario_spec = value("--scenario"),
            "--policy" => policy_spec = value("--policy"),
            "--smoothing-weight" => {
                mpc_cfg.smoothing_weight = value("--smoothing-weight").parse().unwrap_or_else(|_| usage())
            }
            "--tracking-weight" => {
                mpc_cfg.tracking_weight = value("--tracking-weight").parse().unwrap_or_else(|_| usage())
            }
            "--ramp" => ramp = value("--ramp").parse().unwrap_or_else(|_| usage()),
            "--slow-period" => {
                slow_period = value("--slow-period").parse().unwrap_or_else(|_| usage())
            }
            "--quiet" => quiet = true,
            "--csv" => csv = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }

    let Some(scenario) = parse_scenario(&scenario_spec) else {
        eprintln!("unknown scenario: {scenario_spec}");
        usage()
    };
    let mut policy: Box<dyn Policy> = match policy_spec.as_str() {
        "mpc" => Box::new(MpcPolicy::new(MpcPolicyConfig {
            mpc: mpc_cfg,
            budgets: scenario.budgets().cloned(),
            server_ramp_limit: ramp,
            slow_period,
            ..MpcPolicyConfig::default()
        })?),
        "optimal" => Box::new(OptimalPolicy::new(ReferenceKind::PriceGreedy)),
        "lp" => Box::new(OptimalPolicy::new(ReferenceKind::LpOptimal)),
        "static" => Box::new(StaticProportionalPolicy::new()),
        other => {
            eprintln!("unknown policy: {other}");
            usage()
        }
    };

    let result = Simulator::new().run(&scenario, policy.as_mut())?;
    let names: Vec<&str> = scenario.fleet().idcs().iter().map(|i| i.name()).collect();
    if csv {
        print!("{}", render_csv(&result, &names));
        return Ok(());
    }
    if !quiet {
        println!("{}", render_trajectories(&result, &names));
    }
    println!("scenario: {}", result.scenario_name());
    println!("policy:   {}", result.policy_name());
    println!("total cost: ${:.2}", result.total_cost());
    for (j, name) in names.iter().enumerate() {
        let s = result.power_stats(j).expect("nonempty run");
        println!(
            "{name:>12}: mean {:.3} MW | peak {:.3} MW | volatility {:.4} MW/step | worst jump {:.3} MW",
            s.mean_mw, s.peak_mw, s.mean_abs_step_mw, s.max_abs_step_mw
        );
    }
    if let Some(budgets) = scenario.budgets() {
        println!(
            "budget violations (fraction of steps): {:?}",
            result.budget_violation_fractions(budgets.as_slice())
        );
    }
    println!(
        "latency-ok {:.2}% | shed {:.4}%",
        100.0 * result.latency_ok_fraction(),
        100.0 * result.shed_fraction()
    );
    Ok(())
}
