//! `simulate` — a small CLI over the simulator for interactive
//! experimentation.
//!
//! ```text
//! cargo run -p idc-bench --bin simulate -- \
//!     [--scenario smoothing|peak|table2|vicious:<gamma>|diurnal:<seed>] \
//!     [--policy mpc|optimal|lp|static] \
//!     [--smoothing-weight <R>] [--tracking-weight <Q>] \
//!     [--ramp <servers/step>] [--slow-period <k>] [--quiet] [--csv] \
//!     [--sweep] [--validate] [--trace-out <path>] [--anomaly-out <path>]
//! ```
//!
//! Prints the per-IDC trajectories and summary statistics. With `--sweep`
//! it instead runs the full policy × smoothing-weight grid on the chosen
//! scenario — one simulation per worker thread, each with its own policy
//! and an independently rebuilt scenario, results printed in grid order so
//! the output is bit-for-bit identical to a sequential sweep.
//!
//! `--validate` records the full trajectory through the validating
//! simulator and checks the testkit invariants (conservation, `λ ≥ 0`,
//! latency, budget margin, cost consistency) on every run; the exit code
//! is nonzero if a hard invariant is violated. Under `--sweep` each grid
//! cell is annotated with its invariant status.
//!
//! `--trace-out` installs the flight recorder and writes a Chrome
//! trace-event JSON file when the run finishes (open in Perfetto);
//! `--anomaly-out` streams per-step anomaly records (solver failures,
//! fallback degradations, iteration spikes) as JSON lines. Neither flag
//! changes the simulated trajectory — output is byte-identical with and
//! without them.

use idc_control::mpc::MpcConfig;
use idc_core::policy::{
    MpcPolicy, MpcPolicyConfig, OptimalPolicy, Policy, ReferenceKind, StaticProportionalPolicy,
};
use idc_core::report::{render_csv, render_trajectories};
use idc_core::scenario::{
    diurnal_day_scenario, peak_shaving_scenario, smoothing_scenario, smoothing_scenario_table_ii,
    vicious_cycle_scenario, Scenario,
};
use idc_core::simulation::Simulator;
use idc_testkit::invariants::{check_run, Tolerances};

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--scenario smoothing|peak|table2|vicious:<gamma>|diurnal:<seed>]\n\
         \x20               [--policy mpc|optimal|lp|static]\n\
         \x20               [--smoothing-weight R] [--tracking-weight Q]\n\
         \x20               [--ramp N] [--slow-period K] [--quiet] [--csv] [--sweep]\n\
         \x20               [--validate] [--trace-out PATH] [--anomaly-out PATH]"
    );
    std::process::exit(2);
}

fn parse_scenario(spec: &str) -> Option<Scenario> {
    match spec {
        "smoothing" => Some(smoothing_scenario()),
        "peak" => Some(peak_shaving_scenario()),
        "table2" => Some(smoothing_scenario_table_ii()),
        other => {
            if let Some(gamma) = other.strip_prefix("vicious:") {
                return Some(vicious_cycle_scenario(gamma.parse().ok()?));
            }
            if let Some(seed) = other.strip_prefix("diurnal:") {
                return Some(diurnal_day_scenario(seed.parse().ok()?));
            }
            None
        }
    }
}

/// One row of the `--sweep` grid.
struct SweepCell {
    policy: &'static str,
    smoothing_weight: Option<f64>,
}

/// Runs the policy × smoothing-weight grid over `scenario_spec`, one
/// simulation per thread.
///
/// Each worker rebuilds the scenario from the spec (scenario constructors
/// are deterministic in their seed, so every worker sees identical traces)
/// and owns its policy outright; results are joined and printed in grid
/// order, making the table bit-for-bit independent of thread scheduling.
fn run_sweep(
    scenario_spec: &str,
    ramp: u64,
    slow_period: usize,
    validate: bool,
) -> Result<(), idc_core::Error> {
    const WEIGHTS: [f64; 4] = [0.25, 1.0, 4.0, 16.0];
    let grid: Vec<SweepCell> = ["static", "optimal", "lp"]
        .into_iter()
        .map(|policy| SweepCell {
            policy,
            smoothing_weight: None,
        })
        .chain(WEIGHTS.into_iter().map(|w| SweepCell {
            policy: "mpc",
            smoothing_weight: Some(w),
        }))
        .collect();

    let rows = std::thread::scope(|scope| {
        let handles: Vec<_> = grid
            .iter()
            .map(|cell| {
                scope.spawn(move || -> Result<(String, bool), idc_core::Error> {
                    let scenario = parse_scenario(scenario_spec).expect("validated by caller");
                    let mut policy: Box<dyn Policy> = match cell.policy {
                        "static" => Box::new(StaticProportionalPolicy::new()),
                        "optimal" => Box::new(OptimalPolicy::new(ReferenceKind::PriceGreedy)),
                        "lp" => Box::new(OptimalPolicy::new(ReferenceKind::LpOptimal)),
                        _ => Box::new(MpcPolicy::new(MpcPolicyConfig {
                            mpc: MpcConfig {
                                smoothing_weight: cell.smoothing_weight.expect("mpc cell"),
                                ..MpcConfig::default()
                            },
                            budgets: scenario.budgets().cloned(),
                            server_ramp_limit: ramp,
                            slow_period,
                            ..MpcPolicyConfig::default()
                        })?),
                    };
                    let simulator = if validate {
                        Simulator::with_validation()
                    } else {
                        Simulator::new()
                    };
                    let result = simulator.run(&scenario, policy.as_mut())?;
                    // Invariant annotation for the cell: "-" when not
                    // validating, "ok" / "SOFT(k)" / "HARD(k)" otherwise.
                    let (invariants, hard_ok) = if validate {
                        let report = check_run(&scenario, &result, &Tolerances::default());
                        let label = if report.is_clean() {
                            "ok".to_string()
                        } else if report.hard_clean() {
                            format!("SOFT({})", report.violations.len())
                        } else {
                            format!("HARD({})", report.violations.len())
                        };
                        (label, report.hard_clean())
                    } else {
                        ("-".to_string(), true)
                    };
                    let n = scenario.fleet().idcs().len();
                    let (mut vol, mut worst) = (0.0f64, 0.0f64);
                    for j in 0..n {
                        let s = result.power_stats(j).expect("nonempty run");
                        vol += s.mean_abs_step_mw / n as f64;
                        worst = worst.max(s.max_abs_step_mw);
                    }
                    let weight = cell
                        .smoothing_weight
                        .map_or_else(|| "-".into(), |w| format!("{w}"));
                    Ok((
                        format!(
                            "{:>8} {:>6} {:>12.2} {:>16.4} {:>14.3} {:>13.2} {:>10}",
                            cell.policy,
                            weight,
                            result.total_cost(),
                            vol,
                            worst,
                            100.0 * result.latency_ok_fraction(),
                            invariants,
                        ),
                        hard_ok,
                    ))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker never panics"))
            .collect::<Vec<_>>()
    });

    println!("## sweep — scenario: {scenario_spec}");
    println!(
        "{:>8} {:>6} {:>12} {:>16} {:>14} {:>13} {:>10}",
        "policy", "R", "cost $", "volatility MW", "worst jump MW", "latency ok %", "invariants"
    );
    let mut all_hard_ok = true;
    for row in rows {
        let (line, hard_ok) = row?;
        println!("{line}");
        all_hard_ok &= hard_ok;
    }
    if !all_hard_ok {
        return Err(idc_core::Error::Config(
            "sweep cells violated hard invariants (see HARD(..) rows)".into(),
        ));
    }
    Ok(())
}

/// Writes the flight recorder out as Chrome trace-event JSON, if requested.
fn write_trace(path: Option<&str>) -> Result<(), idc_core::Error> {
    if let Some(path) = path {
        std::fs::write(path, idc_obs::export_global_trace())
            .map_err(|e| idc_core::Error::Config(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    Ok(())
}

fn main() -> Result<(), idc_core::Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_spec = "smoothing".to_string();
    let mut policy_spec = "mpc".to_string();
    let mut mpc_cfg = MpcConfig::default();
    let mut ramp = 1_500u64;
    let mut slow_period = 1usize;
    let mut quiet = false;
    let mut csv = false;
    let mut sweep = false;
    let mut validate = false;
    let mut trace_out: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--scenario" => scenario_spec = value("--scenario"),
            "--policy" => policy_spec = value("--policy"),
            "--smoothing-weight" => {
                mpc_cfg.smoothing_weight = value("--smoothing-weight")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--tracking-weight" => {
                mpc_cfg.tracking_weight = value("--tracking-weight")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--ramp" => ramp = value("--ramp").parse().unwrap_or_else(|_| usage()),
            "--slow-period" => {
                slow_period = value("--slow-period").parse().unwrap_or_else(|_| usage())
            }
            "--quiet" => quiet = true,
            "--csv" => csv = true,
            "--sweep" => sweep = true,
            "--validate" => validate = true,
            "--trace-out" => {
                trace_out = Some(value("--trace-out"));
                idc_obs::install_global_recorder(1 << 20);
            }
            "--anomaly-out" => {
                let path = value("--anomaly-out");
                idc_obs::set_anomaly_log(std::path::Path::new(&path))
                    .map_err(|e| idc_core::Error::Config(format!("--anomaly-out {path}: {e}")))?;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }

    let Some(scenario) = parse_scenario(&scenario_spec) else {
        eprintln!("unknown scenario: {scenario_spec}");
        usage()
    };
    if sweep {
        let outcome = run_sweep(&scenario_spec, ramp, slow_period, validate);
        write_trace(trace_out.as_deref())?;
        return outcome;
    }
    let mut policy: Box<dyn Policy> = match policy_spec.as_str() {
        "mpc" => Box::new(MpcPolicy::new(MpcPolicyConfig {
            mpc: mpc_cfg,
            budgets: scenario.budgets().cloned(),
            server_ramp_limit: ramp,
            slow_period,
            ..MpcPolicyConfig::default()
        })?),
        "optimal" => Box::new(OptimalPolicy::new(ReferenceKind::PriceGreedy)),
        "lp" => Box::new(OptimalPolicy::new(ReferenceKind::LpOptimal)),
        "static" => Box::new(StaticProportionalPolicy::new()),
        other => {
            eprintln!("unknown policy: {other}");
            usage()
        }
    };

    let simulator = if validate {
        Simulator::with_validation()
    } else {
        Simulator::new()
    };
    let result = simulator.run(&scenario, policy.as_mut())?;
    write_trace(trace_out.as_deref())?;
    let names: Vec<&str> = scenario.fleet().idcs().iter().map(|i| i.name()).collect();
    if csv {
        print!("{}", render_csv(&result, &names));
        return Ok(());
    }
    if !quiet {
        println!("{}", render_trajectories(&result, &names));
    }
    println!("scenario: {}", result.scenario_name());
    println!("policy:   {}", result.policy_name());
    println!("total cost: ${:.2}", result.total_cost());
    for (j, name) in names.iter().enumerate() {
        let s = result.power_stats(j).expect("nonempty run");
        println!(
            "{name:>12}: mean {:.3} MW | peak {:.3} MW | volatility {:.4} MW/step | worst jump {:.3} MW",
            s.mean_mw, s.peak_mw, s.mean_abs_step_mw, s.max_abs_step_mw
        );
    }
    if let Some(budgets) = scenario.budgets() {
        println!(
            "budget violations (fraction of steps): {:?}",
            result.budget_violation_fractions(budgets.as_slice())
        );
    }
    println!(
        "latency-ok {:.2}% | shed {:.4}%",
        100.0 * result.latency_ok_fraction(),
        100.0 * result.shed_fraction()
    );
    if validate {
        let report = check_run(&scenario, &result, &Tolerances::default());
        println!("{}", report.render());
        if !report.hard_clean() {
            return Err(idc_core::Error::Config(format!(
                "hard invariant violations on scenario '{}'",
                scenario.name()
            )));
        }
    }
    Ok(())
}
