//! Regenerates Tables I–III of the paper from the library's pinned
//! configuration, annotated with the calibration discrepancies found
//! during reproduction.
//!
//! Run with: `cargo run -p idc-bench --bin tables`

use idc_core::config;

fn main() {
    println!("=== Table I — workload for five front-end portal servers (req/s) ===");
    print!("  i :");
    for p in config::paper_portals_table_i() {
        print!(" {:>8}", p.offered_workload());
    }
    println!("\n");

    println!("=== Table II — configuration of IDCs in three locations ===");
    println!("  j  name        mu (req/s)   M (printed)  M (calibrated)   D (printed)");
    let printed = config::paper_fleet_table_ii();
    let calibrated = config::paper_fleet_calibrated();
    for (j, (a, b)) in printed.idcs().iter().zip(calibrated.idcs()).enumerate() {
        println!(
            "  {j}  {:<10} {:>10} {:>13} {:>15} {:>13}",
            a.name(),
            a.service_rate(),
            a.total_servers(),
            b.total_servers(),
            a.latency_bound(),
        );
    }
    println!("  note: the paper prints M1 = 30 000, but its plotted Fig. 6/7 'optimal'");
    println!("  trajectories saturate Michigan at exactly 20 000 servers (5.7 MW), which");
    println!("  is only consistent with M1 = 20 000 — the calibrated fleet uses that.");
    println!("  servers: 150 W idle, 285 W peak [19].\n");

    println!("=== Table III — electricity price in three locations ($/MWh) ===");
    println!("  time   Michigan   Minnesota   Wisconsin");
    let traces = config::paper_price_traces();
    for h in [6.0, 7.0] {
        println!(
            "  {:>3}H {:>10.4} {:>11.4} {:>11.4}",
            h as u32,
            traces[0].price_at_hour(h),
            traces[1].price_at_hour(h),
            traces[2].price_at_hour(h),
        );
    }
    println!("  (paper: 6H = 43.2600 / 30.2600 / 19.0600, 7H = 49.9000 / 29.4700 / 77.9700)");
}
