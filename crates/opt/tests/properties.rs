//! Property-based tests for the optimization solvers.

use idc_linalg::banded::BlockTridiag;
use idc_linalg::{vec_ops, Matrix};
use idc_opt::banded_qp::{BandedQp, BandedQpWorkspace, SparseRow};
use idc_opt::linprog::LinearProgram;
use idc_opt::projgrad::project_simplex;
use idc_opt::qp::{QpWorkspace, QuadraticProgram};
use proptest::prelude::*;

/// Strategy: a strictly-positive diagonal Hessian of dimension `n`.
fn pd_diag(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.5f64..5.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On a bounded random LP the simplex optimum must weakly beat every
    /// random feasible point we can construct.
    #[test]
    fn lp_optimum_beats_random_feasible_points(
        c in prop::collection::vec(-3.0f64..3.0, 3),
        caps in prop::collection::vec(1.0f64..10.0, 3),
        trial in prop::collection::vec(0.0f64..1.0, 3),
    ) {
        let mut lp = LinearProgram::minimize(c.clone());
        for (j, &cap) in caps.iter().enumerate() {
            let mut row = vec![0.0; 3];
            row[j] = 1.0;
            lp = lp.inequality(row, cap);
        }
        let sol = lp.solve().unwrap();
        // Random feasible point: scale each coordinate into [0, cap].
        let feas: Vec<f64> = trial.iter().zip(&caps).map(|(t, cap)| t * cap).collect();
        let feas_obj: f64 = c.iter().zip(&feas).map(|(ci, xi)| ci * xi).sum();
        prop_assert!(sol.objective() <= feas_obj + 1e-7);
    }

    /// Transport-shaped LP: total shipped equals total demanded, and the
    /// optimum never exceeds capacity.
    #[test]
    fn lp_conservation_and_capacity_hold(
        costs in prop::collection::vec(0.1f64..5.0, 6),
        demand in 1.0f64..20.0,
    ) {
        // 2 portals × 3 IDCs; ample capacity on the last IDC.
        let caps = [demand * 0.6, demand * 0.7, demand * 2.5];
        let mut lp = LinearProgram::minimize(costs);
        lp = lp.equality(vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0], demand * 0.5);
        lp = lp.equality(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0], demand * 0.5);
        for j in 0..3 {
            let mut row = vec![0.0; 6];
            row[j] = 1.0;
            row[3 + j] = 1.0;
            lp = lp.inequality(row, caps[j]);
        }
        let x = lp.solve().unwrap().into_x();
        prop_assert!((vec_ops::sum(&x) - demand).abs() < 1e-6);
        for j in 0..3 {
            prop_assert!(x[j] + x[3 + j] <= caps[j] + 1e-6);
        }
        prop_assert!(x.iter().all(|&v| v >= -1e-9));
    }

    /// The QP optimum must satisfy its constraints and weakly beat feasible
    /// perturbations (local optimality certificate for a convex problem).
    #[test]
    fn qp_optimum_is_feasible_and_locally_optimal(
        hdiag in pd_diag(3),
        g in prop::collection::vec(-3.0f64..3.0, 3),
        cap in 0.5f64..3.0,
    ) {
        let qp = QuadraticProgram::new(Matrix::diag(&hdiag), g)
            .unwrap()
            .equality(vec![1.0, 1.0, 1.0], 1.0)
            .inequality(vec![1.0, 0.0, 0.0], cap)
            .inequality(vec![-1.0, 0.0, 0.0], cap);
        let sol = qp.solve().unwrap();
        prop_assert!(qp.is_feasible(sol.x(), 1e-6));
        let base = sol.objective();
        // Perturb along the equality manifold.
        for (i, j) in [(0usize, 1usize), (1, 2), (0, 2)] {
            for eps in [1e-4, -1e-4] {
                let mut trial = sol.x().to_vec();
                trial[i] += eps;
                trial[j] -= eps;
                if qp.is_feasible(&trial, 1e-9) {
                    prop_assert!(qp.objective_at(&trial) >= base - 1e-8);
                }
            }
        }
    }

    /// Shadow prices predict the objective's response to small RHS
    /// perturbations on random bounded LPs.
    #[test]
    fn lp_duals_match_finite_differences(
        c in prop::collection::vec(-3.0f64..3.0, 3),
        caps in prop::collection::vec(1.0f64..10.0, 3),
        demand in 0.5f64..2.5,
    ) {
        let build = |caps: &[f64], demand: f64| {
            let mut lp = LinearProgram::minimize(c.clone())
                .equality(vec![1.0, 1.0, 1.0], demand);
            for (j, &cap) in caps.iter().enumerate() {
                let mut row = vec![0.0; 3];
                row[j] = 1.0;
                lp = lp.inequality(row, cap);
            }
            lp.solve()
        };
        let base = build(&caps, demand).unwrap();
        let eps = 1e-4;
        // Demand (equality) dual.
        let bumped = build(&caps, demand + eps).unwrap();
        let fd = (bumped.objective() - base.objective()) / eps;
        prop_assert!(
            (fd - base.duals_eq()[0]).abs() < 1e-4,
            "eq dual {} vs fd {fd}", base.duals_eq()[0]
        );
        // One capacity dual (may be degenerate at kinks; allow one-sided).
        let mut caps2 = caps.clone();
        caps2[0] += eps;
        let bumped = build(&caps2, demand).unwrap();
        let fd = (bumped.objective() - base.objective()) / eps;
        prop_assert!(
            fd <= base.duals_ub()[0] + 1e-4,
            "ub dual {} vs fd {fd}", base.duals_ub()[0]
        );
    }

    /// Simplex projection is idempotent and 1-Lipschitz (non-expansive).
    #[test]
    fn simplex_projection_properties(
        v in prop::collection::vec(-5.0f64..5.0, 4),
        w in prop::collection::vec(-5.0f64..5.0, 4),
        total in 0.1f64..10.0,
    ) {
        let pv = project_simplex(&v, total);
        prop_assert!((vec_ops::sum(&pv) - total).abs() < 1e-9);
        prop_assert!(pv.iter().all(|&x| x >= 0.0));
        // Idempotence.
        let ppv = project_simplex(&pv, total);
        prop_assert!(vec_ops::approx_eq(&pv, &ppv, 1e-9));
        // Non-expansiveness.
        let pw = project_simplex(&w, total);
        let d_proj = vec_ops::norm2(&vec_ops::sub(&pv, &pw));
        let d_orig = vec_ops::norm2(&vec_ops::sub(&v, &w));
        prop_assert!(d_proj <= d_orig + 1e-9);
    }

    /// Warm-started solves seeded with a perturbed previous optimum and a
    /// possibly-stale active set land on the cold solve's answer — same
    /// minimizer, objective and final active set — on random
    /// product-of-simplices QPs, on both the dense-KKT and the
    /// Schur-prepared solve paths. This is the contract the MPC's
    /// shift-and-repair warm start relies on.
    #[test]
    fn qp_warm_start_matches_cold_solve(
        hdiag in pd_diag(6),
        g in prop::collection::vec(-2.0f64..2.0, 6),
        blend in 0.0f64..1.0,
    ) {
        let build = || {
            let mut qp = QuadraticProgram::new(Matrix::diag(&hdiag), g.clone()).unwrap();
            for b in 0..2 {
                let mut row = vec![0.0; 6];
                for k in 0..3 {
                    row[3 * b + k] = 1.0;
                }
                qp = qp.equality(row, 1.0);
                for k in 0..3 {
                    let mut nn = vec![0.0; 6];
                    nn[3 * b + k] = -1.0;
                    qp = qp.inequality(nn, 0.0);
                }
            }
            qp
        };
        let qp = build();
        let cold = qp.solve().unwrap();
        // A feasible stand-in for the receding-horizon shift: blend the
        // optimum toward the simplex centers (stays on the equality
        // manifold and nonnegative), seeding with the now-stale set.
        let x0: Vec<f64> = cold.x().iter().map(|&x| (1.0 - blend) * x + blend / 3.0).collect();
        let mut ws = QpWorkspace::new();
        let warm = qp.warm_start(&x0, cold.active_set(), &mut ws).unwrap();
        let obj_tol = 1e-8 * (1.0 + cold.objective().abs());
        prop_assert!(
            (warm.objective() - cold.objective()).abs() <= obj_tol,
            "warm objective {} vs cold {}", warm.objective(), cold.objective()
        );
        prop_assert!(
            vec_ops::approx_eq(warm.x(), cold.x(), 1e-6),
            "warm x {:?} vs cold {:?}", warm.x(), cold.x()
        );
        let mut cold_set = cold.active_set().to_vec();
        cold_set.sort_unstable();
        let mut warm_set = warm.active_set().to_vec();
        warm_set.sort_unstable();
        prop_assert_eq!(cold_set.clone(), warm_set);
        // The Schur-prepared fast path reaches the same answer.
        let mut prepared = build();
        prepared.prepare().unwrap();
        let fast = prepared.warm_start(&x0, cold.active_set(), &mut ws).unwrap();
        prop_assert!(
            (fast.objective() - cold.objective()).abs() <= obj_tol,
            "prepared objective {} vs cold {}", fast.objective(), cold.objective()
        );
        prop_assert!(vec_ops::approx_eq(fast.x(), cold.x(), 1e-6));
        let mut fast_set = fast.active_set().to_vec();
        fast_set.sort_unstable();
        prop_assert_eq!(cold_set, fast_set);
    }

    /// Active-set QP and projected-gradient agree on simplex-constrained
    /// problems (the MPC ablation pairing).
    #[test]
    fn qp_and_projgrad_agree_on_simplex(
        hdiag in pd_diag(3),
        g in prop::collection::vec(-2.0f64..2.0, 3),
    ) {
        let h = Matrix::diag(&hdiag);
        let exact = QuadraticProgram::new(h.clone(), g.clone())
            .unwrap()
            .equality(vec![1.0, 1.0, 1.0], 1.0)
            .inequality(vec![-1.0, 0.0, 0.0], 0.0)
            .inequality(vec![0.0, -1.0, 0.0], 0.0)
            .inequality(vec![0.0, 0.0, -1.0], 0.0)
            .solve()
            .unwrap();
        let approx = idc_opt::projgrad::ProjectedGradientQp::new(h, g)
            .unwrap()
            .simplex_block(0, 3, 1.0)
            .max_iterations(20000)
            .solve()
            .unwrap();
        prop_assert!(
            vec_ops::approx_eq(exact.x(), &approx, 1e-4),
            "exact {:?} vs approx {:?}", exact.x(), approx
        );
    }
}

/// A random block-tridiagonal SPD Hessian (nb = 2, 3 stages → 6 vars)
/// built from proptest-drawn entries.
fn banded_hessian(diag: &[f64], sub: &[f64]) -> BlockTridiag {
    let (nb, t) = (2, 3);
    let mut h = BlockTridiag::new(nb, t);
    for bt in 0..t {
        // Symmetric 2×2 stage block from 3 draws, diagonally boosted so the
        // assembled block-tridiagonal matrix stays positive definite.
        let d = &diag[bt * 3..bt * 3 + 3];
        let block = h.diag_mut(bt);
        block[0] = d[0].abs() + 3.0;
        block[3] = d[2].abs() + 3.0;
        block[1] = d[1];
        block[2] = d[1];
    }
    for bt in 0..t - 1 {
        h.sub_mut(bt).copy_from_slice(&sub[bt * 4..bt * 4 + 4]);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched pivoting (multiple working-set changes per outer iteration)
    /// must reach the same optimum as the classical single-pivot loop on
    /// random dense QPs.
    #[test]
    fn qp_batched_and_single_pivot_agree(
        hdiag in pd_diag(4),
        g in prop::collection::vec(-3.0f64..3.0, 4),
        cap in 0.3f64..2.0,
    ) {
        let build = || {
            let mut qp = QuadraticProgram::new(Matrix::diag(&hdiag), g.clone())
                .unwrap()
                .equality(vec![1.0; 4], 1.0);
            for j in 0..4 {
                let mut row = vec![0.0; 4];
                row[j] = 1.0;
                qp = qp.inequality(row.clone(), cap);
                row[j] = -1.0;
                qp = qp.inequality(row, cap);
            }
            qp
        };
        let batched = build().solve().unwrap();
        let single = build().single_pivot(true).solve().unwrap();
        prop_assert!(
            (batched.objective() - single.objective()).abs()
                <= 1e-8 * (1.0 + single.objective().abs()),
            "batched {} vs single-pivot {}",
            batched.objective(),
            single.objective()
        );
        prop_assert!(build().is_feasible(batched.x(), 1e-7));
    }

    /// Same batched ≡ single-pivot equivalence for the banded backend.
    #[test]
    fn banded_batched_and_single_pivot_agree(
        diag in prop::collection::vec(-1.0f64..1.0, 9),
        sub in prop::collection::vec(-0.4f64..0.4, 8),
        g in prop::collection::vec(-2.0f64..2.0, 6),
        cap in 0.3f64..2.0,
    ) {
        let n = 6;
        let build = |single: bool| {
            let mut qp = BandedQp::new(banded_hessian(&diag, &sub), g.clone())
                .unwrap()
                .single_pivot(single)
                .equality(
                    SparseRow::from_entries((0..n).map(|i| (i, 1.0)).collect()),
                    1.0,
                );
            for j in 0..n {
                qp = qp
                    .inequality(SparseRow::from_entries(vec![(j, 1.0)]), cap)
                    .inequality(SparseRow::from_entries(vec![(j, -1.0)]), cap);
            }
            qp
        };
        let mut ws = BandedQpWorkspace::new();
        let batched = build(false).solve_with(&mut ws).unwrap();
        let single = build(true).solve_with(&mut ws).unwrap();
        prop_assert!(
            (batched.objective() - single.objective()).abs()
                <= 1e-8 * (1.0 + single.objective().abs()),
            "batched {} vs single-pivot {}",
            batched.objective(),
            single.objective()
        );
        prop_assert!(build(false).is_feasible(batched.x(), 1e-7));
    }
}
