//! Backend-agnostic primal active-set iteration.
//!
//! The textbook loop (Nocedal & Wright, Alg. 16.3) — solve an
//! equality-constrained subproblem, take the largest feasible step, add the
//! blocking constraint or drop the most negative multiplier — is identical
//! for the dense condensed QP and the banded Riccati backend; only the KKT
//! subproblem solve differs. This module owns the loop and drives a backend
//! through [`ActiveSetOps`], so Dantzig/Bland switching, degeneracy
//! bookkeeping and warm-start seeding behave bit-for-bit the same regardless
//! of how the linear algebra is organised.

use idc_linalg::vec_ops;
use idc_obs::SolveStats;

use crate::qp::QpSolution;
use crate::{Error, Result};

/// Feasibility/optimality tolerance.
pub(crate) const TOL: f64 = 1e-8;

/// Tolerance used to accept caller-supplied starting points and to decide
/// which seeded constraints are still active at a warm-start point.
pub(crate) const WARM_TOL: f64 = 1e-6;

/// Consecutive degenerate (zero-length, blocked) steps tolerated before the
/// drop rule switches from Dantzig's most-negative multiplier to Bland's
/// anti-cycling smallest index. The switch latches for the remainder of
/// the solve (see `bland_latched` in [`solve_from_feasible`]).
const DEGENERATE_PATIENCE: usize = 12;

/// Backend interface for the shared active-set loop.
///
/// `kkt_step` is the only expensive operation; the `on_*` hooks let a
/// backend maintain incremental factorizations of the working-set system —
/// they are called *after* the working set has been mutated. The default
/// no-op hooks suit backends (like the dense path) that refactor per
/// iteration.
pub(crate) trait ActiveSetOps {
    /// Number of decision variables.
    fn num_vars(&self) -> usize;
    /// Number of equality constraints (always in the working system).
    fn num_eq(&self) -> usize;
    /// Number of inequality constraints.
    fn num_in(&self) -> usize;
    /// Iteration budget for this problem instance.
    fn iteration_budget(&self) -> usize;
    /// Dot product of inequality row `i` with `v`.
    fn in_dot(&self, i: usize, v: &[f64]) -> f64;
    /// Right-hand side of inequality `i`.
    fn in_rhs(&self, i: usize) -> f64;
    /// Objective value at `x`.
    fn objective_at(&self, x: &[f64]) -> f64;
    /// Solves the equality-constrained subproblem at `x` for the working
    /// set, leaving `[p; multipliers]` in `sol` (multipliers ordered
    /// equalities first, then `working` in order).
    fn kkt_step(&mut self, x: &[f64], working: &[usize], sol: &mut Vec<f64>) -> Result<()>;
    /// Called once after warm-start seeding, before the first iteration.
    fn begin(&mut self, _working: &[usize]) {}
    /// Called after a blocking constraint was pushed onto `working`.
    fn on_add(&mut self, _working: &[usize]) {}
    /// Called after the entry at position `pos` was removed from `working`.
    fn on_remove(&mut self, _working: &[usize], _pos: usize) {}
    /// Called after a degenerate-KKT recovery popped the last entry.
    fn on_pop(&mut self, _working: &[usize]) {}
    /// Iterative-refinement passes performed since the last call (the loop
    /// drains this once per solve, on success). Backends without a
    /// refinement counter report zero.
    fn take_refinements(&mut self) -> u64 {
        0
    }
    /// Whether the loop must admit/drop at most one constraint per outer
    /// iteration. Batched pivoting is the default; the single-pivot mode is
    /// the reference semantics used by differential tests.
    fn single_pivot(&self) -> bool {
        false
    }
    /// Drains the backend's incremental-factor counters accumulated since
    /// [`begin`](Self::begin): `(refactorizations, updates_applied,
    /// downdates_applied)`. Backends without an incremental factor report
    /// zeros.
    fn take_factor_stats(&mut self) -> (u64, u64, u64) {
        (0, 0, 0)
    }
}

/// Core active-set loop from a feasible `x0`, with the working set seeded
/// from `seed` (invalid or inactive entries are skipped).
///
/// `working` and `sol` are caller-owned scratch so workspaces can recycle
/// them across solves.
pub(crate) fn solve_from_feasible<O: ActiveSetOps>(
    ops: &mut O,
    x0: &[f64],
    seed: &[usize],
    working: &mut Vec<usize>,
    sol: &mut Vec<f64>,
) -> Result<QpSolution> {
    let n = ops.num_vars();
    let mut x = x0.to_vec();
    working.clear();
    // Membership mask mirroring `working` — the ratio test consults it once
    // per inequality per iteration, where a linear scan of the working set
    // would cost O(m·num_in) per iteration.
    let mut in_working = vec![false; ops.num_in()];
    let mut stats = SolveStats {
        solves: 1,
        seed_offered: seed.len() as u64,
        ..SolveStats::default()
    };
    let scale = 1.0 + vec_ops::norm_inf(x0);
    for &i in seed {
        // Keep the KKT system square-solvable: never seed more working
        // constraints than free directions.
        if ops.num_eq() + working.len() >= n {
            break;
        }
        if i < ops.num_in()
            && !in_working[i]
            && (ops.in_dot(i, x0) - ops.in_rhs(i)).abs() <= WARM_TOL * scale
        {
            working.push(i);
            in_working[i] = true;
        }
    }
    stats.seed_accepted = working.len() as u64;
    // Snapshot of the accepted seed so the converged set can be diffed into
    // the `working_set_delta` gauge.
    let seeded_mask = in_working.clone();
    ops.begin(working);
    let mut iterations = 0;
    let mut degenerate_streak = 0usize;
    // Once the loop has been driven to Bland's rule, stay there for the
    // rest of the solve. A resettable switch is unsound: a cycle whose
    // period includes one tiny-but-nonzero step clears the streak, the
    // loop re-enters batched Dantzig, and the same working sets repeat
    // forever — observed on a degenerate scaled-fleet instance where a
    // 10× iteration budget still never converged. Bland's smallest-index
    // rule is finitely terminating, so latching it guarantees the loop
    // ends; the Dantzig speed only matters on the non-degenerate bulk of
    // solves, which never trip the latch.
    let mut bland_latched = false;
    let budget = ops.iteration_budget();
    // Scratch for batched pivoting: working-set positions with negative
    // multipliers, and (index, a·p, slack) ratio-test candidates.
    let mut drop_buf: Vec<usize> = Vec::new();
    let mut add_buf: Vec<(usize, f64, f64)> = Vec::new();
    // Constraints popped by degenerate-KKT recoveries since the iterate
    // last made progress, excluded from the ratio test while their a·p is
    // at noise level (see the recovery arm below). The set accumulates —
    // a single-slot ban merely rotates a livelock through two or more
    // mutually dependent rows — and clears whenever the iterate moves
    // materially or a multiplier drop changes the working set.
    let mut banned = vec![false; ops.num_in()];
    let mut any_banned = false;

    loop {
        if iterations >= budget {
            return Err(Error::IterationLimit { iterations: budget });
        }
        iterations += 1;
        match ops.kkt_step(&x, working, sol) {
            Ok(()) => {}
            Err(Error::Numerical(_)) if !working.is_empty() => {
                // Degenerate working set — drop the most recent addition
                // and ban it from the next ratio test. Without the ban the
                // loop can livelock: a constraint row that is numerically
                // dependent on the working set (a·p at noise level) still
                // passes the `ap > TOL` blocking test with a tiny negative
                // slack, re-enters with a zero-length step, re-breaks the
                // KKT factorization and is popped again, forever.
                let dropped = working.pop().expect("non-empty");
                in_working[dropped] = false;
                banned[dropped] = true;
                any_banned = true;
                stats.degenerate_pops += 1;
                ops.on_pop(working);
                continue;
            }
            Err(e) => return Err(e),
        }
        let (p, mult) = sol.split_at(n);

        // Stationarity is judged relative to the iterate's scale: with
        // workload-sized variables (O(1e4)) a step of 1e-8 is numerical
        // noise, not progress.
        let p_norm = vec_ops::norm_inf(p);
        let x_scale = TOL * (1.0 + vec_ops::norm_inf(&x));
        // Batched (blocked Dantzig) pivoting is the default; Bland's
        // anti-cycling rule and the differential-test reference mode are
        // strictly single-pivot.
        let bland = bland_latched || degenerate_streak >= DEGENERATE_PATIENCE;
        let batch_pivots = !bland && !ops.single_pivot();
        if p_norm < x_scale {
            // Multipliers of working inequality constraints live after
            // the equality multipliers. Normally drop *every* negative
            // multiplier in one outer iteration (blocked Dantzig — the
            // working set jumps toward the optimal one instead of
            // shedding a single constraint per KKT solve); after a
            // streak of degenerate zero-length steps, switch to Bland's
            // single smallest-constraint-index drop, which cannot
            // cycle. Pure Bland is safe but walks the working set
            // essentially one index at a time, which on a large
            // warm-started transient costs thousands of KKT solves.
            let ineq_mult = &mult[ops.num_eq()..];
            if any_banned {
                banned.fill(false);
                any_banned = false;
            }
            if batch_pivots {
                drop_buf.clear();
                drop_buf.extend(
                    ineq_mult
                        .iter()
                        .enumerate()
                        .filter(|(_, &m)| m < -TOL)
                        .map(|(k, _)| k),
                );
                if drop_buf.is_empty() {
                    return finish(
                        ops,
                        x,
                        iterations,
                        working,
                        &in_working,
                        &seeded_mask,
                        stats,
                    );
                }
                // Highest position first, so earlier positions stay valid
                // across the removals.
                for &k in drop_buf.iter().rev() {
                    in_working[working.remove(k)] = false;
                    stats.constraints_dropped += 1;
                    ops.on_remove(working, k);
                }
            } else {
                let candidates = ineq_mult.iter().enumerate().filter(|(_, &m)| m < -TOL);
                let worst = if !bland {
                    candidates.min_by(|a, b| a.1.partial_cmp(b.1).expect("multipliers are finite"))
                } else {
                    candidates.min_by_key(|&(k, _)| working[k])
                };
                match worst {
                    None => {
                        return finish(
                            ops,
                            x,
                            iterations,
                            working,
                            &in_working,
                            &seeded_mask,
                            stats,
                        );
                    }
                    Some((idx, _)) => {
                        in_working[working.remove(idx)] = false;
                        stats.constraints_dropped += 1;
                        ops.on_remove(working, idx);
                    }
                }
            }
        } else {
            // Ratio test against inactive inequality constraints.
            let mut alpha = 1.0;
            let mut blocking = None;
            add_buf.clear();
            for i in 0..ops.num_in() {
                if in_working[i] {
                    continue;
                }
                let ap = ops.in_dot(i, p);
                if ap > TOL {
                    // A popped row whose a·p is noise-level is the
                    // degenerate-KKT livelock: skipping it is safe because
                    // the step (alpha ≤ 1) can violate it by at most a·p,
                    // which is WARM_TOL-relative to the step scale.
                    if banned[i] && ap <= WARM_TOL * (1.0 + p_norm) {
                        continue;
                    }
                    let slack = ops.in_rhs(i) - ops.in_dot(i, &x);
                    let ai = (slack / ap).max(0.0);
                    if ai < alpha {
                        alpha = ai;
                        blocking = Some(i);
                    }
                    if batch_pivots {
                        add_buf.push((i, ap, slack));
                    }
                }
            }
            // A blocked step whose *displacement* is negligible at the
            // iterate's scale means a degenerate vertex — the only
            // place Dantzig's rule can cycle.
            if alpha * p_norm <= x_scale && blocking.is_some() {
                degenerate_streak += 1;
                if degenerate_streak == DEGENERATE_PATIENCE && !bland_latched {
                    bland_latched = true;
                    stats.bland_switches += 1;
                }
            } else {
                degenerate_streak = 0;
            }
            if any_banned && alpha * p_norm > x_scale {
                // Real movement: the slacks change, so stale dependency
                // bans no longer describe the geometry at the new iterate.
                banned.fill(false);
                any_banned = false;
            }
            vec_ops::axpy(alpha, p, &mut x);
            if let Some(i) = blocking {
                working.push(i);
                in_working[i] = true;
                stats.constraints_added += 1;
                ops.on_add(working);
                if batch_pivots {
                    // Admit every constraint that became (numerically)
                    // tight at the new iterate, not just the single
                    // blocking one — ratio-test near-ties are what force
                    // the one-at-a-time crawl on warm-started transients.
                    // The working set is kept strictly smaller than the
                    // free directions so the KKT system stays solvable.
                    for &(j, ap, slack) in add_buf.iter() {
                        if ops.num_eq() + working.len() >= n {
                            break;
                        }
                        if !in_working[j] && slack - alpha * ap <= x_scale {
                            working.push(j);
                            in_working[j] = true;
                            stats.constraints_added += 1;
                            ops.on_add(working);
                        }
                    }
                }
            }
        }
    }
}

/// Builds the optimal [`QpSolution`] once no negative multipliers remain.
fn finish<O: ActiveSetOps>(
    ops: &mut O,
    x: Vec<f64>,
    iterations: usize,
    working: &mut [usize],
    in_working: &[bool],
    seeded_mask: &[bool],
    mut stats: SolveStats,
) -> Result<QpSolution> {
    let objective = ops.objective_at(&x);
    working.sort_unstable();
    stats.iterations = iterations as u64;
    stats.refinement_passes = ops.take_refinements();
    let (refactorizations, updates, downdates) = ops.take_factor_stats();
    stats.refactorizations = refactorizations;
    stats.updates_applied = updates;
    stats.downdates_applied = downdates;
    stats.working_set_delta = seeded_mask
        .iter()
        .zip(in_working)
        .filter(|(s, w)| s != w)
        .count() as u64;
    Ok(QpSolution::from_parts(
        x,
        objective,
        iterations,
        working.to_vec(),
        stats,
    ))
}
