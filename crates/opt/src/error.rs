use std::fmt;

/// Errors produced by the optimization solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The solver exhausted its iteration budget without converging.
    IterationLimit {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// Problem data had inconsistent dimensions.
    DimensionMismatch {
        /// Human-readable description of the inconsistency.
        what: String,
    },
    /// A numerical kernel failed (singular KKT system etc.).
    Numerical(idc_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Infeasible => write!(f, "problem is infeasible"),
            Error::Unbounded => write!(f, "objective is unbounded below"),
            Error::IterationLimit { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            Error::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            Error::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<idc_linalg::Error> for Error {
    fn from(e: idc_linalg::Error) -> Self {
        Error::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(Error::Infeasible.to_string(), "problem is infeasible");
        assert_eq!(
            Error::IterationLimit { iterations: 7 }.to_string(),
            "no convergence after 7 iterations"
        );
        let wrapped: Error = idc_linalg::Error::Singular.into();
        assert!(wrapped.to_string().contains("singular"));
    }

    #[test]
    fn source_exposes_numerical_cause() {
        use std::error::Error as _;
        let wrapped: Error = idc_linalg::Error::Singular.into();
        assert!(wrapped.source().is_some());
        assert!(Error::Unbounded.source().is_none());
    }
}
