//! From-scratch dense optimization solvers for the `idc-mpc` workspace.
//!
//! The ICDCS 2012 paper needs two optimizers:
//!
//! 1. a **linear program** for the MPC control reference (paper eq. 46 — the
//!    Rao et al. INFOCOM'10 instantaneous cost minimum), solved here by a
//!    [two-phase primal simplex](linprog) with Bland's anti-cycling rule;
//! 2. a **convex quadratic program** for the condensed MPC problem
//!    (paper eq. 42–45 — a constrained least-squares problem in `ΔU`),
//!    solved here by a [primal active-set method](qp) on LU-factored KKT
//!    systems, with a [penalized projected-gradient](projgrad) alternative
//!    used for ablation benchmarks.
//!
//! The Rust convex-optimization crate ecosystem is thin, which is why these
//! solvers are implemented from scratch on top of [`idc_linalg`]. They are
//! dense and deterministic — appropriate for the problem sizes of the paper
//! (tens to a few hundred variables).
//!
//! # Example: the paper's reference LP in miniature
//!
//! ```
//! use idc_opt::linprog::LinearProgram;
//!
//! // Two IDCs, one portal with 10 units of work. IDC 0 is cheaper but can
//! // hold at most 6 units; the optimum saturates it.
//! # fn main() -> Result<(), idc_opt::Error> {
//! let lp = LinearProgram::minimize(vec![1.0, 3.0])
//!     .equality(vec![1.0, 1.0], 10.0)
//!     .inequality(vec![1.0, 0.0], 6.0)
//!     .solve()?;
//! assert!((lp.x()[0] - 6.0).abs() < 1e-9);
//! assert!((lp.x()[1] - 4.0).abs() < 1e-9);
//! assert!((lp.objective() - 18.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod active_set;
pub mod banded_qp;
mod error;
pub mod linprog;
pub mod lsq;
pub mod projgrad;
pub mod qp;

pub use error::Error;
pub use idc_obs::SolveStats;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
