//! Primal active-set solver for convex quadratic programs.
//!
//! Solves
//!
//! ```text
//! minimize    ½ xᵀH x + gᵀx          (H symmetric positive definite)
//! subject to  A_eq x  = b_eq
//!             A_in x ≤ b_in
//! ```
//!
//! This is the workhorse behind the paper's condensed MPC problem
//! (eq. 42–45): `x = ΔU(k)` stacked over the control horizon, the equalities
//! are the per-portal workload-conservation rows (eq. 45) and the
//! inequalities are the latency/capacity rows (eq. 43) plus non-negativity
//! of the allocated workload (eq. 44).
//!
//! The method is the textbook primal active-set iteration (Nocedal & Wright,
//! Alg. 16.3): each step solves an equality-constrained subproblem through
//! an LU-factored KKT system, then either takes a blocking step (adding a
//! constraint to the working set) or drops the constraint with the most
//! negative multiplier.

use idc_linalg::{cholesky::UpdatableCholesky, lu::Lu, vec_ops, workspace::Workspace, Matrix};

use crate::active_set::{self, ActiveSetOps, WARM_TOL};
use crate::linprog::LinearProgram;
use crate::{Error, Result};

/// Relative size of the iterative-refinement correction above which the
/// incrementally up/downdated working-set factor is judged to have drifted
/// and is rebuilt from scratch (shared with the banded backend).
pub(crate) const REBUILD_TOL: f64 = 1e-6;

/// Reusable scratch memory for [`QuadraticProgram`] solves.
///
/// Every active-set iteration assembles and LU-factors a KKT system; with a
/// workspace those buffers are allocated once and reused, so a steady-state
/// solve (same problem dimensions step after step, as in MPC) performs no
/// per-iteration heap allocation. One workspace may be shared across
/// problems of different sizes — buffers grow to the largest size seen.
#[derive(Debug, Clone)]
pub struct QpWorkspace {
    /// KKT matrix of the equality-constrained subproblem (or, on the
    /// [`QuadraticProgram::prepare`]d fast path, the working-set block of
    /// the Schur complement).
    kkt: Matrix,
    /// Its LU factorization (buffers reused across refactors).
    lu: Lu,
    /// Right-hand side `[−(Hx + g); 0]`.
    rhs: Vec<f64>,
    /// Scratch for `H x`.
    hx: Vec<f64>,
    /// KKT solution `[p; multipliers]`.
    sol: Vec<f64>,
    /// Fast path scratch: `t = H⁻¹·(−(Hx + g))`.
    t: Vec<f64>,
    /// Fast path scratch: Schur rhs and multipliers.
    srhs: Vec<f64>,
    lam: Vec<f64>,
    /// Working set buffer, reused across solves.
    working: Vec<usize>,
    /// Incremental Cholesky factor of the working-set Schur block `S_RR`
    /// (prepared fast path only). Row `r` of the factor corresponds to
    /// column `cols[r]` of the precomputed full Schur complement; the
    /// active-set hooks keep it in sync across adds/drops so a working-set
    /// change costs a rank-1 up/downdate instead of a dense refactorization.
    factor: UpdatableCholesky,
    /// Column map of the factored working system into the full `S`/`Y`.
    cols: Vec<usize>,
    /// Packed append columns / scratch for block factor updates.
    fcol: Vec<f64>,
    /// Linalg scratch pool for block factor updates.
    fws: Workspace,
    /// Iterative-refinement passes since the loop's `begin` (introspection
    /// only; drained into [`crate::SolveStats`] per solve).
    refinements: u64,
    /// Full (re)builds of the working-set factor since `begin`.
    refactorizations: u64,
    /// Incremental factor appends (constraint adds absorbed in place).
    updates: u64,
    /// Incremental factor row removals (constraint drops absorbed in place).
    downdates: u64,
    /// When set, the next working-set mutation discards the incremental
    /// factor and forces a full rebuild (deterministic fault injection for
    /// the stability-rebuild path).
    force_refactor: bool,
}

impl QpWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        QpWorkspace {
            kkt: Matrix::zeros(0, 0),
            lu: Lu::empty(),
            rhs: Vec::new(),
            hx: Vec::new(),
            sol: Vec::new(),
            t: Vec::new(),
            srhs: Vec::new(),
            lam: Vec::new(),
            working: Vec::new(),
            factor: UpdatableCholesky::new(),
            cols: Vec::new(),
            fcol: Vec::new(),
            fws: Workspace::new(),
            refinements: 0,
            refactorizations: 0,
            updates: 0,
            downdates: 0,
            force_refactor: false,
        }
    }

    /// Poisons the incremental working-set factor: the next constraint
    /// add/drop discards it and forces the full stability-rebuild path.
    /// Used by deterministic fault injection (the testkit's
    /// forced-refactorization fault kind); harmless when no prepared cache
    /// is in use.
    pub fn force_refactor_next(&mut self) {
        self.force_refactor = true;
    }
}

impl Default for QpWorkspace {
    fn default() -> Self {
        QpWorkspace::new()
    }
}

/// A convex QP under construction. See the [module docs](self) for the
/// canonical form.
///
/// # Example
///
/// ```
/// use idc_linalg::Matrix;
/// use idc_opt::qp::QuadraticProgram;
///
/// # fn main() -> Result<(), idc_opt::Error> {
/// // min (x0−1)² + (x1−2)²  s.t. x0 + x1 ≤ 2  → (0.5, 1.5)
/// let h = Matrix::diag(&[2.0, 2.0]);
/// let sol = QuadraticProgram::new(h, vec![-2.0, -4.0])?
///     .inequality(vec![1.0, 1.0], 2.0)
///     .solve()?;
/// assert!((sol.x()[0] - 0.5).abs() < 1e-8);
/// assert!((sol.x()[1] - 1.5).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuadraticProgram {
    h: Matrix,
    g: Vec<f64>,
    a_eq: Vec<Vec<f64>>,
    b_eq: Vec<f64>,
    a_in: Vec<Vec<f64>>,
    b_in: Vec<f64>,
    max_iter: usize,
    single_pivot: bool,
    kkt_cache: Option<KktCache>,
}

/// Precomputed factorizations for the active-set iteration, built by
/// [`QuadraticProgram::prepare`].
///
/// The Hessian and the constraint *rows* are fixed for the lifetime of a
/// problem (only `g` and the right-hand sides are retargeted between MPC
/// steps), so the expensive parts of every KKT solve can be hoisted out of
/// the iteration: factor `H` once, and precompute `Y = H⁻¹Aᵀ` and the full
/// Schur complement `S = A H⁻¹ Aᵀ` over *all* constraint rows. Each
/// iteration then only gathers the working-set block of `S` and factors
/// that `m × m` system instead of the dense `(n + m) × (n + m)` KKT matrix.
#[derive(Debug, Clone)]
struct KktCache {
    /// LU factors of `H + εI`.
    hfac: Lu,
    /// `H⁻¹ [A_eqᵀ A_inᵀ]`, shape `n × (m_eq + m_in)`.
    y: Matrix,
    /// `[A_eq; A_in] H⁻¹ [A_eqᵀ A_inᵀ]`, shape `(m_eq+m_in) × (m_eq+m_in)`.
    s: Matrix,
}

impl QuadraticProgram {
    /// Starts a QP `min ½xᵀHx + gᵀx` with an `n × n` Hessian.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `h` is not square or
    /// `g.len()` differs from its dimension.
    pub fn new(h: Matrix, g: Vec<f64>) -> Result<Self> {
        if !h.is_square() || h.rows() != g.len() {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "hessian {}x{} incompatible with gradient of length {}",
                    h.rows(),
                    h.cols(),
                    g.len()
                ),
            });
        }
        Ok(QuadraticProgram {
            h,
            g,
            a_eq: Vec::new(),
            b_eq: Vec::new(),
            a_in: Vec::new(),
            b_in: Vec::new(),
            max_iter: 500,
            single_pivot: false,
            kkt_cache: None,
        })
    }

    /// Adds an equality constraint `rowᵀx = rhs`.
    pub fn equality(mut self, row: Vec<f64>, rhs: f64) -> Self {
        self.a_eq.push(row);
        self.b_eq.push(rhs);
        self.kkt_cache = None;
        self
    }

    /// Adds an inequality constraint `rowᵀx ≤ rhs`.
    pub fn inequality(mut self, row: Vec<f64>, rhs: f64) -> Self {
        self.a_in.push(row);
        self.b_in.push(rhs);
        self.kkt_cache = None;
        self
    }

    /// Precomputes the factorizations that make repeated solves cheap.
    ///
    /// Factors the Hessian and forms the Schur complement `A H⁻¹ Aᵀ` over
    /// all constraint rows, so every active-set iteration solves an
    /// `m × m` working-set system instead of refactoring the dense
    /// `(n+m) × (n+m)` KKT matrix. Worth calling whenever the same problem
    /// skeleton is solved more than a handful of times (the MPC controller
    /// prepares its cached QP once per structure change); pointless for a
    /// one-shot solve. The cache survives [`Self::set_gradient`] and the
    /// rhs setters, and is dropped if constraint rows are added.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] on malformed constraint rows.
    /// * [`Error::Numerical`] if the (ridged) Hessian is singular.
    pub fn prepare(&mut self) -> Result<()> {
        self.validate()?;
        let n = self.num_vars();
        let mt = self.a_eq.len() + self.a_in.len();
        let mut ridged = self.h.clone();
        for i in 0..n {
            ridged[(i, i)] += 1e-12;
        }
        let hfac = Lu::factor(&ridged)?;
        let mut a_all = Matrix::zeros(mt, n);
        for (r, row) in self.a_eq.iter().chain(&self.a_in).enumerate() {
            a_all.row_mut(r).copy_from_slice(row);
        }
        let mut y = Matrix::zeros(n, mt);
        let mut col = Vec::new();
        for r in 0..mt {
            hfac.solve_into(a_all.row(r), &mut col)?;
            for i in 0..n {
                y[(i, r)] = col[i];
            }
        }
        let s = a_all.mul_mat(&y)?;
        self.kkt_cache = Some(KktCache { hfac, y, s });
        Ok(())
    }

    /// Overrides the iteration budget. The default scales with problem
    /// size: `max(500, 4·(variables + constraints))` — an active-set
    /// method may need to add or drop each constraint once.
    pub fn max_iterations(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Restricts the active-set loop to one constraint add/drop per outer
    /// iteration (the textbook reference semantics). The default admits and
    /// drops constraints in batches, which reaches the same optimum in far
    /// fewer KKT solves; single-pivot mode exists for differential tests
    /// pinning the batched loop against the reference behaviour.
    pub fn single_pivot(mut self, yes: bool) -> Self {
        self.single_pivot = yes;
        self
    }

    /// The effective iteration budget for this problem instance.
    fn iteration_budget(&self) -> usize {
        self.max_iter
            .max(4 * (self.num_vars() + self.a_in.len() + self.a_eq.len()))
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.g.len()
    }

    /// Solves the program, computing a feasible starting point internally
    /// via a phase-1 linear program.
    ///
    /// # Errors
    ///
    /// * [`Error::Infeasible`] if the constraints admit no point.
    /// * [`Error::IterationLimit`] if the active-set loop fails to converge.
    /// * [`Error::DimensionMismatch`] on malformed constraint rows.
    /// * [`Error::Numerical`] if a KKT system is singular beyond recovery.
    pub fn solve(&self) -> Result<QpSolution> {
        self.solve_with(&mut QpWorkspace::new())
    }

    /// Like [`Self::solve`], reusing caller-provided scratch memory.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::solve`].
    pub fn solve_with(&self, ws: &mut QpWorkspace) -> Result<QpSolution> {
        self.validate()?;
        let x0 = self.find_feasible_point()?;
        self.solve_from_feasible(&x0, &[], ws)
    }

    /// Solves the program starting from a caller-supplied point.
    ///
    /// A warm start from the previous MPC step's shifted solution typically
    /// converges in a handful of iterations.
    ///
    /// # Errors
    ///
    /// [`Error::Infeasible`] if `x0` violates the constraints by more than
    /// the internal tolerance, plus the failure modes of [`Self::solve`].
    pub fn solve_from(&self, x0: &[f64]) -> Result<QpSolution> {
        self.warm_start(x0, &[], &mut QpWorkspace::new())
    }

    /// Warm-started solve: starts from `x0` with the working set seeded
    /// from `active_set` (typically the previous solve's
    /// [`QpSolution::active_set`]), reusing `ws`'s scratch memory.
    ///
    /// Seeded indices that are out of range or no longer active at `x0`
    /// are ignored, so a slightly stale active set degrades gracefully
    /// into a few extra iterations rather than a failure.
    ///
    /// # Errors
    ///
    /// [`Error::Infeasible`] if `x0` violates the constraints by more than
    /// the internal tolerance, plus the failure modes of [`Self::solve`].
    pub fn warm_start(
        &self,
        x0: &[f64],
        active_set: &[usize],
        ws: &mut QpWorkspace,
    ) -> Result<QpSolution> {
        self.validate()?;
        if x0.len() != self.num_vars() {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "starting point has length {}, expected {}",
                    x0.len(),
                    self.num_vars()
                ),
            });
        }
        if !self.is_feasible(x0, WARM_TOL) {
            return Err(Error::Infeasible);
        }
        self.solve_from_feasible(x0, active_set, ws)
    }

    /// Replaces the gradient `g`, keeping the Hessian and constraints.
    ///
    /// Together with the rhs setters this lets a cached QP skeleton be
    /// re-aimed at a new MPC step without rebuilding matrices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the length differs from the
    /// variable count.
    pub fn set_gradient(&mut self, g: &[f64]) -> Result<()> {
        if g.len() != self.g.len() {
            return Err(Error::DimensionMismatch {
                what: format!("gradient length {} != {}", g.len(), self.g.len()),
            });
        }
        self.g.copy_from_slice(g);
        Ok(())
    }

    /// Replaces the equality right-hand sides, keeping the rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the length differs from the
    /// number of equality constraints.
    pub fn set_equality_rhs(&mut self, rhs: &[f64]) -> Result<()> {
        if rhs.len() != self.b_eq.len() {
            return Err(Error::DimensionMismatch {
                what: format!("equality rhs length {} != {}", rhs.len(), self.b_eq.len()),
            });
        }
        self.b_eq.copy_from_slice(rhs);
        Ok(())
    }

    /// Replaces the inequality right-hand sides, keeping the rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the length differs from the
    /// number of inequality constraints.
    pub fn set_inequality_rhs(&mut self, rhs: &[f64]) -> Result<()> {
        if rhs.len() != self.b_in.len() {
            return Err(Error::DimensionMismatch {
                what: format!("inequality rhs length {} != {}", rhs.len(), self.b_in.len()),
            });
        }
        self.b_in.copy_from_slice(rhs);
        Ok(())
    }

    /// Checks whether `x` satisfies all constraints within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        let scale = 1.0 + vec_ops::norm_inf(x);
        self.a_eq
            .iter()
            .zip(&self.b_eq)
            .all(|(row, &b)| (vec_ops::dot(row, x) - b).abs() <= tol * scale)
            && self
                .a_in
                .iter()
                .zip(&self.b_in)
                .all(|(row, &b)| vec_ops::dot(row, x) - b <= tol * scale)
    }

    fn validate(&self) -> Result<()> {
        let n = self.num_vars();
        for row in self.a_eq.iter().chain(&self.a_in) {
            if row.len() != n {
                return Err(Error::DimensionMismatch {
                    what: format!(
                        "constraint row has {} coefficients, expected {n}",
                        row.len()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Phase 1: finds any feasible point by splitting `x = x⁺ − x⁻` and
    /// solving an LP over non-negative variables.
    fn find_feasible_point(&self) -> Result<Vec<f64>> {
        let n = self.num_vars();
        // Minimize Σ(x⁺ + x⁻) to keep the point bounded and small.
        let mut lp = LinearProgram::minimize(vec![1.0; 2 * n]);
        for (row, &b) in self.a_eq.iter().zip(&self.b_eq) {
            let mut split = Vec::with_capacity(2 * n);
            split.extend_from_slice(row);
            split.extend(row.iter().map(|v| -v));
            lp = lp.equality(split, b);
        }
        for (row, &b) in self.a_in.iter().zip(&self.b_in) {
            let mut split = Vec::with_capacity(2 * n);
            split.extend_from_slice(row);
            split.extend(row.iter().map(|v| -v));
            lp = lp.inequality(split, b);
        }
        let z = lp.solve()?.into_x();
        Ok((0..n).map(|i| z[i] - z[n + i]).collect())
    }

    /// Core active-set loop from a feasible `x0`, delegated to the shared
    /// [`active_set`] driver with this problem's dense KKT backend.
    fn solve_from_feasible(
        &self,
        x0: &[f64],
        seed: &[usize],
        ws: &mut QpWorkspace,
    ) -> Result<QpSolution> {
        // Working set and solution buffers are taken out of the workspace so
        // the KKT scratch can be borrowed mutably alongside them; restored
        // before returning.
        let mut working = std::mem::take(&mut ws.working);
        let mut sol = std::mem::take(&mut ws.sol);
        let result = {
            let mut ops = DenseOps { qp: self, ws };
            active_set::solve_from_feasible(&mut ops, x0, seed, &mut working, &mut sol)
        };
        ws.working = working;
        ws.sol = sol;
        result
    }

    /// Solves the equality-constrained subproblem at `x` for the working
    /// set, leaving `[p; multipliers]` in `sol`. Allocation-free once
    /// the workspace buffers have grown to the problem size.
    fn kkt_step(
        &self,
        x: &[f64],
        working: &[usize],
        sol: &mut Vec<f64>,
        ws: &mut QpWorkspace,
    ) -> Result<()> {
        if self.kkt_cache.is_some() {
            return self.kkt_step_prepared(x, working, sol, ws);
        }
        let n = self.num_vars();
        let m = self.a_eq.len() + working.len();
        let dim = n + m;
        let kkt = &mut ws.kkt;
        kkt.resize_zeroed(dim, dim);
        for i in 0..n {
            kkt.row_mut(i)[..n].copy_from_slice(self.h.row(i));
            // Tiny ridge keeps nearly-singular Hessians factorable.
            kkt[(i, i)] += 1e-12;
        }
        let mut fill_row = |r: usize, row: &[f64]| {
            for (j, &v) in row.iter().enumerate() {
                kkt[(n + r, j)] = v;
                kkt[(j, n + r)] = v;
            }
        };
        for (r, row) in self.a_eq.iter().enumerate() {
            fill_row(r, row);
        }
        for (k, &i) in working.iter().enumerate() {
            fill_row(self.a_eq.len() + k, &self.a_in[i]);
        }

        // rhs = [−(Hx + g); 0]
        self.h.mul_vec_into(x, &mut ws.hx)?;
        ws.rhs.clear();
        ws.rhs.resize(dim, 0.0);
        for i in 0..n {
            ws.rhs[i] = -(ws.hx[i] + self.g[i]);
        }
        ws.lu.refactor(kkt)?;
        ws.lu.solve_into(&ws.rhs, sol)?;
        Ok(())
    }

    /// [`Self::kkt_step`] via the [`prepare`](Self::prepare)d Schur
    /// complement: with `v = −(Hx + g)` and `t = H⁻¹v`, the multipliers
    /// solve `S_RR λ = A_R t` over the working rows `R`, and the step is
    /// `p = t − Y_R λ`. The `m × m` Schur block is kept in an incrementally
    /// maintained Cholesky factor — working-set changes cost a rank-1
    /// up/downdate via the active-set hooks, and only a refinement
    /// correction exceeding [`REBUILD_TOL`] triggers a full rebuild.
    fn kkt_step_prepared(
        &self,
        x: &[f64],
        working: &[usize],
        sol: &mut Vec<f64>,
        ws: &mut QpWorkspace,
    ) -> Result<()> {
        let cache = self.kkt_cache.as_ref().expect("checked by caller");
        let n = self.num_vars();
        let me = self.a_eq.len();
        let m = me + working.len();
        // v = −(Hx + g), t = H⁻¹ v.
        self.h.mul_vec_into(x, &mut ws.hx)?;
        ws.rhs.clear();
        ws.rhs.extend((0..n).map(|i| -(ws.hx[i] + self.g[i])));
        cache.hfac.solve_into(&ws.rhs, &mut ws.t)?;
        sol.clear();
        if m == 0 {
            sol.extend_from_slice(&ws.t);
            return Ok(());
        }
        // Column map of the working system into the precomputed S/Y (row r
        // is equality r for r < m_eq, else inequality working[r − m_eq],
        // whose column lives at m_eq + index).
        ws.cols.clear();
        for r in 0..m {
            ws.cols.push(if r < me { r } else { me + working[r - me] });
        }
        let poisoned = self.ensure_schur_factor(ws, m)?;
        ws.srhs.clear();
        for r in 0..m {
            let row = if r < me {
                &self.a_eq[r]
            } else {
                &self.a_in[working[r - me]]
            };
            ws.srhs.push(vec_ops::dot(row, &ws.t));
        }
        ws.lam.clear();
        ws.lam.extend_from_slice(&ws.srhs);
        ws.factor.solve_in_place(&mut ws.lam);
        // One step of iterative refinement: S is substantially worse
        // conditioned than the full KKT matrix it replaces, and multiplier
        // noise near the drop threshold makes the active-set loop cycle.
        // The residual is gathered straight from the cached full S, so no
        // dense copy of the working block is materialized.
        let correction = self.refine_multipliers(ws, m);
        ws.refinements += 1;
        // Stability rebuild: a large correction means the incrementally
        // up/downdated factor has drifted from the true working block.
        // Rebuild it from scratch and re-solve (once per KKT step). A
        // poisoned build rebuilds unconditionally — one refinement pass
        // shrinks the multiplier error but need not reach solver tolerance,
        // and inexact λ makes the step leave the equality manifold.
        if poisoned || correction > REBUILD_TOL * (1.0 + vec_ops::norm_inf(&ws.lam)) {
            ws.factor.clear();
            self.ensure_schur_factor(ws, m)?;
            ws.lam.clear();
            ws.lam.extend_from_slice(&ws.srhs);
            ws.factor.solve_in_place(&mut ws.lam);
            self.refine_multipliers(ws, m);
            ws.refinements += 1;
        }
        // p = t − Y_R λ, stacked with the multipliers as in the dense path.
        for i in 0..n {
            let yrow = cache.y.row(i);
            let mut acc = 0.0;
            for (r, &l) in ws.lam.iter().enumerate() {
                acc += yrow[ws.cols[r]] * l;
            }
            sol.push(ws.t[i] - acc);
        }
        sol.extend_from_slice(&ws.lam);
        Ok(())
    }

    /// Grows the incremental Cholesky factor of the working-set Schur block
    /// to dimension `m`, appending the rows described by `ws.cols` from the
    /// cached full Schur complement. A build from dimension zero counts as
    /// a refactorization; appends to an existing factor count as
    /// incremental updates. Multi-row growth goes through the blocked
    /// append, falling back to row-by-row on failure so the offending row
    /// is identified (and surfaced as [`Error::Numerical`] for the loop's
    /// degenerate-pop recovery). Returns whether a pending poison was
    /// consumed by this build (the caller must then rebuild before using
    /// the factor's solution).
    fn ensure_schur_factor(&self, ws: &mut QpWorkspace, m: usize) -> Result<bool> {
        let cache = self.kkt_cache.as_ref().expect("checked by caller");
        // Consume a pending poison request: corrupt the first row appended
        // in this build so the caller's stability-rebuild path must fire
        // (deterministic fault injection).
        let poison = ws.force_refactor && m > 0;
        if poison {
            ws.force_refactor = false;
            if ws.factor.dim() >= m {
                ws.factor.clear();
            }
        }
        let dim = ws.factor.dim();
        debug_assert!(dim <= m, "factor larger than working system");
        if dim >= m {
            return Ok(false);
        }
        let from_scratch = dim == 0;
        if from_scratch {
            ws.refactorizations += 1;
        }
        if m - dim > 1 && !poison {
            ws.fcol.clear();
            for r in dim..m {
                let src = cache.s.row(ws.cols[r]);
                ws.fcol.extend(ws.cols[..=r].iter().map(|&c| src[c]));
            }
            if ws
                .factor
                .append_block(m - dim, &ws.fcol, &mut ws.fws)
                .is_ok()
            {
                if !from_scratch {
                    ws.updates += (m - dim) as u64;
                }
                return Ok(false);
            }
            // Blocked append commits nothing on failure — fall through to
            // per-row appends so the error points at the first bad row.
        }
        let mut poison_next = poison;
        for r in ws.factor.dim()..m {
            let src = cache.s.row(ws.cols[r]);
            ws.fcol.clear();
            ws.fcol.extend(ws.cols[..=r].iter().map(|&c| src[c]));
            if poison_next {
                // Double the diagonal: stays positive definite (the solve
                // cannot fail) but is wrong by O(1) — the caller rebuilds
                // before any step direction is taken from this factor.
                let last = ws.fcol.len() - 1;
                ws.fcol[last] *= 2.0;
                poison_next = false;
            }
            ws.factor.append(&ws.fcol)?;
            if !from_scratch {
                ws.updates += 1;
            }
        }
        Ok(poison)
    }

    /// One pass of iterative refinement of `ws.lam` against the cached full
    /// Schur complement; returns `‖correction‖∞`. (`rhs` and `hx` are dead
    /// at this point of the KKT step — reused as residual and correction
    /// scratch.)
    fn refine_multipliers(&self, ws: &mut QpWorkspace, m: usize) -> f64 {
        let cache = self.kkt_cache.as_ref().expect("checked by caller");
        ws.rhs.clear();
        for r in 0..m {
            let src = cache.s.row(ws.cols[r]);
            let mut acc = ws.srhs[r];
            for (q, &l) in ws.lam.iter().enumerate() {
                acc -= src[ws.cols[q]] * l;
            }
            ws.rhs.push(acc);
        }
        ws.hx.clear();
        ws.hx.extend_from_slice(&ws.rhs);
        ws.factor.solve_in_place(&mut ws.hx);
        for (l, &d) in ws.lam.iter_mut().zip(&ws.hx) {
            *l += d;
        }
        vec_ops::norm_inf(&ws.hx)
    }

    /// Objective value `½xᵀHx + gᵀx`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        let hx = self.h.mul_vec(x).expect("validated dimensions");
        0.5 * vec_ops::dot(x, &hx) + vec_ops::dot(&self.g, x)
    }
}

/// Dense backend for the shared [`active_set`] loop. On the prepared fast
/// path the `on_*` hooks keep the incremental Cholesky factor of the
/// working-set Schur block in sync with the working set (drops downdate in
/// place, adds are absorbed lazily at the next KKT step); the unprepared
/// path refactors per iteration and leaves the factor empty.
struct DenseOps<'a> {
    qp: &'a QuadraticProgram,
    ws: &'a mut QpWorkspace,
}

impl ActiveSetOps for DenseOps<'_> {
    fn num_vars(&self) -> usize {
        self.qp.num_vars()
    }

    fn num_eq(&self) -> usize {
        self.qp.a_eq.len()
    }

    fn num_in(&self) -> usize {
        self.qp.a_in.len()
    }

    fn iteration_budget(&self) -> usize {
        self.qp.iteration_budget()
    }

    fn in_dot(&self, i: usize, v: &[f64]) -> f64 {
        vec_ops::dot(&self.qp.a_in[i], v)
    }

    fn in_rhs(&self, i: usize) -> f64 {
        self.qp.b_in[i]
    }

    fn objective_at(&self, x: &[f64]) -> f64 {
        self.qp.objective_at(x)
    }

    fn kkt_step(&mut self, x: &[f64], working: &[usize], sol: &mut Vec<f64>) -> Result<()> {
        self.qp.kkt_step(x, working, sol, self.ws)
    }

    fn begin(&mut self, _working: &[usize]) {
        self.ws.refinements = 0;
        self.ws.refactorizations = 0;
        self.ws.updates = 0;
        self.ws.downdates = 0;
        // The factor (if any) describes a previous solve's working set;
        // the first KKT step rebuilds it for the seeded set.
        // (`force_refactor` deliberately survives: it is armed between
        // solves and consumed by the first factor build.)
        self.ws.factor.clear();
    }

    fn on_remove(&mut self, _working: &[usize], pos: usize) {
        let row = self.qp.a_eq.len() + pos;
        if self.ws.factor.dim() > row {
            self.ws.factor.remove(row);
            self.ws.downdates += 1;
        }
    }

    fn on_pop(&mut self, working: &[usize]) {
        let keep = self.qp.a_eq.len() + working.len();
        if self.ws.factor.dim() > keep {
            self.ws.factor.truncate(keep);
            self.ws.downdates += 1;
        }
    }

    fn take_refinements(&mut self) -> u64 {
        std::mem::take(&mut self.ws.refinements)
    }

    fn single_pivot(&self) -> bool {
        self.qp.single_pivot
    }

    fn take_factor_stats(&mut self) -> (u64, u64, u64) {
        (
            std::mem::take(&mut self.ws.refactorizations),
            std::mem::take(&mut self.ws.updates),
            std::mem::take(&mut self.ws.downdates),
        )
    }
}

/// A solved quadratic program.
#[derive(Debug, Clone, PartialEq)]
pub struct QpSolution {
    x: Vec<f64>,
    objective: f64,
    iterations: usize,
    active_set: Vec<usize>,
    stats: idc_obs::SolveStats,
}

impl QpSolution {
    /// Assembles a solution from the shared active-set loop's results.
    pub(crate) fn from_parts(
        x: Vec<f64>,
        objective: f64,
        iterations: usize,
        active_set: Vec<usize>,
        stats: idc_obs::SolveStats,
    ) -> Self {
        QpSolution {
            x,
            objective,
            iterations,
            active_set,
            stats,
        }
    }

    /// The optimal point.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// The optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of active-set iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Indices of the inequality constraints active at the optimum.
    pub fn active_set(&self) -> &[usize] {
        &self.active_set
    }

    /// Introspection counters collected during this solve (iteration,
    /// churn, seeding and refinement detail beyond
    /// [`iterations`](Self::iterations)).
    pub fn stats(&self) -> &idc_obs::SolveStats {
        &self.stats
    }

    /// Consumes the solution, returning the optimal point.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn unconstrained_qp_solves_newton_system() {
        // min (x0−3)² + (x1+1)²
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![-6.0, 2.0])
            .unwrap()
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 3.0);
        assert_near(sol.x()[1], -1.0);
        assert!(sol.active_set().is_empty());
    }

    #[test]
    fn equality_constrained_qp() {
        // min x0² + x1² s.t. x0 + x1 = 2 → (1, 1)
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![0.0, 0.0])
            .unwrap()
            .equality(vec![1.0, 1.0], 2.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 1.0);
        assert_near(sol.x()[1], 1.0);
        assert_near(sol.objective(), 2.0);
    }

    #[test]
    fn inactive_inequality_is_ignored() {
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![-2.0])
            .unwrap()
            .inequality(vec![1.0], 100.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 1.0);
        assert!(sol.active_set().is_empty());
    }

    #[test]
    fn active_inequality_binds() {
        // min (x−5)² s.t. x ≤ 2 → x = 2, constraint 0 active.
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![-10.0])
            .unwrap()
            .inequality(vec![1.0], 2.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 2.0);
        assert_eq!(sol.active_set(), &[0]);
    }

    #[test]
    fn nocedal_wright_example_16_4() {
        // min (x0−1)² + (x1−2.5)²
        // s.t. −x0 + 2x1 ≤ 2; x0 + 2x1 ≤ 6; x0 − 2x1 ≤ 2; x ≥ 0.
        // Optimum (1.4, 1.7).
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![-2.0, -5.0])
            .unwrap()
            .inequality(vec![-1.0, 2.0], 2.0)
            .inequality(vec![1.0, 2.0], 6.0)
            .inequality(vec![1.0, -2.0], 2.0)
            .inequality(vec![-1.0, 0.0], 0.0)
            .inequality(vec![0.0, -1.0], 0.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 1.4);
        assert_near(sol.x()[1], 1.7);
    }

    #[test]
    fn degenerate_dependent_row_cannot_livelock_the_loop() {
        // Regression: a row numerically dependent on the working set
        // (here row 1 ≈ row 0 + noise) that is tight with a tiny negative
        // slack blocks with alpha = 0, breaks the working-set KKT
        // factorization when admitted, and is popped — then immediately
        // re-selected by the ratio test, forever. The accumulated ban set
        // must break the cycle and let the solve finish at the true
        // optimum governed by the independent constraints.
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![0.0, -2000.0])
            .unwrap()
            .inequality(vec![1.0, 0.0], 0.0)
            .inequality(vec![1.0, 1e-10], -1e-12)
            .inequality(vec![0.0, 1.0], 500.0);
        let sol = qp
            .warm_start(&[0.0, 0.0], &[0], &mut QpWorkspace::new())
            .unwrap();
        assert_near(sol.x()[1], 500.0);
        assert!(sol.x()[0].abs() < 1e-6, "{}", sol.x()[0]);
        // The livelock geometry must actually have been exercised.
        assert!(
            sol.stats().degenerate_pops >= 1,
            "expected a degenerate-KKT pop, stats: {:?}",
            sol.stats()
        );
    }

    #[test]
    fn warm_start_from_feasible_point() {
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![-2.0, -4.0])
            .unwrap()
            .inequality(vec![1.0, 1.0], 2.0);
        let cold = qp.solve().unwrap();
        let warm = qp.solve_from(&[0.4, 1.5]).unwrap();
        assert_near(cold.x()[0], warm.x()[0]);
        assert_near(cold.x()[1], warm.x()[1]);
    }

    #[test]
    fn warm_start_with_seeded_active_set_matches_cold() {
        // Nocedal & Wright 16.4 again, this time warm-started at the known
        // optimum with its active set: must converge immediately to the
        // same point.
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![-2.0, -5.0])
            .unwrap()
            .inequality(vec![-1.0, 2.0], 2.0)
            .inequality(vec![1.0, 2.0], 6.0)
            .inequality(vec![1.0, -2.0], 2.0)
            .inequality(vec![-1.0, 0.0], 0.0)
            .inequality(vec![0.0, -1.0], 0.0);
        let cold = qp.solve().unwrap();
        let mut ws = QpWorkspace::new();
        let warm = qp.warm_start(cold.x(), cold.active_set(), &mut ws).unwrap();
        assert_near(warm.x()[0], cold.x()[0]);
        assert_near(warm.x()[1], cold.x()[1]);
        assert_eq!(warm.active_set(), cold.active_set());
        assert!(warm.iterations() <= cold.iterations());

        // Garbage seed entries (out of range, inactive) are tolerated.
        let sloppy = qp.warm_start(cold.x(), &[99, 1, 1, 0], &mut ws).unwrap();
        assert_near(sloppy.x()[0], cold.x()[0]);
        assert_near(sloppy.x()[1], cold.x()[1]);
    }

    #[test]
    fn workspace_is_reusable_across_different_problems() {
        let mut ws = QpWorkspace::new();
        let a = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![-10.0])
            .unwrap()
            .inequality(vec![1.0], 2.0);
        let b = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0, 2.0]), vec![0.0, 0.0, -2.0])
            .unwrap()
            .equality(vec![1.0, 1.0, 0.0], 1.0);
        for _ in 0..3 {
            let sa = a.solve_with(&mut ws).unwrap();
            assert_near(sa.x()[0], 2.0);
            let sb = b.solve_with(&mut ws).unwrap();
            assert_near(sb.x()[2], 1.0);
            assert_near(sb.x()[0] + sb.x()[1], 1.0);
        }
    }

    #[test]
    fn rhs_and_gradient_mutators_retarget_cached_problem() {
        // min (x0−5)² + x1²  s.t. x1 = 0.5, x0 ≤ 2  → (2, 0.5)
        let mut qp = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![-10.0, 0.0])
            .unwrap()
            .equality(vec![0.0, 1.0], 0.5)
            .inequality(vec![1.0, 0.0], 2.0);
        let first = qp.solve().unwrap();
        assert_near(first.x()[0], 2.0);
        assert_near(first.x()[1], 0.5);
        // Move the target, the bound and the equality level: same skeleton,
        // new step data → (1, 1).
        qp.set_gradient(&[-2.0, 0.0]).unwrap();
        qp.set_inequality_rhs(&[5.0]).unwrap();
        qp.set_equality_rhs(&[1.0]).unwrap();
        let second = qp.solve().unwrap();
        assert_near(second.x()[0], 1.0);
        assert_near(second.x()[1], 1.0);
        // Length mismatches are rejected.
        assert!(qp.set_gradient(&[1.0]).is_err());
        assert!(qp.set_equality_rhs(&[]).is_err());
        assert!(qp.set_inequality_rhs(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn infeasible_warm_start_is_rejected() {
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![0.0])
            .unwrap()
            .inequality(vec![1.0], 1.0);
        assert!(matches!(qp.solve_from(&[5.0]), Err(Error::Infeasible)));
    }

    #[test]
    fn infeasible_constraints_are_reported() {
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![0.0])
            .unwrap()
            .equality(vec![1.0], 3.0)
            .inequality(vec![1.0], 1.0);
        assert!(matches!(qp.solve(), Err(Error::Infeasible)));
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qp = QuadraticProgram::new(h.clone(), vec![1.0, -2.0])
            .unwrap()
            .inequality(vec![1.0, 0.0], 0.3)
            .inequality(vec![0.0, 1.0], 0.4)
            .equality(vec![1.0, 1.0], 0.5);
        let sol = qp.solve().unwrap();
        let x = sol.x();
        // Primal feasibility.
        assert!(qp.is_feasible(x, 1e-7));
        // Stationarity along the equality manifold: the projected gradient
        // onto the null space of active constraints must vanish. With the
        // equality x0+x1 = 0.5 and possibly one active bound, verify the
        // objective cannot be improved by feasible perturbations.
        let base = qp.objective_at(x);
        for eps in [1e-4, -1e-4] {
            let trial = [x[0] + eps, x[1] - eps];
            if qp.is_feasible(&trial, 1e-9) {
                assert!(qp.objective_at(&trial) >= base - 1e-9);
            }
        }
    }

    #[test]
    fn negative_rhs_feasible_point_found() {
        // Feasible region entirely in negative orthant: x ≤ −1, min (x+3)².
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![6.0])
            .unwrap()
            .inequality(vec![1.0], -1.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], -3.0);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        assert!(QuadraticProgram::new(Matrix::zeros(2, 3), vec![0.0, 0.0]).is_err());
        assert!(QuadraticProgram::new(Matrix::identity(2), vec![0.0]).is_err());
        let qp = QuadraticProgram::new(Matrix::identity(2), vec![0.0, 0.0])
            .unwrap()
            .equality(vec![1.0], 0.0);
        assert!(matches!(qp.solve(), Err(Error::DimensionMismatch { .. })));
    }

    fn nocedal_16_4_qp() -> QuadraticProgram {
        QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![-2.0, -5.0])
            .unwrap()
            .inequality(vec![-1.0, 2.0], 2.0)
            .inequality(vec![1.0, 2.0], 6.0)
            .inequality(vec![1.0, -2.0], 2.0)
            .inequality(vec![-1.0, 0.0], 0.0)
            .inequality(vec![0.0, -1.0], 0.0)
    }

    #[test]
    fn prepared_solve_matches_unprepared() {
        let mut qp = nocedal_16_4_qp();
        let plain = qp.solve().unwrap();
        qp.prepare().unwrap();
        let fast = qp.solve().unwrap();
        assert_near(fast.x()[0], plain.x()[0]);
        assert_near(fast.x()[1], plain.x()[1]);
        assert_eq!(fast.active_set(), plain.active_set());
        // The prepared path builds the working-set factor incrementally.
        assert!(fast.stats().refactorizations >= 1);
    }

    #[test]
    fn batched_and_single_pivot_reach_same_optimum() {
        let mut batched = nocedal_16_4_qp();
        batched.prepare().unwrap();
        let mut reference = nocedal_16_4_qp().single_pivot(true);
        reference.prepare().unwrap();
        let b = batched.solve().unwrap();
        let s = reference.solve().unwrap();
        assert_near(b.x()[0], s.x()[0]);
        assert_near(b.x()[1], s.x()[1]);
        assert_near(b.objective(), s.objective());
        assert!(b.iterations() <= s.iterations());
    }

    #[test]
    fn forced_refactorization_triggers_stability_rebuild() {
        // min (x−5)² s.t. x ≤ 2: the bound binds with multiplier 6, so a
        // poisoned factor yields a large refinement correction and the
        // rebuild path must fire — while the answer stays exact.
        let mut qp = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![-10.0])
            .unwrap()
            .inequality(vec![1.0], 2.0);
        qp.prepare().unwrap();
        let cold = qp.solve().unwrap();
        assert_near(cold.x()[0], 2.0);
        let mut ws = QpWorkspace::new();
        ws.force_refactor_next();
        let warm = qp.warm_start(cold.x(), cold.active_set(), &mut ws).unwrap();
        assert_near(warm.x()[0], 2.0);
        // Initial (poisoned) build plus the stability rebuild.
        assert!(
            warm.stats().refactorizations >= 2,
            "stats: {:?}",
            warm.stats()
        );
    }

    #[test]
    fn mpc_shaped_delta_u_problem() {
        // Two-variable ΔU with conservation equality Δu0 + Δu1 = 0 (total
        // workload unchanged), rate penalty Hessian, and a capacity bound.
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0, 4.0]), vec![-4.0, 0.0])
            .unwrap()
            .equality(vec![1.0, 1.0], 0.0);
        // Unconstrained optimum on the manifold: min 3Δu0² − 4Δu0 → Δu0 = 2/3.
        let free = qp.clone().solve().unwrap();
        assert_near(free.x()[0], 2.0 / 3.0);
        assert_near(free.x()[1], -2.0 / 3.0);
        // A capacity bound below 2/3 must bind.
        let sol = qp.inequality(vec![1.0, 0.0], 0.5).solve().unwrap();
        assert_near(sol.x()[0], 0.5);
        assert_near(sol.x()[1], -0.5);
    }
}
