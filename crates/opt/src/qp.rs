//! Primal active-set solver for convex quadratic programs.
//!
//! Solves
//!
//! ```text
//! minimize    ½ xᵀH x + gᵀx          (H symmetric positive definite)
//! subject to  A_eq x  = b_eq
//!             A_in x ≤ b_in
//! ```
//!
//! This is the workhorse behind the paper's condensed MPC problem
//! (eq. 42–45): `x = ΔU(k)` stacked over the control horizon, the equalities
//! are the per-portal workload-conservation rows (eq. 45) and the
//! inequalities are the latency/capacity rows (eq. 43) plus non-negativity
//! of the allocated workload (eq. 44).
//!
//! The method is the textbook primal active-set iteration (Nocedal & Wright,
//! Alg. 16.3): each step solves an equality-constrained subproblem through
//! an LU-factored KKT system, then either takes a blocking step (adding a
//! constraint to the working set) or drops the constraint with the most
//! negative multiplier.

use idc_linalg::{lu::Lu, vec_ops, Matrix};

use crate::linprog::LinearProgram;
use crate::{Error, Result};

/// Feasibility/optimality tolerance.
const TOL: f64 = 1e-8;

/// A convex QP under construction. See the [module docs](self) for the
/// canonical form.
///
/// # Example
///
/// ```
/// use idc_linalg::Matrix;
/// use idc_opt::qp::QuadraticProgram;
///
/// # fn main() -> Result<(), idc_opt::Error> {
/// // min (x0−1)² + (x1−2)²  s.t. x0 + x1 ≤ 2  → (0.5, 1.5)
/// let h = Matrix::diag(&[2.0, 2.0]);
/// let sol = QuadraticProgram::new(h, vec![-2.0, -4.0])?
///     .inequality(vec![1.0, 1.0], 2.0)
///     .solve()?;
/// assert!((sol.x()[0] - 0.5).abs() < 1e-8);
/// assert!((sol.x()[1] - 1.5).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuadraticProgram {
    h: Matrix,
    g: Vec<f64>,
    a_eq: Vec<Vec<f64>>,
    b_eq: Vec<f64>,
    a_in: Vec<Vec<f64>>,
    b_in: Vec<f64>,
    max_iter: usize,
}

impl QuadraticProgram {
    /// Starts a QP `min ½xᵀHx + gᵀx` with an `n × n` Hessian.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `h` is not square or
    /// `g.len()` differs from its dimension.
    pub fn new(h: Matrix, g: Vec<f64>) -> Result<Self> {
        if !h.is_square() || h.rows() != g.len() {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "hessian {}x{} incompatible with gradient of length {}",
                    h.rows(),
                    h.cols(),
                    g.len()
                ),
            });
        }
        Ok(QuadraticProgram {
            h,
            g,
            a_eq: Vec::new(),
            b_eq: Vec::new(),
            a_in: Vec::new(),
            b_in: Vec::new(),
            max_iter: 500,
        })
    }

    /// Adds an equality constraint `rowᵀx = rhs`.
    pub fn equality(mut self, row: Vec<f64>, rhs: f64) -> Self {
        self.a_eq.push(row);
        self.b_eq.push(rhs);
        self
    }

    /// Adds an inequality constraint `rowᵀx ≤ rhs`.
    pub fn inequality(mut self, row: Vec<f64>, rhs: f64) -> Self {
        self.a_in.push(row);
        self.b_in.push(rhs);
        self
    }

    /// Overrides the iteration budget. The default scales with problem
    /// size: `max(500, 4·(variables + constraints))` — an active-set
    /// method may need to add or drop each constraint once.
    pub fn max_iterations(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// The effective iteration budget for this problem instance.
    fn iteration_budget(&self) -> usize {
        self.max_iter
            .max(4 * (self.num_vars() + self.a_in.len() + self.a_eq.len()))
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.g.len()
    }

    /// Solves the program, computing a feasible starting point internally
    /// via a phase-1 linear program.
    ///
    /// # Errors
    ///
    /// * [`Error::Infeasible`] if the constraints admit no point.
    /// * [`Error::IterationLimit`] if the active-set loop fails to converge.
    /// * [`Error::DimensionMismatch`] on malformed constraint rows.
    /// * [`Error::Numerical`] if a KKT system is singular beyond recovery.
    pub fn solve(&self) -> Result<QpSolution> {
        self.validate()?;
        let x0 = self.find_feasible_point()?;
        self.solve_from_feasible(&x0)
    }

    /// Solves the program starting from a caller-supplied point.
    ///
    /// A warm start from the previous MPC step's shifted solution typically
    /// converges in a handful of iterations.
    ///
    /// # Errors
    ///
    /// [`Error::Infeasible`] if `x0` violates the constraints by more than
    /// the internal tolerance, plus the failure modes of [`Self::solve`].
    pub fn solve_from(&self, x0: &[f64]) -> Result<QpSolution> {
        self.validate()?;
        if x0.len() != self.num_vars() {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "starting point has length {}, expected {}",
                    x0.len(),
                    self.num_vars()
                ),
            });
        }
        if !self.is_feasible(x0, 1e-6) {
            return Err(Error::Infeasible);
        }
        self.solve_from_feasible(x0)
    }

    /// Checks whether `x` satisfies all constraints within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        let scale = 1.0 + vec_ops::norm_inf(x);
        self.a_eq
            .iter()
            .zip(&self.b_eq)
            .all(|(row, &b)| (vec_ops::dot(row, x) - b).abs() <= tol * scale)
            && self
                .a_in
                .iter()
                .zip(&self.b_in)
                .all(|(row, &b)| vec_ops::dot(row, x) - b <= tol * scale)
    }

    fn validate(&self) -> Result<()> {
        let n = self.num_vars();
        for row in self.a_eq.iter().chain(&self.a_in) {
            if row.len() != n {
                return Err(Error::DimensionMismatch {
                    what: format!("constraint row has {} coefficients, expected {n}", row.len()),
                });
            }
        }
        Ok(())
    }

    /// Phase 1: finds any feasible point by splitting `x = x⁺ − x⁻` and
    /// solving an LP over non-negative variables.
    fn find_feasible_point(&self) -> Result<Vec<f64>> {
        let n = self.num_vars();
        // Minimize Σ(x⁺ + x⁻) to keep the point bounded and small.
        let mut lp = LinearProgram::minimize(vec![1.0; 2 * n]);
        for (row, &b) in self.a_eq.iter().zip(&self.b_eq) {
            let mut split = Vec::with_capacity(2 * n);
            split.extend_from_slice(row);
            split.extend(row.iter().map(|v| -v));
            lp = lp.equality(split, b);
        }
        for (row, &b) in self.a_in.iter().zip(&self.b_in) {
            let mut split = Vec::with_capacity(2 * n);
            split.extend_from_slice(row);
            split.extend(row.iter().map(|v| -v));
            lp = lp.inequality(split, b);
        }
        let z = lp.solve()?.into_x();
        Ok((0..n).map(|i| z[i] - z[n + i]).collect())
    }

    fn solve_from_feasible(&self, x0: &[f64]) -> Result<QpSolution> {
        let mut x = x0.to_vec();
        // Working set: indices into a_in. Equalities are always active.
        let mut working: Vec<usize> = Vec::new();
        let mut iterations = 0;
        let budget = self.iteration_budget();

        while iterations < budget {
            iterations += 1;
            let (p, mult) = match self.kkt_step(&x, &working) {
                Ok(res) => res,
                Err(Error::Numerical(_)) if !working.is_empty() => {
                    // Degenerate working set — drop the most recent addition.
                    working.pop();
                    continue;
                }
                Err(e) => return Err(e),
            };

            // Stationarity is judged relative to the iterate's scale: with
            // workload-sized variables (O(1e4)) a step of 1e-8 is numerical
            // noise, not progress.
            if vec_ops::norm_inf(&p) < TOL * (1.0 + vec_ops::norm_inf(&x)) {
                // Multipliers of working inequality constraints live after
                // the equality multipliers. Bland-style anti-cycling: drop
                // the negative-multiplier constraint with the smallest
                // *constraint index*, not the most negative multiplier —
                // the latter can cycle on degenerate vertices.
                let ineq_mult = &mult[self.a_eq.len()..];
                let worst = ineq_mult
                    .iter()
                    .enumerate()
                    .filter(|(_, &m)| m < -TOL)
                    .min_by_key(|&(k, _)| working[k]);
                match worst {
                    None => {
                        let objective = self.objective_at(&x);
                        working.sort_unstable();
                        return Ok(QpSolution {
                            x,
                            objective,
                            iterations,
                            active_set: working,
                        });
                    }
                    Some((idx, _)) => {
                        working.remove(idx);
                    }
                }
            } else {
                // Ratio test against inactive inequality constraints.
                let mut alpha = 1.0;
                let mut blocking = None;
                for (i, (row, &b)) in self.a_in.iter().zip(&self.b_in).enumerate() {
                    if working.contains(&i) {
                        continue;
                    }
                    let ap = vec_ops::dot(row, &p);
                    if ap > TOL {
                        let slack = b - vec_ops::dot(row, &x);
                        let ai = (slack / ap).max(0.0);
                        if ai < alpha {
                            alpha = ai;
                            blocking = Some(i);
                        }
                    }
                }
                vec_ops::axpy(alpha, &p, &mut x);
                if let Some(i) = blocking {
                    working.push(i);
                }
            }
        }
        Err(Error::IterationLimit { iterations: budget })
    }

    /// Solves the equality-constrained subproblem at `x` for the working set:
    /// returns the step `p` and the constraint multipliers.
    fn kkt_step(&self, x: &[f64], working: &[usize]) -> Result<(Vec<f64>, Vec<f64>)> {
        let n = self.num_vars();
        let m = self.a_eq.len() + working.len();
        let dim = n + m;
        let mut kkt = Matrix::zeros(dim, dim);
        kkt.set_block(0, 0, &self.h);
        // Tiny ridge keeps nearly-singular Hessians factorable.
        for i in 0..n {
            kkt[(i, i)] += 1e-12;
        }
        let mut fill_row = |r: usize, row: &[f64]| {
            for (j, &v) in row.iter().enumerate() {
                kkt[(n + r, j)] = v;
                kkt[(j, n + r)] = v;
            }
        };
        for (r, row) in self.a_eq.iter().enumerate() {
            fill_row(r, row);
        }
        for (k, &i) in working.iter().enumerate() {
            fill_row(self.a_eq.len() + k, &self.a_in[i]);
        }

        // rhs = [−(Hx + g); 0]
        let mut rhs = vec![0.0; dim];
        let hx = self.h.mul_vec(x)?;
        for i in 0..n {
            rhs[i] = -(hx[i] + self.g[i]);
        }
        let sol = Lu::factor(&kkt)?.solve(&rhs)?;
        let p = sol[..n].to_vec();
        let mult = sol[n..].to_vec();
        Ok((p, mult))
    }

    /// Objective value `½xᵀHx + gᵀx`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        let hx = self.h.mul_vec(x).expect("validated dimensions");
        0.5 * vec_ops::dot(x, &hx) + vec_ops::dot(&self.g, x)
    }
}

/// A solved quadratic program.
#[derive(Debug, Clone, PartialEq)]
pub struct QpSolution {
    x: Vec<f64>,
    objective: f64,
    iterations: usize,
    active_set: Vec<usize>,
}

impl QpSolution {
    /// The optimal point.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// The optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of active-set iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Indices of the inequality constraints active at the optimum.
    pub fn active_set(&self) -> &[usize] {
        &self.active_set
    }

    /// Consumes the solution, returning the optimal point.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn unconstrained_qp_solves_newton_system() {
        // min (x0−3)² + (x1+1)²
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![-6.0, 2.0])
            .unwrap()
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 3.0);
        assert_near(sol.x()[1], -1.0);
        assert!(sol.active_set().is_empty());
    }

    #[test]
    fn equality_constrained_qp() {
        // min x0² + x1² s.t. x0 + x1 = 2 → (1, 1)
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![0.0, 0.0])
            .unwrap()
            .equality(vec![1.0, 1.0], 2.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 1.0);
        assert_near(sol.x()[1], 1.0);
        assert_near(sol.objective(), 2.0);
    }

    #[test]
    fn inactive_inequality_is_ignored() {
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![-2.0])
            .unwrap()
            .inequality(vec![1.0], 100.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 1.0);
        assert!(sol.active_set().is_empty());
    }

    #[test]
    fn active_inequality_binds() {
        // min (x−5)² s.t. x ≤ 2 → x = 2, constraint 0 active.
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![-10.0])
            .unwrap()
            .inequality(vec![1.0], 2.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 2.0);
        assert_eq!(sol.active_set(), &[0]);
    }

    #[test]
    fn nocedal_wright_example_16_4() {
        // min (x0−1)² + (x1−2.5)²
        // s.t. −x0 + 2x1 ≤ 2; x0 + 2x1 ≤ 6; x0 − 2x1 ≤ 2; x ≥ 0.
        // Optimum (1.4, 1.7).
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![-2.0, -5.0])
            .unwrap()
            .inequality(vec![-1.0, 2.0], 2.0)
            .inequality(vec![1.0, 2.0], 6.0)
            .inequality(vec![1.0, -2.0], 2.0)
            .inequality(vec![-1.0, 0.0], 0.0)
            .inequality(vec![0.0, -1.0], 0.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 1.4);
        assert_near(sol.x()[1], 1.7);
    }

    #[test]
    fn warm_start_from_feasible_point() {
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0, 2.0]), vec![-2.0, -4.0])
            .unwrap()
            .inequality(vec![1.0, 1.0], 2.0);
        let cold = qp.solve().unwrap();
        let warm = qp.solve_from(&[0.4, 1.5]).unwrap();
        assert_near(cold.x()[0], warm.x()[0]);
        assert_near(cold.x()[1], warm.x()[1]);
    }

    #[test]
    fn infeasible_warm_start_is_rejected() {
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![0.0])
            .unwrap()
            .inequality(vec![1.0], 1.0);
        assert!(matches!(qp.solve_from(&[5.0]), Err(Error::Infeasible)));
    }

    #[test]
    fn infeasible_constraints_are_reported() {
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![0.0])
            .unwrap()
            .equality(vec![1.0], 3.0)
            .inequality(vec![1.0], 1.0);
        assert!(matches!(qp.solve(), Err(Error::Infeasible)));
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qp = QuadraticProgram::new(h.clone(), vec![1.0, -2.0])
            .unwrap()
            .inequality(vec![1.0, 0.0], 0.3)
            .inequality(vec![0.0, 1.0], 0.4)
            .equality(vec![1.0, 1.0], 0.5);
        let sol = qp.solve().unwrap();
        let x = sol.x();
        // Primal feasibility.
        assert!(qp.is_feasible(x, 1e-7));
        // Stationarity along the equality manifold: the projected gradient
        // onto the null space of active constraints must vanish. With the
        // equality x0+x1 = 0.5 and possibly one active bound, verify the
        // objective cannot be improved by feasible perturbations.
        let base = qp.objective_at(x);
        for eps in [1e-4, -1e-4] {
            let trial = [x[0] + eps, x[1] - eps];
            if qp.is_feasible(&trial, 1e-9) {
                assert!(qp.objective_at(&trial) >= base - 1e-9);
            }
        }
    }

    #[test]
    fn negative_rhs_feasible_point_found() {
        // Feasible region entirely in negative orthant: x ≤ −1, min (x+3)².
        let sol = QuadraticProgram::new(Matrix::diag(&[2.0]), vec![6.0])
            .unwrap()
            .inequality(vec![1.0], -1.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], -3.0);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        assert!(QuadraticProgram::new(Matrix::zeros(2, 3), vec![0.0, 0.0]).is_err());
        assert!(QuadraticProgram::new(Matrix::identity(2), vec![0.0]).is_err());
        let qp = QuadraticProgram::new(Matrix::identity(2), vec![0.0, 0.0])
            .unwrap()
            .equality(vec![1.0], 0.0);
        assert!(matches!(qp.solve(), Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn mpc_shaped_delta_u_problem() {
        // Two-variable ΔU with conservation equality Δu0 + Δu1 = 0 (total
        // workload unchanged), rate penalty Hessian, and a capacity bound.
        let qp = QuadraticProgram::new(Matrix::diag(&[2.0, 4.0]), vec![-4.0, 0.0])
            .unwrap()
            .equality(vec![1.0, 1.0], 0.0);
        // Unconstrained optimum on the manifold: min 3Δu0² − 4Δu0 → Δu0 = 2/3.
        let free = qp.clone().solve().unwrap();
        assert_near(free.x()[0], 2.0 / 3.0);
        assert_near(free.x()[1], -2.0 / 3.0);
        // A capacity bound below 2/3 must bind.
        let sol = qp.inequality(vec![1.0, 0.0], 0.5).solve().unwrap();
        assert_near(sol.x()[0], 0.5);
        assert_near(sol.x()[1], -0.5);
    }
}
