//! Penalized projected-gradient QP solver and simplex projection.
//!
//! This is the *ablation* solver: the paper's MPC problem has a natural
//! product-of-simplices structure (each front-end portal's workload split
//! `λi·` lives on the scaled simplex `{λ ≥ 0, Σj λij = Li}`), so a
//! projected-gradient method with exact simplex projection and quadratic
//! penalties for the coupling (capacity) constraints is a cheap approximate
//! alternative to the exact active-set method. The `qp_ablation` bench
//! compares the two on identical MPC instances.

use idc_linalg::{vec_ops, Matrix};

use crate::{Error, Result};

/// Euclidean projection of `v` onto the scaled simplex
/// `{x : x ≥ 0, Σ x = total}`.
///
/// Uses the classic sort-based algorithm (Held–Wolfe–Crowder); `O(n log n)`.
///
/// # Panics
///
/// Panics if `total` is negative or `v` is empty while `total > 0`.
///
/// # Example
///
/// ```
/// use idc_opt::projgrad::project_simplex;
///
/// let p = project_simplex(&[0.8, 0.8], 1.0);
/// assert!((p[0] - 0.5).abs() < 1e-12 && (p[1] - 0.5).abs() < 1e-12);
/// ```
pub fn project_simplex(v: &[f64], total: f64) -> Vec<f64> {
    assert!(total >= 0.0, "simplex total must be non-negative");
    if total == 0.0 {
        return vec![0.0; v.len()];
    }
    assert!(
        !v.is_empty(),
        "cannot project an empty vector onto a positive simplex"
    );
    let mut sorted = v.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite entries"));
    let mut cumsum = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (k, &u) in sorted.iter().enumerate() {
        cumsum += u;
        let t = (cumsum - total) / (k + 1) as f64;
        if u - t > 0.0 {
            rho = k + 1;
            theta = t;
        }
    }
    debug_assert!(rho > 0);
    let _ = rho;
    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

/// A block structure: variables are partitioned into contiguous blocks,
/// each constrained to a scaled simplex.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexBlock {
    /// Index of the first variable of the block.
    pub start: usize,
    /// Number of variables in the block.
    pub len: usize,
    /// Required sum over the block.
    pub total: f64,
}

/// Approximate QP solver: projected gradient over a product of simplices
/// with quadratic penalties for additional `≤` constraints.
///
/// Minimizes `½xᵀHx + gᵀx + ρ Σ max(0, aᵢᵀx − bᵢ)²` over the product of
/// [`SimplexBlock`]s, by projected gradient descent with a Lipschitz step.
#[derive(Debug, Clone)]
pub struct ProjectedGradientQp {
    h: Matrix,
    g: Vec<f64>,
    blocks: Vec<SimplexBlock>,
    a_pen: Vec<Vec<f64>>,
    b_pen: Vec<f64>,
    penalty: f64,
    max_iter: usize,
    tol: f64,
}

impl ProjectedGradientQp {
    /// Starts a solver for `min ½xᵀHx + gᵀx`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `h` is not square or `g` has
    /// the wrong length.
    pub fn new(h: Matrix, g: Vec<f64>) -> Result<Self> {
        if !h.is_square() || h.rows() != g.len() {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "hessian {}x{} incompatible with gradient of length {}",
                    h.rows(),
                    h.cols(),
                    g.len()
                ),
            });
        }
        Ok(ProjectedGradientQp {
            h,
            g,
            blocks: Vec::new(),
            a_pen: Vec::new(),
            b_pen: Vec::new(),
            penalty: 1e3,
            max_iter: 5000,
            tol: 1e-9,
        })
    }

    /// Adds a simplex block constraint over `start..start+len`.
    pub fn simplex_block(mut self, start: usize, len: usize, total: f64) -> Self {
        self.blocks.push(SimplexBlock { start, len, total });
        self
    }

    /// Adds a penalized inequality `rowᵀx ≤ rhs`.
    pub fn penalized_inequality(mut self, row: Vec<f64>, rhs: f64) -> Self {
        self.a_pen.push(row);
        self.b_pen.push(rhs);
        self
    }

    /// Sets the penalty weight ρ (default 1e3).
    pub fn penalty_weight(mut self, rho: f64) -> Self {
        self.penalty = rho;
        self
    }

    /// Sets the iteration budget (default 5000).
    pub fn max_iterations(mut self, it: usize) -> Self {
        self.max_iter = it;
        self
    }

    /// Runs projected gradient from the block-uniform starting point.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] on malformed blocks/rows.
    /// * [`Error::IterationLimit`] when the step change never falls below
    ///   tolerance (the last iterate is *not* returned — tighten the budget
    ///   or penalty instead).
    pub fn solve(&self) -> Result<Vec<f64>> {
        let n = self.g.len();
        for b in &self.blocks {
            if b.start + b.len > n {
                return Err(Error::DimensionMismatch {
                    what: format!(
                        "block {}..{} exceeds {n} variables",
                        b.start,
                        b.start + b.len
                    ),
                });
            }
        }
        for row in &self.a_pen {
            if row.len() != n {
                return Err(Error::DimensionMismatch {
                    what: format!("penalty row has {} coefficients, expected {n}", row.len()),
                });
            }
        }

        // Start at the uniform point of each block, zero elsewhere.
        let mut x = vec![0.0; n];
        for b in &self.blocks {
            let share = b.total / b.len as f64;
            for xi in &mut x[b.start..b.start + b.len] {
                *xi = share;
            }
        }

        // Lipschitz constant of the smooth part: λmax(H) + ρ Σ‖aᵢ‖² bound.
        let mut lip = self.h.norm_inf();
        for row in &self.a_pen {
            lip += 2.0 * self.penalty * vec_ops::dot(row, row);
        }
        let step = 1.0 / lip.max(1e-12);

        for _ in 0..self.max_iter {
            let mut grad = self.h.mul_vec(&x)?;
            vec_ops::axpy(1.0, &self.g, &mut grad);
            for (row, &b) in self.a_pen.iter().zip(&self.b_pen) {
                let viol = vec_ops::dot(row, &x) - b;
                if viol > 0.0 {
                    vec_ops::axpy(2.0 * self.penalty * viol, row, &mut grad);
                }
            }
            let mut next = x.clone();
            vec_ops::axpy(-step, &grad, &mut next);
            for b in &self.blocks {
                let proj = project_simplex(&next[b.start..b.start + b.len], b.total);
                next[b.start..b.start + b.len].copy_from_slice(&proj);
            }
            let delta = vec_ops::norm_inf(&vec_ops::sub(&next, &x));
            x = next;
            if delta < self.tol {
                return Ok(x);
            }
        }
        Err(Error::IterationLimit {
            iterations: self.max_iter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_preserves_points_already_on_simplex() {
        let p = project_simplex(&[0.3, 0.7], 1.0);
        assert!((p[0] - 0.3).abs() < 1e-12 && (p[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn projection_clips_negative_entries() {
        let p = project_simplex(&[-1.0, 2.0], 1.0);
        assert_eq!(p[0], 0.0);
        assert!((p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_sums_to_total() {
        let p = project_simplex(&[5.0, 1.0, -3.0, 0.2], 10.0);
        assert!((vec_ops::sum(&p) - 10.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn projection_onto_zero_simplex_is_zero() {
        assert_eq!(project_simplex(&[1.0, 2.0], 0.0), vec![0.0, 0.0]);
    }

    #[test]
    fn matches_active_set_on_simplex_qp() {
        // min (x0−2)² + x1²  s.t. x0 + x1 = 1, x ≥ 0 → (1, 0).
        let h = Matrix::diag(&[2.0, 2.0]);
        let x = ProjectedGradientQp::new(h, vec![-4.0, 0.0])
            .unwrap()
            .simplex_block(0, 2, 1.0)
            .solve()
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6, "{x:?}");
        assert!(x[1].abs() < 1e-6, "{x:?}");
    }

    #[test]
    fn penalty_enforces_capacity_approximately() {
        // min ‖x − (2,0)‖² over simplex Σ = 2 with capacity x0 ≤ 1.2.
        let h = Matrix::diag(&[2.0, 2.0]);
        let x = ProjectedGradientQp::new(h, vec![-4.0, 0.0])
            .unwrap()
            .simplex_block(0, 2, 2.0)
            .penalized_inequality(vec![1.0, 0.0], 1.2)
            .penalty_weight(1e4)
            .solve()
            .unwrap();
        assert!(x[0] <= 1.2 + 1e-2, "{x:?}");
        assert!((vec_ops::sum(&x) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_block_out_of_range() {
        let r = ProjectedGradientQp::new(Matrix::identity(2), vec![0.0, 0.0])
            .unwrap()
            .simplex_block(1, 2, 1.0)
            .solve();
        assert!(matches!(r, Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn rejects_bad_penalty_row() {
        let r = ProjectedGradientQp::new(Matrix::identity(2), vec![0.0, 0.0])
            .unwrap()
            .penalized_inequality(vec![1.0], 0.0)
            .solve();
        assert!(matches!(r, Err(Error::DimensionMismatch { .. })));
    }
}
