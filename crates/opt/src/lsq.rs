//! Constrained weighted least squares.
//!
//! The paper transforms its MPC optimization into "a standard least-squares
//! problem" (eq. 42):
//!
//! ```text
//! min  ‖ A x − b ‖²_Q  +  ‖ x ‖²_R     s.t.  A_eq x = b_eq,  A_in x ≤ b_in
//! ```
//!
//! with `A = W′Θ`, `b = Π(k)`, `x = ΔU(k)` and diagonal weights `Q(s)`,
//! `R(s)`. This module lowers that form onto the [active-set QP
//! solver](crate::qp) (`H = 2(AᵀQA + R)`, `g = −2AᵀQb`), or onto a plain QR
//! solve when no constraints are present.

use idc_linalg::{qr, Matrix};

use crate::qp::{QpSolution, QuadraticProgram};
use crate::{Error, Result};

/// A weighted, linearly constrained least-squares problem.
///
/// # Example
///
/// ```
/// use idc_linalg::Matrix;
/// use idc_opt::lsq::ConstrainedLeastSquares;
///
/// # fn main() -> Result<(), idc_opt::Error> {
/// // Fit x ≈ (1, 1) but require x0 + x1 = 1.
/// let a = Matrix::identity(2);
/// let sol = ConstrainedLeastSquares::new(a, vec![1.0, 1.0])?
///     .equality(vec![1.0, 1.0], 1.0)
///     .solve()?;
/// assert!((sol.x()[0] - 0.5).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConstrainedLeastSquares {
    a: Matrix,
    b: Vec<f64>,
    /// Diagonal of the residual weight `Q` (length = rows of `a`).
    q_diag: Vec<f64>,
    /// Diagonal of the regularizer `R` (length = cols of `a`).
    r_diag: Vec<f64>,
    eq: Vec<(Vec<f64>, f64)>,
    ineq: Vec<(Vec<f64>, f64)>,
}

impl ConstrainedLeastSquares {
    /// Starts a problem `min ‖Ax − b‖²` with unit weights and no
    /// regularization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != a.rows()`.
    pub fn new(a: Matrix, b: Vec<f64>) -> Result<Self> {
        if b.len() != a.rows() {
            return Err(Error::DimensionMismatch {
                what: format!("rhs length {} vs {} rows", b.len(), a.rows()),
            });
        }
        let rows = a.rows();
        let cols = a.cols();
        Ok(ConstrainedLeastSquares {
            a,
            b,
            q_diag: vec![1.0; rows],
            r_diag: vec![0.0; cols],
            eq: Vec::new(),
            ineq: Vec::new(),
        })
    }

    /// Sets the diagonal residual weights `Q`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on wrong length.
    pub fn residual_weights(mut self, q_diag: Vec<f64>) -> Result<Self> {
        if q_diag.len() != self.a.rows() {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "Q diagonal length {} vs {} rows",
                    q_diag.len(),
                    self.a.rows()
                ),
            });
        }
        self.q_diag = q_diag;
        Ok(self)
    }

    /// Sets the diagonal regularization weights `R` (the paper's input-rate
    /// penalty — larger `R` smooths power demand harder).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on wrong length.
    pub fn regularization(mut self, r_diag: Vec<f64>) -> Result<Self> {
        if r_diag.len() != self.a.cols() {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "R diagonal length {} vs {} cols",
                    r_diag.len(),
                    self.a.cols()
                ),
            });
        }
        self.r_diag = r_diag;
        Ok(self)
    }

    /// Adds an equality constraint `rowᵀx = rhs`.
    pub fn equality(mut self, row: Vec<f64>, rhs: f64) -> Self {
        self.eq.push((row, rhs));
        self
    }

    /// Adds an inequality constraint `rowᵀx ≤ rhs`.
    pub fn inequality(mut self, row: Vec<f64>, rhs: f64) -> Self {
        self.ineq.push((row, rhs));
        self
    }

    /// Solves the problem.
    ///
    /// Falls back to a direct QR solve when there are no constraints and no
    /// regularization; otherwise lowers to the active-set QP.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Infeasible`] / [`Error::IterationLimit`] /
    /// [`Error::Numerical`] from the underlying solver.
    pub fn solve(&self) -> Result<LsqSolution> {
        if self.eq.is_empty()
            && self.ineq.is_empty()
            && self.r_diag.iter().all(|&r| r == 0.0)
            && self.a.rows() >= self.a.cols()
        {
            let weighted_a = self.apply_sqrt_weights();
            let weighted_b = self.weighted_rhs();
            let x = qr::least_squares(&weighted_a, &weighted_b)?;
            let residual = self.residual_norm(&x);
            return Ok(LsqSolution {
                x,
                residual,
                iterations: 0,
            });
        }

        let qp = self.lower_to_qp()?;
        let sol: QpSolution = qp.solve()?;
        let residual = self.residual_norm(sol.x());
        let iterations = sol.iterations();
        Ok(LsqSolution {
            x: sol.into_x(),
            residual,
            iterations,
        })
    }

    /// Lowers the problem onto its quadratic-program form
    /// `H = 2(AᵀQA + R)`, `g = −2AᵀQb`, carrying the constraints over.
    ///
    /// The returned [`QuadraticProgram`] is self-contained: callers that
    /// solve the same structure repeatedly (MPC) can keep it cached and
    /// re-aim it each step via
    /// [`set_gradient`](QuadraticProgram::set_gradient) /
    /// [`set_equality_rhs`](QuadraticProgram::set_equality_rhs) /
    /// [`set_inequality_rhs`](QuadraticProgram::set_inequality_rhs)
    /// instead of re-lowering — building `H` is the expensive part.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on inconsistent dimensions.
    pub fn lower_to_qp(&self) -> Result<QuadraticProgram> {
        let n = self.a.cols();
        let qa = self.apply_sqrt_weights();
        let mut h = qa.tr_mul_mat(&qa)?.scale(2.0);
        for i in 0..n {
            h[(i, i)] += 2.0 * self.r_diag[i];
        }
        let qb = self.weighted_rhs();
        let g = qa.tr_mul_vec(&qb)?.iter().map(|v| -2.0 * v).collect();

        let mut qp = QuadraticProgram::new(h, g)?;
        for (row, rhs) in &self.eq {
            qp = qp.equality(row.clone(), *rhs);
        }
        for (row, rhs) in &self.ineq {
            qp = qp.inequality(row.clone(), *rhs);
        }
        Ok(qp)
    }

    /// Writes the QP gradient `g = −2AᵀQb` for the current right-hand side
    /// into `out`, reusing its allocation.
    ///
    /// This is the only part of the lowered QP that depends on `b` alone,
    /// so callers holding a cached [`QuadraticProgram`] refresh it with
    /// this plus the rhs setters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on inconsistent dimensions.
    pub fn gradient_into(&self, b: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if b.len() != self.a.rows() {
            return Err(Error::DimensionMismatch {
                what: format!("rhs length {} vs {} rows", b.len(), self.a.rows()),
            });
        }
        // out = −2 Aᵀ (Q b), accumulated without forming AᵀQ.
        out.clear();
        out.resize(self.a.cols(), 0.0);
        for i in 0..self.a.rows() {
            let qb = self.q_diag[i] * b[i];
            if qb == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.a.row(i)) {
                *o -= 2.0 * a * qb;
            }
        }
        Ok(())
    }

    /// `√Q · A`.
    fn apply_sqrt_weights(&self) -> Matrix {
        let mut m = self.a.clone();
        for i in 0..m.rows() {
            let w = self.q_diag[i].sqrt();
            for v in m.row_mut(i) {
                *v *= w;
            }
        }
        m
    }

    /// `√Q · b`.
    fn weighted_rhs(&self) -> Vec<f64> {
        self.b
            .iter()
            .zip(&self.q_diag)
            .map(|(&bi, &qi)| bi * qi.sqrt())
            .collect()
    }

    /// Weighted residual norm `‖Ax − b‖_Q`.
    pub fn residual_norm(&self, x: &[f64]) -> f64 {
        let ax = self.a.mul_vec(x).expect("validated dimensions");
        ax.iter()
            .zip(&self.b)
            .zip(&self.q_diag)
            .map(|((axi, bi), qi)| qi * (axi - bi).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

/// A solved constrained least-squares problem.
#[derive(Debug, Clone, PartialEq)]
pub struct LsqSolution {
    x: Vec<f64>,
    residual: f64,
    iterations: usize,
}

impl LsqSolution {
    /// The minimizer.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Weighted residual norm at the minimizer.
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Active-set iterations used (0 for the direct QR path).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Consumes the solution, returning the minimizer.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_path_matches_qr() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = vec![1.0, 2.0, 2.0];
        let sol = ConstrainedLeastSquares::new(a.clone(), b.clone())
            .unwrap()
            .solve()
            .unwrap();
        let direct = qr::least_squares(&a, &b).unwrap();
        assert!((sol.x()[0] - direct[0]).abs() < 1e-10);
        assert!((sol.x()[1] - direct[1]).abs() < 1e-10);
        assert_eq!(sol.iterations(), 0);
    }

    #[test]
    fn equality_constraint_moves_solution() {
        let a = Matrix::identity(2);
        let sol = ConstrainedLeastSquares::new(a, vec![3.0, 1.0])
            .unwrap()
            .equality(vec![1.0, 1.0], 2.0)
            .solve()
            .unwrap();
        // Projection of (3,1) onto x0+x1=2 is (2,0).
        assert!((sol.x()[0] - 2.0).abs() < 1e-7, "{:?}", sol.x());
        assert!(sol.x()[1].abs() < 1e-7);
    }

    #[test]
    fn regularization_shrinks_solution() {
        let a = Matrix::identity(2);
        let plain = ConstrainedLeastSquares::new(a.clone(), vec![4.0, 4.0])
            .unwrap()
            // Force the QP path with a slack inequality.
            .inequality(vec![1.0, 0.0], 100.0)
            .solve()
            .unwrap();
        let ridged = ConstrainedLeastSquares::new(a, vec![4.0, 4.0])
            .unwrap()
            .regularization(vec![1.0, 1.0])
            .unwrap()
            .inequality(vec![1.0, 0.0], 100.0)
            .solve()
            .unwrap();
        assert!(ridged.x()[0] < plain.x()[0]);
        // Analytical ridge solution: x = b / (1 + r) = 2.
        assert!((ridged.x()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn residual_weights_prioritize_rows() {
        // Two incompatible targets for a single variable; weight decides.
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let heavy_first = ConstrainedLeastSquares::new(a, vec![0.0, 10.0])
            .unwrap()
            .residual_weights(vec![100.0, 1.0])
            .unwrap()
            .solve()
            .unwrap();
        assert!(heavy_first.x()[0] < 1.0, "{:?}", heavy_first.x());
    }

    #[test]
    fn inequality_binds() {
        let a = Matrix::identity(1);
        let sol = ConstrainedLeastSquares::new(a, vec![5.0])
            .unwrap()
            .inequality(vec![1.0], 2.0)
            .solve()
            .unwrap();
        assert!((sol.x()[0] - 2.0).abs() < 1e-7);
        assert!((sol.residual() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn lowered_qp_matches_direct_solve_and_retargets() {
        let a = Matrix::identity(2);
        let lsq = ConstrainedLeastSquares::new(a, vec![3.0, 1.0])
            .unwrap()
            .equality(vec![1.0, 1.0], 2.0);
        let direct = lsq.solve().unwrap();
        let mut qp = lsq.lower_to_qp().unwrap();
        let via_qp = qp.solve().unwrap();
        assert!((direct.x()[0] - via_qp.x()[0]).abs() < 1e-9);
        assert!((direct.x()[1] - via_qp.x()[1]).abs() < 1e-9);

        // Retarget the cached QP at a new rhs b′ = (1, 5): the gradient
        // refresh must reproduce a from-scratch lowering.
        let mut g = Vec::new();
        lsq.gradient_into(&[1.0, 5.0], &mut g).unwrap();
        qp.set_gradient(&g).unwrap();
        let moved = qp.solve().unwrap();
        let fresh = ConstrainedLeastSquares::new(Matrix::identity(2), vec![1.0, 5.0])
            .unwrap()
            .equality(vec![1.0, 1.0], 2.0)
            .solve()
            .unwrap();
        assert!((moved.x()[0] - fresh.x()[0]).abs() < 1e-9);
        assert!((moved.x()[1] - fresh.x()[1]).abs() < 1e-9);
        assert!(lsq.gradient_into(&[1.0], &mut g).is_err());
    }

    #[test]
    fn dimension_validation() {
        assert!(ConstrainedLeastSquares::new(Matrix::identity(2), vec![1.0]).is_err());
        let lsq = ConstrainedLeastSquares::new(Matrix::identity(2), vec![1.0, 1.0]).unwrap();
        assert!(lsq.clone().residual_weights(vec![1.0]).is_err());
        assert!(lsq.regularization(vec![1.0]).is_err());
    }
}
