//! Dense two-phase primal simplex for linear programs.
//!
//! Solves problems of the form
//!
//! ```text
//! minimize    cᵀx
//! subject to  A_eq x  = b_eq
//!             A_ub x ≤ b_ub
//!             x ≥ 0
//! ```
//!
//! which is exactly the shape of the paper's control-reference problem
//! (eq. 46): workload shares `λij ≥ 0`, one conservation equality per
//! front-end portal (eq. 2) and one latency/capacity inequality per IDC
//! (eq. 30). Bland's rule is used for both the entering and leaving
//! variable, which guarantees termination even on degenerate vertices
//! (degeneracy is common here — optima sit on capacity faces).

use crate::{Error, Result};

/// Numerical tolerance for pivoting and feasibility decisions.
const TOL: f64 = 1e-9;

/// A linear program under construction. See the [module docs](self) for the
/// canonical form.
///
/// # Example
///
/// ```
/// use idc_opt::linprog::LinearProgram;
///
/// # fn main() -> Result<(), idc_opt::Error> {
/// // min -x0 - 2 x1  s.t.  x0 + x1 ≤ 4,  x1 ≤ 3,  x ≥ 0
/// let sol = LinearProgram::minimize(vec![-1.0, -2.0])
///     .inequality(vec![1.0, 1.0], 4.0)
///     .inequality(vec![0.0, 1.0], 3.0)
///     .solve()?;
/// assert!((sol.objective() + 7.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    c: Vec<f64>,
    a_eq: Vec<Vec<f64>>,
    b_eq: Vec<f64>,
    a_ub: Vec<Vec<f64>>,
    b_ub: Vec<f64>,
}

impl LinearProgram {
    /// Starts a minimization of `cᵀx` over `x ≥ 0`.
    pub fn minimize(c: Vec<f64>) -> Self {
        LinearProgram {
            c,
            a_eq: Vec::new(),
            b_eq: Vec::new(),
            a_ub: Vec::new(),
            b_ub: Vec::new(),
        }
    }

    /// Adds an equality constraint `rowᵀx = rhs`.
    pub fn equality(mut self, row: Vec<f64>, rhs: f64) -> Self {
        self.a_eq.push(row);
        self.b_eq.push(rhs);
        self
    }

    /// Adds an inequality constraint `rowᵀx ≤ rhs`.
    pub fn inequality(mut self, row: Vec<f64>, rhs: f64) -> Self {
        self.a_ub.push(row);
        self.b_ub.push(rhs);
        self
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.c.len()
    }

    /// Mutable view of the objective coefficients, for re-pricing a built
    /// program in place (e.g. new electricity prices on an unchanged
    /// constraint structure) without reallocating constraint rows.
    pub fn cost_mut(&mut self) -> &mut [f64] {
        &mut self.c
    }

    /// Mutable view of the equality right-hand sides, in the order the
    /// constraints were added — lets a caller update demand values (e.g.
    /// new portal workloads) on an unchanged constraint structure.
    pub fn eq_rhs_mut(&mut self) -> &mut [f64] {
        &mut self.b_eq
    }

    /// Mutable view of the inequality right-hand sides, in the order the
    /// constraints were added — lets a caller move bounds (e.g. a
    /// billed-peak floor that ratchets up over a billing period) on an
    /// unchanged constraint structure.
    pub fn ineq_rhs_mut(&mut self) -> &mut [f64] {
        &mut self.b_ub
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// Allocates a fresh [`LpWorkspace`] per call; repeated solvers should
    /// hold one and use [`LinearProgram::solve_with`].
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if a constraint row length differs
    ///   from the number of variables.
    /// * [`Error::Infeasible`] if no point satisfies the constraints.
    /// * [`Error::Unbounded`] if the objective decreases without bound.
    /// * [`Error::IterationLimit`] on (pathological) failure to terminate.
    pub fn solve(&self) -> Result<LpSolution> {
        self.solve_with(&mut LpWorkspace::new())
    }

    /// Solves the program reusing `ws` for all tableau storage.
    ///
    /// The workspace grows to the largest problem it has seen and is
    /// reset (not reallocated) on each call, so a per-step LP — like the
    /// eq. 46 control reference — performs no heap allocation for the
    /// simplex itself once the workspace is warm. The workspace carries no
    /// numerical state between calls; `solve_with` and [`solve`] return
    /// identical solutions.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`solve`].
    ///
    /// [`solve`]: LinearProgram::solve
    pub fn solve_with(&self, ws: &mut LpWorkspace) -> Result<LpSolution> {
        let n = self.c.len();
        for (i, row) in self.a_eq.iter().chain(&self.a_ub).enumerate() {
            if row.len() != n {
                return Err(Error::DimensionMismatch {
                    what: format!(
                        "constraint {i} has {} coefficients, expected {n}",
                        row.len()
                    ),
                });
            }
        }
        Tableau::new(self, ws).solve()
    }
}

/// Reusable storage for the simplex tableau.
///
/// Holds the dense `(m + 1) × (total + 1)` tableau, the basis bookkeeping
/// and a pivot-row scratch buffer. A workspace can be reused across
/// programs of any (possibly different) size — each
/// [`LinearProgram::solve_with`] call resizes and re-initializes it, so
/// steady-state repeated solves allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct LpWorkspace {
    /// Row-major `(m + 1) × stride` tableau; last row is the reduced-cost
    /// row, last column of each row the RHS.
    t: Vec<f64>,
    /// Index of the basic variable of each constraint row.
    basis: Vec<usize>,
    /// Rows whose sign was flipped to normalize the RHS (flips the dual).
    negated: Vec<bool>,
    /// Scratch copy of the pivot row during elimination.
    pivot_row: Vec<f64>,
}

impl LpWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        LpWorkspace::default()
    }
}

/// A solved linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    x: Vec<f64>,
    objective: f64,
    duals_eq: Vec<f64>,
    duals_ub: Vec<f64>,
}

impl LpSolution {
    /// The optimal point.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// The optimal objective value `cᵀx`.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Shadow prices of the equality constraints, in the order they were
    /// added: `duals_eq()[i] ≈ ∂objective/∂b_eq[i]`.
    pub fn duals_eq(&self) -> &[f64] {
        &self.duals_eq
    }

    /// Shadow prices of the inequality constraints, in the order they were
    /// added: `duals_ub()[i] ≈ ∂objective/∂b_ub[i]` (≤ 0 for a
    /// minimization — relaxing a `≤` bound can only help).
    pub fn duals_ub(&self) -> &[f64] {
        &self.duals_ub
    }

    /// Consumes the solution, returning the optimal point.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }
}

/// Dense simplex tableau over workspace-owned flat storage.
///
/// Columns: `n` structural variables, `m_ub` slacks, `m` artificials, RHS.
/// Every row receives an artificial so the phase-1 basis is trivially the
/// artificial block. All mutable state lives in the borrowed
/// [`LpWorkspace`]; the tableau itself only carries dimensions.
struct Tableau<'a> {
    ws: &'a mut LpWorkspace,
    n: usize,
    n_slack: usize,
    m: usize,
    /// Number of equality rows (they precede the inequality rows).
    m_eq: usize,
    /// Row length of the flat tableau: `total_cols() + 1` (RHS column).
    stride: usize,
    c: &'a [f64],
}

impl<'a> Tableau<'a> {
    fn new(lp: &'a LinearProgram, ws: &'a mut LpWorkspace) -> Self {
        let n = lp.c.len();
        let m_eq = lp.a_eq.len();
        let m_ub = lp.a_ub.len();
        let m = m_eq + m_ub;
        let total = n + m_ub + m; // structural + slack + artificial
        let stride = total + 1;

        // clear + resize reuses capacity and zero-fills in one pass.
        ws.t.clear();
        ws.t.resize((m + 1) * stride, 0.0);
        ws.pivot_row.clear();
        ws.pivot_row.resize(stride, 0.0);

        // Equality rows first, then inequality rows with slacks.
        for (i, (row, &rhs)) in lp.a_eq.iter().zip(&lp.b_eq).enumerate() {
            ws.t[i * stride..i * stride + n].copy_from_slice(row);
            ws.t[i * stride + total] = rhs;
        }
        for (k, (row, &rhs)) in lp.a_ub.iter().zip(&lp.b_ub).enumerate() {
            let i = m_eq + k;
            ws.t[i * stride..i * stride + n].copy_from_slice(row);
            ws.t[i * stride + n + k] = 1.0;
            ws.t[i * stride + total] = rhs;
        }
        // Normalize RHS signs, then install artificials as the basis.
        ws.negated.clear();
        ws.negated.resize(m, false);
        for i in 0..m {
            if ws.t[i * stride + total] < 0.0 {
                for v in &mut ws.t[i * stride..(i + 1) * stride] {
                    *v = -*v;
                }
                ws.negated[i] = true;
            }
            ws.t[i * stride + n + m_ub + i] = 1.0;
        }
        ws.basis.clear();
        ws.basis.extend((0..m).map(|i| n + m_ub + i));

        Tableau {
            ws,
            n,
            n_slack: m_ub,
            m,
            m_eq,
            stride,
            c: &lp.c,
        }
    }

    fn total_cols(&self) -> usize {
        self.n + self.n_slack + self.m
    }

    /// Subtracts `coeff ×` constraint row `i` from the reduced-cost row.
    /// The objective row is the last one, so a `split_at_mut` keeps the
    /// borrows disjoint without copying the source row.
    fn eliminate_from_objective(&mut self, i: usize, coeff: f64) {
        let stride = self.stride;
        let (rows, obj) = self.ws.t.split_at_mut(self.m * stride);
        let row = &rows[i * stride..(i + 1) * stride];
        for (o, &r) in obj.iter_mut().zip(row) {
            *o -= coeff * r;
        }
    }

    fn solve(mut self) -> Result<LpSolution> {
        let total = self.total_cols();
        let stride = self.stride;
        let ob = self.m * stride; // objective-row offset

        // ---- Phase 1: minimize the sum of artificials. ----
        // Reduced costs: 1 on artificials, 0 elsewhere, then eliminate the
        // basic (artificial) columns by subtracting each constraint row.
        for v in &mut self.ws.t[ob..ob + stride] {
            *v = 0.0;
        }
        for a in 0..self.m {
            self.ws.t[ob + self.n + self.n_slack + a] = 1.0;
        }
        for i in 0..self.m {
            self.eliminate_from_objective(i, 1.0);
        }
        self.run_simplex(total)?;
        let phase1_obj = -self.ws.t[ob + total];
        if phase1_obj > 1e-7 {
            return Err(Error::Infeasible);
        }
        self.evict_basic_artificials();

        // ---- Phase 2: original objective, artificial columns frozen. ----
        let usable = self.n + self.n_slack;
        for v in &mut self.ws.t[ob..ob + stride] {
            *v = 0.0;
        }
        for j in 0..self.n {
            self.ws.t[ob + j] = self.c[j];
        }
        for i in 0..self.m {
            let b = self.ws.basis[i];
            let coeff = self.ws.t[ob + b];
            if coeff != 0.0 {
                self.eliminate_from_objective(i, coeff);
            }
        }
        self.run_simplex(usable)?;

        // Extract solution.
        let mut x = vec![0.0; self.n];
        for (i, &b) in self.ws.basis.iter().enumerate() {
            if b < self.n {
                x[b] = self.ws.t[i * stride + total];
            }
        }
        let objective = self.c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();

        // Shadow prices from the final reduced-cost row. For a column that
        // is a unit vector of row i with zero objective coefficient, the
        // reduced cost equals −y_i. Artificial columns are +e_i in the
        // (possibly sign-normalized) tableau, so equality duals flip back
        // when the row was negated. Slack columns were −e_i in negated
        // rows, which cancels the row flip — no correction there.
        let art_start = self.n + self.n_slack;
        let duals_eq: Vec<f64> = (0..self.m_eq)
            .map(|i| {
                let y = -self.ws.t[ob + art_start + i];
                if self.ws.negated[i] {
                    -y
                } else {
                    y
                }
            })
            .collect();
        let duals_ub: Vec<f64> = (0..self.n_slack)
            .map(|k| -self.ws.t[ob + self.n + k])
            .collect();
        Ok(LpSolution {
            x,
            objective,
            duals_eq,
            duals_ub,
        })
    }

    /// Runs simplex iterations allowing entering columns `< allowed_cols`.
    fn run_simplex(&mut self, allowed_cols: usize) -> Result<()> {
        let total = self.total_cols();
        let stride = self.stride;
        let ob = self.m * stride;
        // Generous cap: Bland's rule terminates, this guards NaN poisoning.
        let max_iter = 50 * (self.m + allowed_cols + 10);
        for _ in 0..max_iter {
            // Bland: entering = smallest index with negative reduced cost.
            let Some(enter) = (0..allowed_cols).find(|&j| self.ws.t[ob + j] < -TOL) else {
                return Ok(());
            };
            // Ratio test; Bland tie-break on smallest basis index.
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for i in 0..self.m {
                let a = self.ws.t[i * stride + enter];
                if a > TOL {
                    let ratio = self.ws.t[i * stride + total] / a;
                    let better = ratio < best - TOL
                        || (ratio < best + TOL
                            && leave.is_some_and(|l| self.ws.basis[i] < self.ws.basis[l]));
                    if better {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(Error::Unbounded);
            };
            self.pivot(leave, enter);
        }
        Err(Error::IterationLimit {
            iterations: max_iter,
        })
    }

    /// Pivots so column `enter` becomes basic in row `leave`.
    fn pivot(&mut self, leave: usize, enter: usize) {
        let stride = self.stride;
        let ws = &mut *self.ws;
        let ps = leave * stride;
        let pivot = ws.t[ps + enter];
        for v in &mut ws.t[ps..ps + stride] {
            *v /= pivot;
        }
        // Stash the normalized pivot row in the scratch buffer so the
        // elimination below can borrow every other row mutably.
        ws.pivot_row.copy_from_slice(&ws.t[ps..ps + stride]);
        for i in 0..=self.m {
            if i == leave {
                continue;
            }
            let rs = i * stride;
            let factor = ws.t[rs + enter];
            if factor == 0.0 {
                continue;
            }
            for (v, &p) in ws.t[rs..rs + stride].iter_mut().zip(&ws.pivot_row) {
                *v -= factor * p;
            }
        }
        ws.basis[leave] = enter;
    }

    /// After phase 1, pivots any artificial still basic (at value 0) out of
    /// the basis where possible. Rows that cannot be pivoted are redundant
    /// constraints; their artificial stays basic at zero, which is harmless
    /// because artificial columns are excluded from phase-2 pricing.
    fn evict_basic_artificials(&mut self) {
        let art_start = self.n + self.n_slack;
        for i in 0..self.m {
            if self.ws.basis[i] >= art_start {
                if let Some(j) =
                    (0..art_start).find(|&j| self.ws.t[i * self.stride + j].abs() > TOL)
                {
                    self.pivot(i, j);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn unconstrained_nonnegative_lp_sits_at_origin() {
        let sol = LinearProgram::minimize(vec![1.0, 2.0]).solve().unwrap();
        assert_eq!(sol.x(), &[0.0, 0.0]);
        assert_eq!(sol.objective(), 0.0);
    }

    #[test]
    fn textbook_maximization_via_negated_costs() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let sol = LinearProgram::minimize(vec![-3.0, -5.0])
            .inequality(vec![1.0, 0.0], 4.0)
            .inequality(vec![0.0, 2.0], 12.0)
            .inequality(vec![3.0, 2.0], 18.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 2.0);
        assert_near(sol.x()[1], 6.0);
        assert_near(sol.objective(), -36.0);
    }

    #[test]
    fn equality_constraint_is_enforced() {
        let sol = LinearProgram::minimize(vec![2.0, 1.0])
            .equality(vec![1.0, 1.0], 5.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 0.0);
        assert_near(sol.x()[1], 5.0);
        assert_near(sol.objective(), 5.0);
    }

    #[test]
    fn infeasible_program_is_reported() {
        let r = LinearProgram::minimize(vec![1.0])
            .equality(vec![1.0], 5.0)
            .inequality(vec![1.0], 2.0)
            .solve();
        assert!(matches!(r, Err(Error::Infeasible)));
    }

    #[test]
    fn contradictory_equalities_are_infeasible() {
        let r = LinearProgram::minimize(vec![0.0, 0.0])
            .equality(vec![1.0, 1.0], 1.0)
            .equality(vec![1.0, 1.0], 2.0)
            .solve();
        assert!(matches!(r, Err(Error::Infeasible)));
    }

    #[test]
    fn unbounded_program_is_reported() {
        let r = LinearProgram::minimize(vec![-1.0]).solve();
        assert!(matches!(r, Err(Error::Unbounded)));
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x0 − x1 ≤ −2 with min x0 + x1 → (0, 2).
        let sol = LinearProgram::minimize(vec![1.0, 1.0])
            .inequality(vec![1.0, -1.0], -2.0)
            .solve()
            .unwrap();
        assert_near(sol.x()[0], 0.0);
        assert_near(sol.x()[1], 2.0);
    }

    #[test]
    fn redundant_constraints_are_tolerated() {
        let sol = LinearProgram::minimize(vec![1.0, 1.0])
            .equality(vec![1.0, 1.0], 4.0)
            .equality(vec![2.0, 2.0], 8.0) // same hyperplane
            .solve()
            .unwrap();
        assert_near(sol.x()[0] + sol.x()[1], 4.0);
    }

    #[test]
    fn degenerate_vertex_terminates() {
        // Multiple constraints active at the optimum.
        let sol = LinearProgram::minimize(vec![-1.0, -1.0])
            .inequality(vec![1.0, 0.0], 1.0)
            .inequality(vec![0.0, 1.0], 1.0)
            .inequality(vec![1.0, 1.0], 2.0)
            .inequality(vec![1.0, 1.0], 2.0)
            .solve()
            .unwrap();
        assert_near(sol.objective(), -2.0);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let r = LinearProgram::minimize(vec![1.0, 2.0])
            .equality(vec![1.0], 1.0)
            .solve();
        assert!(matches!(r, Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn paper_shaped_allocation_lp() {
        // 2 portals × 2 IDCs. Variables x = [λ11, λ12, λ21, λ22].
        // Marginal costs: IDC1 cheap (1.0), IDC2 expensive (3.0).
        // Portal loads 10 and 20; IDC1 capacity 12.
        let sol = LinearProgram::minimize(vec![1.0, 3.0, 1.0, 3.0])
            .equality(vec![1.0, 1.0, 0.0, 0.0], 10.0)
            .equality(vec![0.0, 0.0, 1.0, 1.0], 20.0)
            .inequality(vec![1.0, 0.0, 1.0, 0.0], 12.0)
            .solve()
            .unwrap();
        let x = sol.x();
        // IDC1 saturated at 12, remaining 18 on IDC2.
        assert_near(x[0] + x[2], 12.0);
        assert_near(x[1] + x[3], 18.0);
        assert_near(sol.objective(), 12.0 + 54.0);
    }

    #[test]
    fn duals_satisfy_strong_duality_and_perturbation() {
        // min -3x -5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
        let build = |b3: f64| {
            LinearProgram::minimize(vec![-3.0, -5.0])
                .inequality(vec![1.0, 0.0], 4.0)
                .inequality(vec![0.0, 2.0], 12.0)
                .inequality(vec![3.0, 2.0], 18.0 + b3)
        };
        let sol = build(0.0).solve().unwrap();
        let y = sol.duals_ub();
        // Strong duality: obj = Σ y_i b_i (no equalities here).
        let dual_obj = y[0] * 4.0 + y[1] * 12.0 + y[2] * 18.0;
        assert!(
            (dual_obj - sol.objective()).abs() < 1e-7,
            "{dual_obj} vs {}",
            sol.objective()
        );
        // Complementary slackness: x ≤ 4 is slack at optimum (x = 2) → y = 0.
        assert!(y[0].abs() < 1e-9, "{y:?}");
        // Minimization with ≤ rows: shadow prices are non-positive.
        assert!(y.iter().all(|&v| v <= 1e-9), "{y:?}");
        // Perturbation check: ∂obj/∂b3 ≈ y[2].
        let eps = 1e-3;
        let bumped = build(eps).solve().unwrap();
        let fd = (bumped.objective() - sol.objective()) / eps;
        assert!((fd - y[2]).abs() < 1e-6, "fd {fd} vs dual {}", y[2]);
    }

    #[test]
    fn equality_duals_match_perturbation() {
        let build =
            |rhs: f64| LinearProgram::minimize(vec![2.0, 1.0]).equality(vec![1.0, 1.0], rhs);
        let sol = build(5.0).solve().unwrap();
        // Marginal unit of demand is served by the cheaper variable: y = 1.
        assert!(
            (sol.duals_eq()[0] - 1.0).abs() < 1e-9,
            "{:?}",
            sol.duals_eq()
        );
        let eps = 1e-3;
        let bumped = build(5.0 + eps).solve().unwrap();
        let fd = (bumped.objective() - sol.objective()) / eps;
        assert!((fd - sol.duals_eq()[0]).abs() < 1e-6);
    }

    #[test]
    fn duals_handle_negative_rhs_rows() {
        // x0 − x1 ≤ −2 (normalized internally); min x0 + x1 → (0, 2).
        let build =
            |rhs: f64| LinearProgram::minimize(vec![1.0, 1.0]).inequality(vec![1.0, -1.0], rhs);
        let sol = build(-2.0).solve().unwrap();
        let eps = 1e-3;
        let bumped = build(-2.0 + eps).solve().unwrap();
        let fd = (bumped.objective() - sol.objective()) / eps;
        assert!(
            (fd - sol.duals_ub()[0]).abs() < 1e-6,
            "fd {fd} vs dual {}",
            sol.duals_ub()[0]
        );
    }

    #[test]
    fn zero_variable_program() {
        let sol = LinearProgram::minimize(vec![]).solve().unwrap();
        assert!(sol.x().is_empty());
        assert_eq!(sol.objective(), 0.0);
    }

    #[test]
    fn workspace_reuse_across_different_shapes_matches_fresh_solves() {
        let mut ws = LpWorkspace::new();
        let big = LinearProgram::minimize(vec![1.0, 3.0, 1.0, 3.0])
            .equality(vec![1.0, 1.0, 0.0, 0.0], 10.0)
            .equality(vec![0.0, 0.0, 1.0, 1.0], 20.0)
            .inequality(vec![1.0, 0.0, 1.0, 0.0], 12.0);
        let small = LinearProgram::minimize(vec![-3.0, -5.0])
            .inequality(vec![1.0, 0.0], 4.0)
            .inequality(vec![0.0, 2.0], 12.0)
            .inequality(vec![3.0, 2.0], 18.0);
        // Interleave sizes both ways: a stale tableau from a *larger*
        // problem must not leak into a smaller one and vice versa.
        for _ in 0..3 {
            let a = big.solve_with(&mut ws).unwrap();
            assert_eq!(a, big.solve().unwrap());
            let b = small.solve_with(&mut ws).unwrap();
            assert_eq!(b, small.solve().unwrap());
        }
    }

    #[test]
    fn workspace_reuse_preserves_error_reporting() {
        let mut ws = LpWorkspace::new();
        // A successful solve first, then an infeasible and an unbounded one
        // through the same workspace.
        LinearProgram::minimize(vec![1.0])
            .equality(vec![1.0], 3.0)
            .solve_with(&mut ws)
            .unwrap();
        let infeasible = LinearProgram::minimize(vec![1.0])
            .equality(vec![1.0], 5.0)
            .inequality(vec![1.0], 2.0)
            .solve_with(&mut ws);
        assert!(matches!(infeasible, Err(Error::Infeasible)));
        let unbounded = LinearProgram::minimize(vec![-1.0]).solve_with(&mut ws);
        assert!(matches!(unbounded, Err(Error::Unbounded)));
        // And the workspace still produces correct solutions afterwards.
        let sol = LinearProgram::minimize(vec![2.0, 1.0])
            .equality(vec![1.0, 1.0], 5.0)
            .solve_with(&mut ws)
            .unwrap();
        assert_near(sol.objective(), 5.0);
    }

    #[test]
    fn in_place_repricing_matches_rebuilt_program() {
        // Same constraint structure, new costs and demands — the pattern
        // the control reference uses every step.
        let mut lp = LinearProgram::minimize(vec![1.0, 3.0])
            .equality(vec![1.0, 1.0], 10.0)
            .inequality(vec![1.0, 0.0], 6.0);
        let mut ws = LpWorkspace::new();
        lp.solve_with(&mut ws).unwrap();
        lp.cost_mut().copy_from_slice(&[4.0, 2.0]);
        lp.eq_rhs_mut()[0] = 8.0;
        let reused = lp.solve_with(&mut ws).unwrap();
        let fresh = LinearProgram::minimize(vec![4.0, 2.0])
            .equality(vec![1.0, 1.0], 8.0)
            .inequality(vec![1.0, 0.0], 6.0)
            .solve()
            .unwrap();
        assert_eq!(reused, fresh);
        assert_near(reused.objective(), 16.0);
    }

    #[test]
    fn into_x_returns_point() {
        let sol = LinearProgram::minimize(vec![1.0])
            .equality(vec![1.0], 3.0)
            .solve()
            .unwrap();
        assert_eq!(sol.into_x(), vec![3.0]);
    }
}
