//! Structure-exploiting active-set solver for block-tridiagonal QPs.
//!
//! Solves the same canonical problem as [`qp`](crate::qp) —
//!
//! ```text
//! minimize    ½ xᵀH x + gᵀx          (H symmetric positive definite)
//! subject to  A_eq x  = b_eq
//!             A_in x ≤ b_in
//! ```
//!
//! — but never forms a dense Hessian: `H` is a stagewise
//! [`BlockTridiag`] (the shape of the MPC problem in cumulative-input
//! coordinates) and every constraint row is sparse (stage-local). Three
//! structural savings follow:
//!
//! 1. `H⁻¹·v` costs O(β·nb²) through the block Cholesky / Riccati recursion
//!    ([`BlockTridiagChol`]) instead of O((β·nb)²) dense back-substitution,
//! 2. the working-set Schur complement `S_W = C_W H⁻¹ C_Wᵀ` is maintained
//!    *incrementally* under working-set changes via [`UpdatableCholesky`] —
//!    O(m²) per add / drop instead of the O(m³) per-iteration refactor of
//!    the dense path, and
//! 3. ratio tests and right-hand sides use sparse row dots.
//!
//! The outer iteration is the exact same shared [`active_set`] loop the
//! dense backend uses, so warm-start seeding, Dantzig/Bland switching and
//! degeneracy recovery are identical — both backends converge to the same
//! optimum and expose interchangeable [`QpSolution`]s.

use idc_linalg::banded::{BlockTridiag, BlockTridiagChol};
use idc_linalg::cholesky::UpdatableCholesky;
use idc_linalg::workspace::Workspace;
use idc_linalg::{vec_ops, Matrix};

use crate::active_set::{self, ActiveSetOps, WARM_TOL};
use crate::linprog::LinearProgram;
use crate::qp::{QpSolution, REBUILD_TOL};
use crate::{Error, Result};

/// A sparse constraint row: sorted-by-construction `(index, value)` pairs.
///
/// MPC constraint rows touch only one stage (and within it, often only one
/// IDC's portal entries), so rows carry a handful of nonzeros even when the
/// problem has hundreds of variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseRow {
    entries: Vec<(usize, f64)>,
}

impl SparseRow {
    /// Creates an empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a row from `(index, value)` pairs.
    pub fn from_entries(entries: Vec<(usize, f64)>) -> Self {
        SparseRow { entries }
    }

    /// Appends a nonzero entry.
    pub fn push(&mut self, index: usize, value: f64) {
        self.entries.push((index, value));
    }

    /// The `(index, value)` pairs of this row.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Dot product with a dense vector.
    pub fn dot(&self, v: &[f64]) -> f64 {
        self.entries.iter().map(|&(i, c)| c * v[i]).sum()
    }

    /// Largest referenced index, if any entry exists.
    fn max_index(&self) -> Option<usize> {
        self.entries.iter().map(|&(i, _)| i).max()
    }

    /// Scatters the row into a dense zeroed buffer.
    fn scatter_into(&self, out: &mut [f64]) {
        out.fill(0.0);
        for &(i, c) in &self.entries {
            out[i] += c;
        }
    }
}

/// Reusable scratch memory for [`BandedQp`] solves.
///
/// Holds the incrementally maintained working-set Cholesky factor plus all
/// per-iteration vectors, so a steady-state warm-started solve performs no
/// heap allocation.
#[derive(Debug, Clone, Default)]
pub struct BandedQpWorkspace {
    /// Incremental Cholesky factor of the working-set Schur block `S_W`.
    factor: UpdatableCholesky,
    /// `H̃⁻¹·g`, computed once per solve — the Newton point at any iterate
    /// is then `t = −x − H̃⁻¹g` with no Hessian multiply.
    tg: Vec<f64>,
    /// Newton point `t = H̃⁻¹·(−(Hx + g))`.
    t: Vec<f64>,
    /// Schur right-hand side `C_W·t`.
    srhs: Vec<f64>,
    /// Multipliers.
    lam: Vec<f64>,
    /// Refinement residual / correction scratch.
    resid: Vec<f64>,
    /// Gather buffer for a new factor row.
    col: Vec<f64>,
    /// Global constraint index of each working-system row, rebuilt once per
    /// KKT step so the O(m²) gathers below skip the per-element mapping.
    cols: Vec<usize>,
    /// Working set buffer, reused across solves.
    working: Vec<usize>,
    /// `[p; multipliers]` buffer, reused across solves.
    sol: Vec<f64>,
    /// Linalg scratch pool for block factor updates.
    fws: Workspace,
    /// Iterative-refinement passes since `begin` (introspection only;
    /// drained into [`crate::SolveStats`] per solve).
    refinements: u64,
    /// Full (re)builds of the working-set factor since `begin`.
    refactorizations: u64,
    /// Incremental factor appends (constraint adds absorbed in place).
    updates: u64,
    /// Incremental factor row removals (constraint drops absorbed in place).
    downdates: u64,
    /// When set, the next factor build is deterministically poisoned so the
    /// stability-rebuild path must fire (fault injection).
    force_refactor: bool,
}

impl BandedQpWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Poisons the incremental working-set factor: the next factor build
    /// appends a deterministically corrupted row, forcing the refinement
    /// check to take the full stability-rebuild path. Used by the testkit's
    /// forced-refactorization fault kind.
    pub fn force_refactor_next(&mut self) {
        self.force_refactor = true;
    }
}

/// Precomputed factorizations shared by all solves of one problem skeleton.
#[derive(Debug, Clone)]
struct BandedCache {
    /// Block Cholesky factor of `H + εI`.
    chol: BlockTridiagChol,
    /// `Y` stored transposed: row `r` is `H̃⁻¹·c_rᵀ` (shape `mt × n`), so
    /// the step `p = t − Y_Rᵀλ` accumulates over contiguous rows.
    yt: Matrix,
    /// Full Schur complement `C·H̃⁻¹·Cᵀ` over all constraint rows.
    s: Matrix,
}

/// A convex QP with block-tridiagonal Hessian and sparse constraint rows.
///
/// Mirrors the [`QuadraticProgram`](crate::qp::QuadraticProgram) API
/// (builder, rhs/gradient retargeting, warm starts) but scales as
/// O(β·nb³ + m²·iters) per solve instead of O((β·nb)³ + m³·iters).
#[derive(Debug, Clone)]
pub struct BandedQp {
    h: BlockTridiag,
    g: Vec<f64>,
    a_eq: Vec<SparseRow>,
    b_eq: Vec<f64>,
    a_in: Vec<SparseRow>,
    b_in: Vec<f64>,
    max_iter: usize,
    single_pivot: bool,
    cache: Option<BandedCache>,
}

impl BandedQp {
    /// Starts a QP `min ½xᵀHx + gᵀx` with a block-tridiagonal Hessian.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `g.len()` differs from
    /// `h.dim()`.
    pub fn new(h: BlockTridiag, g: Vec<f64>) -> Result<Self> {
        if h.dim() != g.len() {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "block-tridiagonal hessian of dimension {} incompatible with gradient of length {}",
                    h.dim(),
                    g.len()
                ),
            });
        }
        Ok(BandedQp {
            h,
            g,
            a_eq: Vec::new(),
            b_eq: Vec::new(),
            a_in: Vec::new(),
            b_in: Vec::new(),
            max_iter: 500,
            single_pivot: false,
            cache: None,
        })
    }

    /// Adds an equality constraint `rowᵀx = rhs`.
    pub fn equality(mut self, row: SparseRow, rhs: f64) -> Self {
        self.a_eq.push(row);
        self.b_eq.push(rhs);
        self.cache = None;
        self
    }

    /// Adds an inequality constraint `rowᵀx ≤ rhs`.
    pub fn inequality(mut self, row: SparseRow, rhs: f64) -> Self {
        self.a_in.push(row);
        self.b_in.push(rhs);
        self.cache = None;
        self
    }

    /// Overrides the iteration budget (same scaling default as the dense
    /// solver: `max(500, 4·(variables + constraints))`).
    pub fn max_iterations(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Restricts the active-set loop to one constraint add/drop per outer
    /// iteration (the textbook reference semantics; batched pivoting is the
    /// default). Mirrors
    /// [`QuadraticProgram::single_pivot`](crate::qp::QuadraticProgram::single_pivot).
    pub fn single_pivot(mut self, yes: bool) -> Self {
        self.single_pivot = yes;
        self
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.g.len()
    }

    fn iteration_budget(&self) -> usize {
        self.max_iter
            .max(4 * (self.num_vars() + self.a_in.len() + self.a_eq.len()))
    }

    /// Replaces the gradient `g`, keeping the Hessian and constraints.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on a length mismatch.
    pub fn set_gradient(&mut self, g: &[f64]) -> Result<()> {
        if g.len() != self.g.len() {
            return Err(Error::DimensionMismatch {
                what: format!("gradient length {} != {}", g.len(), self.g.len()),
            });
        }
        self.g.copy_from_slice(g);
        Ok(())
    }

    /// Applies an in-place update to the Hessian and drops the prepared
    /// factorizations; the next solve (or an explicit [`Self::prepare`])
    /// refactors against the updated curvature. Constraints, gradient, and
    /// right-hand sides are untouched, so the feasibility of a warm point
    /// survives the update. Used by the sharded backend's penalty
    /// adaptation, which retunes the consensus `ρ·aaᵀ` term mid-solve.
    pub fn update_hessian(&mut self, update: impl FnOnce(&mut BlockTridiag)) {
        update(&mut self.h);
        self.cache = None;
    }

    /// Replaces the equality right-hand sides, keeping the rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on a length mismatch.
    pub fn set_equality_rhs(&mut self, rhs: &[f64]) -> Result<()> {
        if rhs.len() != self.b_eq.len() {
            return Err(Error::DimensionMismatch {
                what: format!("equality rhs length {} != {}", rhs.len(), self.b_eq.len()),
            });
        }
        self.b_eq.copy_from_slice(rhs);
        Ok(())
    }

    /// Replaces the inequality right-hand sides, keeping the rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on a length mismatch.
    pub fn set_inequality_rhs(&mut self, rhs: &[f64]) -> Result<()> {
        if rhs.len() != self.b_in.len() {
            return Err(Error::DimensionMismatch {
                what: format!("inequality rhs length {} != {}", rhs.len(), self.b_in.len()),
            });
        }
        self.b_in.copy_from_slice(rhs);
        Ok(())
    }

    /// Checks whether `x` satisfies all constraints within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        let scale = 1.0 + vec_ops::norm_inf(x);
        self.a_eq
            .iter()
            .zip(&self.b_eq)
            .all(|(row, &b)| (row.dot(x) - b).abs() <= tol * scale)
            && self
                .a_in
                .iter()
                .zip(&self.b_in)
                .all(|(row, &b)| row.dot(x) - b <= tol * scale)
    }

    /// Objective value `½xᵀHx + gᵀx`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        let mut hx = vec![0.0; self.num_vars()];
        self.h.mul_vec_into(x, &mut hx);
        0.5 * vec_ops::dot(x, &hx) + vec_ops::dot(&self.g, x)
    }

    fn validate(&self) -> Result<()> {
        let n = self.num_vars();
        for row in self.a_eq.iter().chain(&self.a_in) {
            if row.max_index().is_some_and(|i| i >= n) {
                return Err(Error::DimensionMismatch {
                    what: format!(
                        "sparse constraint row references index {} beyond {n} variables",
                        row.max_index().unwrap_or(0)
                    ),
                });
            }
        }
        Ok(())
    }

    /// Precomputes the block Cholesky of `H + εI`, `Y = H̃⁻¹Cᵀ` (stored
    /// transposed) and the full Schur complement `S = C·H̃⁻¹·Cᵀ`.
    ///
    /// Called automatically by the solve entry points when needed; the cache
    /// survives gradient/rhs retargeting and is dropped when constraint rows
    /// are added.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] on malformed constraint rows.
    /// * [`Error::Numerical`] if the Hessian is not positive definite.
    pub fn prepare(&mut self) -> Result<()> {
        self.validate()?;
        let n = self.num_vars();
        let mt = self.a_eq.len() + self.a_in.len();
        let mut pool = Workspace::new();
        let mut chol = match self.cache.take() {
            Some(c) => c.chol,
            None => BlockTridiagChol::new(),
        };
        // Factor H exactly when possible — the KKT step then reconstructs
        // the Newton point as `t = −x − H⁻¹g` without ever multiplying by
        // H, which keeps the per-iteration cost O(n + m²). Only when the
        // exact factorization breaks down fall back to the dense path's
        // tiny ridge (the solve then optimizes the εI-perturbed problem,
        // indistinguishable at solver tolerance).
        if chol.refactor(&self.h, &mut pool).is_err() {
            let mut ridged = self.h.clone();
            for t in 0..ridged.nblocks() {
                let nb = ridged.nb();
                let d = ridged.diag_mut(t);
                for i in 0..nb {
                    d[i * nb + i] += 1e-12;
                }
            }
            chol.refactor(&ridged, &mut pool)?;
        }
        // All constraint rows are solved as one batched multi-RHS sweep:
        // the stage-coupling corrections go through GEMM and the rows are
        // banded across worker threads, instead of mt separate banded
        // triangular solves.
        let mut yt = Matrix::zeros(mt, n);
        for r in 0..mt {
            self.crow(r).scatter_into(yt.row_mut(r));
        }
        if mt > 0 {
            chol.solve_rows_in_place(yt.as_mut_slice(), mt, &mut pool);
        }
        let mut s = Matrix::zeros(mt, mt);
        for r in 0..mt {
            let yrow = yt.row(r);
            for q in 0..mt {
                s[(r, q)] = self.crow(q).dot(yrow);
            }
        }
        self.cache = Some(BandedCache { chol, yt, s });
        Ok(())
    }

    /// Constraint row `gr` in global ordering (equalities first).
    fn crow(&self, gr: usize) -> &SparseRow {
        if gr < self.a_eq.len() {
            &self.a_eq[gr]
        } else {
            &self.a_in[gr - self.a_eq.len()]
        }
    }

    /// Solves the program, computing a feasible starting point internally
    /// via a phase-1 linear program.
    ///
    /// # Errors
    ///
    /// * [`Error::Infeasible`] if the constraints admit no point.
    /// * [`Error::IterationLimit`] if the active-set loop fails to converge.
    /// * [`Error::DimensionMismatch`] on malformed constraint rows.
    /// * [`Error::Numerical`] if the Hessian or a KKT system is singular
    ///   beyond recovery.
    pub fn solve_with(&mut self, ws: &mut BandedQpWorkspace) -> Result<QpSolution> {
        self.validate()?;
        let x0 = self.find_feasible_point()?;
        self.warm_start(&x0, &[], ws)
    }

    /// Warm-started solve: starts from `x0` with the working set seeded
    /// from `active_set` (typically the previous solve's
    /// [`QpSolution::active_set`]), reusing `ws`'s scratch memory.
    ///
    /// Active-set index semantics match the dense solver exactly, so seeds
    /// recorded by one backend can be replayed against the other.
    ///
    /// # Errors
    ///
    /// [`Error::Infeasible`] if `x0` violates the constraints by more than
    /// the internal tolerance, plus the failure modes of
    /// [`Self::solve_with`].
    pub fn warm_start(
        &mut self,
        x0: &[f64],
        active_set: &[usize],
        ws: &mut BandedQpWorkspace,
    ) -> Result<QpSolution> {
        self.validate()?;
        if x0.len() != self.num_vars() {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "starting point has length {}, expected {}",
                    x0.len(),
                    self.num_vars()
                ),
            });
        }
        if !self.is_feasible(x0, WARM_TOL) {
            return Err(Error::Infeasible);
        }
        if self.cache.is_none() {
            self.prepare()?;
        }
        let mut working = std::mem::take(&mut ws.working);
        let mut sol = std::mem::take(&mut ws.sol);
        let result = {
            let mut ops = BandedOps { qp: self, ws };
            active_set::solve_from_feasible(&mut ops, x0, active_set, &mut working, &mut sol)
        };
        ws.working = working;
        ws.sol = sol;
        result
    }

    /// Phase 1: densifies the sparse rows and finds any feasible point via
    /// the same split-variable LP the dense solver uses. Cold starts are
    /// rare (once per problem-structure change), so the densification cost
    /// is irrelevant.
    fn find_feasible_point(&self) -> Result<Vec<f64>> {
        let n = self.num_vars();
        let mut lp = LinearProgram::minimize(vec![1.0; 2 * n]);
        let split = |row: &SparseRow| {
            let mut dense = vec![0.0; 2 * n];
            for &(i, c) in row.entries() {
                dense[i] += c;
                dense[n + i] -= c;
            }
            dense
        };
        for (row, &b) in self.a_eq.iter().zip(&self.b_eq) {
            lp = lp.equality(split(row), b);
        }
        for (row, &b) in self.a_in.iter().zip(&self.b_in) {
            lp = lp.inequality(split(row), b);
        }
        let z = lp.solve()?.into_x();
        Ok((0..n).map(|i| z[i] - z[n + i]).collect())
    }
}

/// Banded backend for the shared [`active_set`] loop.
///
/// The Newton point `t = H̃⁻¹(−(Hx+g))` is recomputed each iteration through
/// the O(β·nb²) banded solve (cheap enough that incremental tracking is not
/// worth the drift risk), while the working-set Schur factor is maintained
/// incrementally across iterations through the `on_*` hooks.
struct BandedOps<'a> {
    qp: &'a BandedQp,
    ws: &'a mut BandedQpWorkspace,
}

impl BandedOps<'_> {
    /// Maps a working-system row to its global constraint index.
    fn gcol(&self, working: &[usize], r: usize) -> usize {
        let me = self.qp.a_eq.len();
        if r < me {
            r
        } else {
            me + working[r - me]
        }
    }

    /// Extends the incremental factor until it covers every row of the
    /// current working system, gathering new rows from the precomputed
    /// Schur complement.
    ///
    /// A build from dimension zero counts as a refactorization; appends to
    /// an existing factor count as incremental updates. Multi-row growth
    /// (batched pivoting admits several constraints per outer iteration)
    /// goes through the blocked append, falling back to row-by-row on
    /// failure so the error points at the first bad row. Returns whether a
    /// pending poison was consumed by this build (the caller must then
    /// rebuild before using the factor's solution).
    fn ensure_factor(&mut self, working: &[usize]) -> Result<bool> {
        let me = self.qp.a_eq.len();
        let target = me + working.len();
        let cache = self.qp.cache.as_ref().expect("prepared by warm_start");
        // Consume a pending poison request: corrupt the first row appended
        // in this build so the caller's stability-rebuild path must fire
        // (deterministic fault injection).
        let poison = self.ws.force_refactor && target > 0;
        if poison {
            self.ws.force_refactor = false;
            if self.ws.factor.dim() >= target {
                self.ws.factor.clear();
            }
        }
        let dim = self.ws.factor.dim();
        if dim >= target {
            return Ok(false);
        }
        let from_scratch = dim == 0;
        if from_scratch {
            self.ws.refactorizations += 1;
        }
        if target - dim > 1 && !poison {
            self.ws.col.clear();
            for r in dim..target {
                let srow = cache.s.row(self.gcol(working, r));
                for q in 0..=r {
                    self.ws.col.push(srow[self.gcol(working, q)]);
                }
            }
            if self
                .ws
                .factor
                .append_block(target - dim, &self.ws.col, &mut self.ws.fws)
                .is_ok()
            {
                if !from_scratch {
                    self.ws.updates += (target - dim) as u64;
                }
                return Ok(false);
            }
            // Blocked append commits nothing on failure — fall through to
            // per-row appends so the error points at the first bad row.
        }
        let mut poison_next = poison;
        while self.ws.factor.dim() < target {
            let r = self.ws.factor.dim();
            let gr = self.gcol(working, r);
            let srow = cache.s.row(gr);
            self.ws.col.clear();
            for q in 0..r {
                self.ws.col.push(srow[self.gcol(working, q)]);
            }
            self.ws.col.push(srow[gr]);
            if poison_next {
                // Double the diagonal: stays positive definite (the solve
                // cannot fail) but is wrong by O(1) — the caller rebuilds
                // before any step direction is taken from this factor.
                let last = self.ws.col.len() - 1;
                self.ws.col[last] *= 2.0;
                poison_next = false;
            }
            // A failed append leaves the prefix factor intact; surfacing
            // Numerical makes the outer loop pop the degenerate addition.
            self.ws.factor.append(&self.ws.col).map_err(Error::from)?;
            if !from_scratch {
                self.ws.updates += 1;
            }
        }
        Ok(poison)
    }

    /// One pass of iterative refinement of `lam` against the unfactored
    /// Schur entries; returns `‖correction‖∞`.
    fn refine_lambda(&mut self, m: usize) -> f64 {
        let cache = self.qp.cache.as_ref().expect("prepared by warm_start");
        self.ws.resid.clear();
        for r in 0..m {
            let srow = cache.s.row(self.ws.cols[r]);
            let mut acc = self.ws.srhs[r];
            for (&gq, &lq) in self.ws.cols.iter().zip(&self.ws.lam) {
                acc -= srow[gq] * lq;
            }
            self.ws.resid.push(acc);
        }
        self.ws.factor.solve_in_place(&mut self.ws.resid);
        for (l, &d) in self.ws.lam.iter_mut().zip(&self.ws.resid) {
            *l += d;
        }
        vec_ops::norm_inf(&self.ws.resid)
    }
}

impl ActiveSetOps for BandedOps<'_> {
    fn num_vars(&self) -> usize {
        self.qp.num_vars()
    }

    fn num_eq(&self) -> usize {
        self.qp.a_eq.len()
    }

    fn num_in(&self) -> usize {
        self.qp.a_in.len()
    }

    fn iteration_budget(&self) -> usize {
        self.qp.iteration_budget()
    }

    fn in_dot(&self, i: usize, v: &[f64]) -> f64 {
        self.qp.a_in[i].dot(v)
    }

    fn in_rhs(&self, i: usize) -> f64 {
        self.qp.b_in[i]
    }

    fn objective_at(&self, x: &[f64]) -> f64 {
        self.qp.objective_at(x)
    }

    fn begin(&mut self, _working: &[usize]) {
        self.ws.refinements = 0;
        self.ws.refactorizations = 0;
        self.ws.updates = 0;
        self.ws.downdates = 0;
        // (`force_refactor` deliberately survives: it is armed between
        // solves and consumed by the first factor build.)
        self.ws.factor.clear();
        // One banded solve per call amortizes the Newton point across the
        // whole active-set iteration: t(x) = −x − H̃⁻¹g for the fixed g.
        let cache = self.qp.cache.as_ref().expect("prepared by warm_start");
        self.ws.tg.clear();
        self.ws.tg.extend_from_slice(&self.qp.g);
        cache.chol.solve_in_place(&mut self.ws.tg);
    }

    fn on_remove(&mut self, _working: &[usize], pos: usize) {
        let row = self.qp.a_eq.len() + pos;
        if self.ws.factor.dim() > row {
            self.ws.factor.remove(row);
            self.ws.downdates += 1;
        }
    }

    fn on_pop(&mut self, working: &[usize]) {
        let target = self.qp.a_eq.len() + working.len();
        if self.ws.factor.dim() > target {
            self.ws.factor.truncate(target);
            self.ws.downdates += 1;
        }
    }

    fn kkt_step(&mut self, x: &[f64], working: &[usize], sol: &mut Vec<f64>) -> Result<()> {
        let n = self.qp.num_vars();
        let me = self.qp.a_eq.len();
        let m = me + working.len();
        let cache = self.qp.cache.as_ref().expect("prepared by warm_start");
        // t = H̃⁻¹(−(Hx + g)) = −x − H̃⁻¹g, with H̃⁻¹g precomputed in
        // `begin` — no Hessian multiply or banded solve per iteration.
        self.ws.t.clear();
        self.ws
            .t
            .extend(x.iter().zip(&self.ws.tg).map(|(&xi, &ti)| -xi - ti));
        sol.clear();
        if m == 0 {
            sol.extend_from_slice(&self.ws.t);
            return Ok(());
        }
        let poisoned = self.ensure_factor(working)?;
        self.ws.cols.clear();
        for r in 0..m {
            self.ws.cols.push(self.gcol(working, r));
        }
        // Schur rhs: C_W·t (sparse dots).
        self.ws.srhs.clear();
        for r in 0..m {
            self.ws
                .srhs
                .push(self.qp.crow(self.ws.cols[r]).dot(&self.ws.t));
        }
        // λ from the incrementally maintained factor, plus one step of
        // iterative refinement against the unfactored Schur entries — same
        // conditioning safeguard as the dense path.
        self.ws.lam.clear();
        self.ws.lam.extend_from_slice(&self.ws.srhs);
        self.ws.factor.solve_in_place(&mut self.ws.lam);
        let correction = self.refine_lambda(m);
        self.ws.refinements += 1;
        // Stability rebuild: a large correction means the up/downdated
        // factor has drifted from the true working block. Rebuild from
        // scratch and re-solve (once per KKT step). A poisoned build
        // rebuilds unconditionally — one refinement pass shrinks the
        // multiplier error but need not reach solver tolerance, and inexact
        // λ makes the step leave the equality manifold.
        if poisoned || correction > REBUILD_TOL * (1.0 + vec_ops::norm_inf(&self.ws.lam)) {
            self.ws.factor.clear();
            self.ensure_factor(working)?;
            self.ws.lam.clear();
            self.ws.lam.extend_from_slice(&self.ws.srhs);
            self.ws.factor.solve_in_place(&mut self.ws.lam);
            self.refine_lambda(m);
            self.ws.refinements += 1;
        }
        // p = t − Y_Rᵀλ, accumulated over contiguous rows of Yᵀ.
        sol.extend_from_slice(&self.ws.t);
        for r in 0..m {
            let lam = self.ws.lam[r];
            if lam != 0.0 {
                let yrow = cache.yt.row(self.ws.cols[r]);
                for (pi, &yi) in sol[..n].iter_mut().zip(yrow) {
                    *pi -= lam * yi;
                }
            }
        }
        sol.extend_from_slice(&self.ws.lam);
        Ok(())
    }

    fn take_refinements(&mut self) -> u64 {
        std::mem::take(&mut self.ws.refinements)
    }

    fn single_pivot(&self) -> bool {
        self.qp.single_pivot
    }

    fn take_factor_stats(&mut self) -> (u64, u64, u64) {
        (
            std::mem::take(&mut self.ws.refactorizations),
            std::mem::take(&mut self.ws.updates),
            std::mem::take(&mut self.ws.downdates),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::QuadraticProgram;

    fn pseudo(seed: &mut u64) -> f64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((seed.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Random SPD block-tridiagonal Hessian plus its dense mirror.
    fn random_h(nb: usize, t: usize, seed: &mut u64) -> (BlockTridiag, Matrix) {
        let mut h = BlockTridiag::new(nb, t);
        for bt in 0..t.saturating_sub(1) {
            for v in h.sub_mut(bt) {
                *v = 0.3 * pseudo(seed);
            }
        }
        for bt in 0..t {
            let d = h.diag_mut(bt);
            for i in 0..nb {
                for j in 0..i {
                    let v = 0.3 * pseudo(seed);
                    d[i * nb + j] = v;
                    d[j * nb + i] = v;
                }
                d[i * nb + i] = 2.0 * nb as f64 + pseudo(seed).abs();
            }
        }
        let n = nb * t;
        let mut dense = Matrix::zeros(n, n);
        for bt in 0..t {
            for i in 0..nb {
                for j in 0..nb {
                    dense[(bt * nb + i, bt * nb + j)] = h.diag(bt)[i * nb + j];
                }
            }
        }
        for bt in 0..t.saturating_sub(1) {
            for i in 0..nb {
                for j in 0..nb {
                    let v = h.sub(bt)[i * nb + j];
                    dense[((bt + 1) * nb + i, bt * nb + j)] = v;
                    dense[(bt * nb + j, (bt + 1) * nb + i)] = v;
                }
            }
        }
        (h, dense)
    }

    /// Builds matched banded/dense problem instances with stage-local
    /// equality rows and bound-style inequalities.
    fn matched_pair(nb: usize, t: usize, seed: &mut u64) -> (BandedQp, QuadraticProgram) {
        let (h, dense) = random_h(nb, t, seed);
        let n = nb * t;
        let g: Vec<f64> = (0..n).map(|_| 3.0 * pseudo(seed)).collect();
        let mut banded = BandedQp::new(h, g.clone()).unwrap();
        let mut densified = QuadraticProgram::new(dense, g).unwrap();
        // One stage-sum equality per stage.
        for bt in 0..t {
            let row = SparseRow::from_entries((0..nb).map(|i| (bt * nb + i, 1.0)).collect());
            let rhs = 0.5 * pseudo(seed);
            let mut dr = vec![0.0; n];
            for &(i, c) in row.entries() {
                dr[i] = c;
            }
            banded = banded.equality(row, rhs);
            densified = densified.equality(dr, rhs);
        }
        // Upper bounds on every variable (loose enough to stay feasible,
        // tight enough that some bind at the optimum).
        for i in 0..n {
            let b = 0.2 + 0.3 * pseudo(seed).abs();
            banded = banded.inequality(SparseRow::from_entries(vec![(i, 1.0)]), b);
            let mut dr = vec![0.0; n];
            dr[i] = 1.0;
            densified = densified.inequality(dr, b);
        }
        (banded, densified)
    }

    #[test]
    fn agrees_with_dense_backend_on_random_problems() {
        let mut seed = 0xdead_beefu64;
        for &(nb, t) in &[(2usize, 2usize), (3, 3), (4, 5)] {
            let (mut banded, densified) = matched_pair(nb, t, &mut seed);
            let mut ws = BandedQpWorkspace::new();
            let sb = banded.solve_with(&mut ws).unwrap();
            let sd = densified.solve().unwrap();
            let denom = 1.0 + sd.objective().abs();
            assert!(
                (sb.objective() - sd.objective()).abs() / denom <= 1e-8,
                "nb={nb} t={t}: banded {} vs dense {}",
                sb.objective(),
                sd.objective()
            );
            for (a, b) in sb.x().iter().zip(sd.x()) {
                assert!((a - b).abs() < 1e-6, "nb={nb} t={t}");
            }
        }
    }

    #[test]
    fn warm_start_replays_dense_active_set() {
        let mut seed = 0x1357u64;
        let (mut banded, densified) = matched_pair(3, 4, &mut seed);
        let dense_sol = densified.solve().unwrap();
        let mut ws = BandedQpWorkspace::new();
        let warm = banded
            .warm_start(dense_sol.x(), dense_sol.active_set(), &mut ws)
            .unwrap();
        assert!((warm.objective() - dense_sol.objective()).abs() < 1e-8);
        assert!(
            warm.iterations() <= 3,
            "warm restart took {}",
            warm.iterations()
        );
        assert_eq!(warm.active_set(), dense_sol.active_set());
    }

    #[test]
    fn workspace_reuse_and_rhs_retargeting() {
        let mut seed = 0x2468u64;
        let (mut banded, mut densified) = matched_pair(2, 3, &mut seed);
        let mut ws = BandedQpWorkspace::new();
        let first = banded.solve_with(&mut ws).unwrap();
        // Retarget gradient and rhs on both, resolve warm from the previous
        // optimum's active set, and compare again.
        let n = banded.num_vars();
        let g2: Vec<f64> = (0..n).map(|_| 2.0 * pseudo(&mut seed)).collect();
        banded.set_gradient(&g2).unwrap();
        densified.set_gradient(&g2).unwrap();
        let eq2: Vec<f64> = (0..3).map(|_| 0.3 * pseudo(&mut seed)).collect();
        banded.set_equality_rhs(&eq2).unwrap();
        densified.set_equality_rhs(&eq2).unwrap();
        let sd = densified.solve().unwrap();
        let sb = banded
            .warm_start(sd.x(), first.active_set(), &mut ws)
            .unwrap();
        assert!((sb.objective() - sd.objective()).abs() / (1.0 + sd.objective().abs()) <= 1e-8);
    }

    #[test]
    fn infeasible_start_and_bad_rows_are_rejected() {
        let (h, _) = random_h(2, 2, &mut 5u64);
        let mut qp = BandedQp::new(h, vec![0.0; 4])
            .unwrap()
            .inequality(SparseRow::from_entries(vec![(0, 1.0)]), 1.0);
        let mut ws = BandedQpWorkspace::new();
        assert!(matches!(
            qp.warm_start(&[5.0, 0.0, 0.0, 0.0], &[], &mut ws),
            Err(Error::Infeasible)
        ));
        assert!(matches!(
            qp.warm_start(&[0.0], &[], &mut ws),
            Err(Error::DimensionMismatch { .. })
        ));
        let (h2, _) = random_h(2, 2, &mut 6u64);
        let mut bad = BandedQp::new(h2, vec![0.0; 4])
            .unwrap()
            .inequality(SparseRow::from_entries(vec![(9, 1.0)]), 1.0);
        assert!(matches!(
            bad.solve_with(&mut ws),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn batched_and_single_pivot_reach_same_optimum() {
        let mut seed = 0xace1u64;
        let (mut batched, _) = matched_pair(3, 4, &mut seed);
        let mut single = batched.clone().single_pivot(true);
        let sb = batched.solve_with(&mut BandedQpWorkspace::new()).unwrap();
        let ss = single.solve_with(&mut BandedQpWorkspace::new()).unwrap();
        assert!(
            (sb.objective() - ss.objective()).abs() / (1.0 + ss.objective().abs()) <= 1e-8,
            "batched {} vs single-pivot {}",
            sb.objective(),
            ss.objective()
        );
        assert!(sb.iterations() <= ss.iterations());
    }

    #[test]
    fn forced_refactorization_triggers_stability_rebuild() {
        let mut seed = 0x97531u64;
        let (mut banded, _) = matched_pair(3, 3, &mut seed);
        let mut ws = BandedQpWorkspace::new();
        let cold = banded.solve_with(&mut ws).unwrap();
        ws.force_refactor_next();
        let poisoned = banded
            .warm_start(cold.x(), cold.active_set(), &mut ws)
            .unwrap();
        assert!(
            (poisoned.objective() - cold.objective()).abs()
                <= 1e-8 * (1.0 + cold.objective().abs())
        );
        // Initial (poisoned) build plus the stability rebuild.
        assert!(
            poisoned.stats().refactorizations >= 2,
            "stats: {:?}",
            poisoned.stats()
        );
    }

    #[test]
    fn unconstrained_banded_qp_is_newton_step() {
        let mut h = BlockTridiag::new(2, 1);
        h.diag_mut(0).copy_from_slice(&[2.0, 0.0, 0.0, 2.0]);
        let mut qp = BandedQp::new(h, vec![-6.0, 2.0]).unwrap();
        let sol = qp.solve_with(&mut BandedQpWorkspace::new()).unwrap();
        assert!((sol.x()[0] - 3.0).abs() < 1e-8);
        assert!((sol.x()[1] + 1.0).abs() < 1e-8);
        assert!(sol.active_set().is_empty());
    }
}
