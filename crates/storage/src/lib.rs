//! Battery/UPS energy storage for distributed IDCs.
//!
//! The paper's only actuator is workload shifting; real IDCs also carry
//! battery/UPS capacity that can be dispatched against price peaks
//! (Dabbagh et al., arXiv:2005.02428). This crate models per-IDC units:
//!
//! * a [`BatteryUnit`] is one IDC's aggregate storage — usable energy
//!   capacity, charge/discharge rate limits and one-way efficiencies
//!   (their product is the round-trip efficiency);
//! * a [`StorageFleet`] is one unit per IDC, in IDC order;
//! * a [`StorageState`] holds the evolving state of charge and applies
//!   the clamped discrete-time dynamics
//!   `soc ← soc + Ts·(η_c·c − d/η_d)`, never letting commanded rates
//!   push the state outside `[0, capacity]`.
//!
//! Grid draw becomes `P_grid = P_IT + c − d`: charging adds load,
//! discharging serves part of the IT load from the battery. The MPC's
//! enlarged decision vector and the demand-charge tariff live elsewhere
//! (`idc-control`, `idc-market`); this crate is the physical model both
//! are checked against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// One IDC's aggregate battery/UPS installation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryUnit {
    /// Usable energy capacity in MWh (0 = no storage at this IDC).
    pub capacity_mwh: f64,
    /// Maximum grid-side charge rate in MW.
    pub max_charge_mw: f64,
    /// Maximum load-side discharge rate in MW.
    pub max_discharge_mw: f64,
    /// Charge efficiency in (0, 1]: MWh stored per grid MWh drawn.
    pub charge_efficiency: f64,
    /// Discharge efficiency in (0, 1]: load MWh served per stored MWh.
    pub discharge_efficiency: f64,
    /// State of charge at the start of a run, in MWh.
    pub initial_soc_mwh: f64,
}

impl BatteryUnit {
    /// Creates a unit, validating capacity/rate non-negativity,
    /// efficiencies in `(0, 1]` and the initial SoC within capacity.
    /// Returns `None` on any violation or non-finite input.
    pub fn new(
        capacity_mwh: f64,
        max_charge_mw: f64,
        max_discharge_mw: f64,
        charge_efficiency: f64,
        discharge_efficiency: f64,
        initial_soc_mwh: f64,
    ) -> Option<Self> {
        let finite = [
            capacity_mwh,
            max_charge_mw,
            max_discharge_mw,
            charge_efficiency,
            discharge_efficiency,
            initial_soc_mwh,
        ]
        .iter()
        .all(|v| v.is_finite());
        let valid = finite
            && capacity_mwh >= 0.0
            && max_charge_mw >= 0.0
            && max_discharge_mw >= 0.0
            && (charge_efficiency > 0.0 && charge_efficiency <= 1.0)
            && (discharge_efficiency > 0.0 && discharge_efficiency <= 1.0)
            && (initial_soc_mwh >= 0.0 && initial_soc_mwh <= capacity_mwh);
        if !valid {
            return None;
        }
        Some(BatteryUnit {
            capacity_mwh,
            max_charge_mw,
            max_discharge_mw,
            charge_efficiency,
            discharge_efficiency,
            initial_soc_mwh,
        })
    }

    /// A unit that can do nothing: zero capacity and zero rates. Runs
    /// configured with it are byte-identical to runs with no storage.
    pub fn inert() -> Self {
        BatteryUnit {
            capacity_mwh: 0.0,
            max_charge_mw: 0.0,
            max_discharge_mw: 0.0,
            charge_efficiency: 1.0,
            discharge_efficiency: 1.0,
            initial_soc_mwh: 0.0,
        }
    }

    /// Round-trip efficiency: load MWh recovered per grid MWh stored.
    pub fn round_trip_efficiency(&self) -> f64 {
        self.charge_efficiency * self.discharge_efficiency
    }

    /// Whether this unit can never move energy (zero capacity or both
    /// rates zero).
    pub fn is_inert(&self) -> bool {
        self.capacity_mwh <= 0.0 || (self.max_charge_mw <= 0.0 && self.max_discharge_mw <= 0.0)
    }
}

/// Per-IDC battery units, in IDC order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageFleet {
    units: Vec<BatteryUnit>,
}

impl StorageFleet {
    /// Creates a fleet from per-IDC units. Returns `None` when empty.
    pub fn new(units: Vec<BatteryUnit>) -> Option<Self> {
        if units.is_empty() {
            return None;
        }
        Some(StorageFleet { units })
    }

    /// `n` identical units.
    pub fn uniform(n: usize, unit: BatteryUnit) -> Option<Self> {
        StorageFleet::new(vec![unit; n])
    }

    /// The per-IDC units.
    pub fn units(&self) -> &[BatteryUnit] {
        &self.units
    }

    /// Number of IDCs covered.
    pub fn num_idcs(&self) -> usize {
        self.units.len()
    }

    /// Whether no unit in the fleet can move energy — such a fleet is
    /// normalized away (treated as "no storage") so zero-capacity
    /// configurations stay byte-identical to storage-free runs.
    pub fn is_inert(&self) -> bool {
        self.units.iter().all(BatteryUnit::is_inert)
    }

    /// Initial per-IDC state of charge (MWh).
    pub fn initial_soc_mwh(&self) -> Vec<f64> {
        self.units.iter().map(|u| u.initial_soc_mwh).collect()
    }
}

/// The result of applying one step of storage dynamics: the rates that
/// were actually feasible after clamping, and the losses incurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedRates {
    /// Grid-side charge rate actually applied (MW).
    pub charge_mw: f64,
    /// Load-side discharge rate actually applied (MW).
    pub discharge_mw: f64,
    /// Energy lost to conversion inefficiency this step (MWh).
    pub loss_mwh: f64,
}

/// The evolving per-IDC state of charge plus the clamped dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageState {
    soc_mwh: Vec<f64>,
    /// Cumulative conversion losses over the run (MWh).
    total_loss_mwh: f64,
}

impl StorageState {
    /// Initial state of a fleet.
    pub fn of(fleet: &StorageFleet) -> Self {
        StorageState {
            soc_mwh: fleet.initial_soc_mwh(),
            total_loss_mwh: 0.0,
        }
    }

    /// Rebuilds a state from a checkpointed per-IDC state of charge.
    /// Returns `None` when the vector length differs from the fleet or any
    /// entry is non-finite or outside its unit's `[0, capacity]`. The loss
    /// accumulator restarts at zero — losses are reporting, not dynamics.
    pub fn with_soc(fleet: &StorageFleet, soc_mwh: Vec<f64>) -> Option<Self> {
        if soc_mwh.len() != fleet.num_idcs() {
            return None;
        }
        for (s, u) in soc_mwh.iter().zip(fleet.units()) {
            if !s.is_finite() || *s < 0.0 || *s > u.capacity_mwh {
                return None;
            }
        }
        Some(StorageState {
            soc_mwh,
            total_loss_mwh: 0.0,
        })
    }

    /// Per-IDC state of charge (MWh).
    pub fn soc_mwh(&self) -> &[f64] {
        &self.soc_mwh
    }

    /// Cumulative conversion losses (MWh) since the initial state.
    pub fn total_loss_mwh(&self) -> f64 {
        self.total_loss_mwh
    }

    /// Applies one sampling period of commanded rates to unit `j`,
    /// clamping so the rates never exceed the unit's limits and the state
    /// of charge never leaves `[0, capacity]`. Returns what was actually
    /// applied. Deterministic: clamp order is rate limits first, then
    /// energy headroom (charge), then available energy (discharge).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range for the fleet this state was built
    /// from.
    pub fn apply(
        &mut self,
        fleet: &StorageFleet,
        j: usize,
        charge_mw: f64,
        discharge_mw: f64,
        ts_hours: f64,
    ) -> AppliedRates {
        let unit = &fleet.units()[j];
        let soc = self.soc_mwh[j];
        // Rate limits (commands may be slightly negative from solver
        // round-off; clamp to physical range).
        let mut c = charge_mw.max(0.0).min(unit.max_charge_mw);
        let mut d = discharge_mw.max(0.0).min(unit.max_discharge_mw);
        // Energy headroom: stored energy gained is η_c·c·Ts.
        let headroom = (unit.capacity_mwh - soc).max(0.0);
        if unit.charge_efficiency * c * ts_hours > headroom {
            c = headroom / (unit.charge_efficiency * ts_hours);
        }
        // Available energy: stored energy spent is d·Ts/η_d.
        if d * ts_hours / unit.discharge_efficiency > soc {
            d = soc * unit.discharge_efficiency / ts_hours;
        }
        let delta = unit.charge_efficiency * c * ts_hours - d * ts_hours / unit.discharge_efficiency;
        self.soc_mwh[j] = (soc + delta).clamp(0.0, unit.capacity_mwh);
        // Losses: grid energy in minus stored gain, plus stored spend
        // minus load energy out.
        let loss = (1.0 - unit.charge_efficiency) * c * ts_hours
            + d * ts_hours * (1.0 / unit.discharge_efficiency - 1.0);
        self.total_loss_mwh += loss;
        AppliedRates {
            charge_mw: c,
            discharge_mw: d,
            loss_mwh: loss,
        }
    }
}

/// The standard test battery used by the storage scenarios: 4 MWh usable
/// at up to 2 MW either way, 95 % one-way efficiency (≈ 90 % round trip),
/// starting half charged. Sized to matter against the paper's 5–11 MW
/// IDCs without dominating them.
pub fn paper_test_battery() -> BatteryUnit {
    BatteryUnit::new(4.0, 2.0, 2.0, 0.95, 0.95, 2.0).expect("valid test battery")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_units() {
        assert!(BatteryUnit::new(-1.0, 1.0, 1.0, 0.9, 0.9, 0.0).is_none());
        assert!(BatteryUnit::new(1.0, -1.0, 1.0, 0.9, 0.9, 0.0).is_none());
        assert!(BatteryUnit::new(1.0, 1.0, 1.0, 0.0, 0.9, 0.0).is_none());
        assert!(BatteryUnit::new(1.0, 1.0, 1.0, 0.9, 1.1, 0.0).is_none());
        assert!(BatteryUnit::new(1.0, 1.0, 1.0, 0.9, 0.9, 2.0).is_none());
        assert!(BatteryUnit::new(f64::NAN, 1.0, 1.0, 0.9, 0.9, 0.0).is_none());
        assert!(BatteryUnit::new(1.0, 1.0, 1.0, 0.9, 0.9, 1.0).is_some());
    }

    #[test]
    fn inert_detection() {
        assert!(BatteryUnit::inert().is_inert());
        assert!(BatteryUnit::new(0.0, 5.0, 5.0, 0.9, 0.9, 0.0)
            .unwrap()
            .is_inert());
        assert!(BatteryUnit::new(5.0, 0.0, 0.0, 0.9, 0.9, 1.0)
            .unwrap()
            .is_inert());
        assert!(!paper_test_battery().is_inert());
        let fleet = StorageFleet::uniform(3, BatteryUnit::inert()).unwrap();
        assert!(fleet.is_inert());
        let mixed = StorageFleet::new(vec![BatteryUnit::inert(), paper_test_battery()]).unwrap();
        assert!(!mixed.is_inert());
    }

    #[test]
    fn round_trip_efficiency_is_product() {
        let u = paper_test_battery();
        assert!((u.round_trip_efficiency() - 0.9025).abs() < 1e-12);
    }

    #[test]
    fn dynamics_conserve_energy_with_losses() {
        let fleet = StorageFleet::uniform(1, paper_test_battery()).unwrap();
        let mut state = StorageState::of(&fleet);
        let ts = 0.5;
        let applied = state.apply(&fleet, 0, 1.0, 0.0, ts);
        assert_eq!(applied.charge_mw, 1.0);
        // SoC gained η_c·c·Ts = 0.95·1.0·0.5.
        assert!((state.soc_mwh()[0] - (2.0 + 0.475)).abs() < 1e-12);
        // Loss is the 5 % conversion shortfall.
        assert!((applied.loss_mwh - 0.025).abs() < 1e-12);

        let applied = state.apply(&fleet, 0, 0.0, 1.0, ts);
        assert_eq!(applied.discharge_mw, 1.0);
        // SoC spent d·Ts/η_d.
        assert!((state.soc_mwh()[0] - (2.475 - 0.5 / 0.95)).abs() < 1e-12);
        assert!(applied.loss_mwh > 0.0);
    }

    #[test]
    fn dynamics_clamp_at_capacity_and_empty() {
        let fleet = StorageFleet::uniform(1, paper_test_battery()).unwrap();
        let mut state = StorageState::of(&fleet);
        // Massive charge command: clamped to the 2 MW rate limit first,
        // then to the 2 MWh headroom.
        let applied = state.apply(&fleet, 0, 100.0, 0.0, 2.0);
        assert!(applied.charge_mw <= 2.0 + 1e-12);
        assert!((state.soc_mwh()[0] - 4.0).abs() < 1e-9);
        // Full battery: further charge is a no-op.
        let applied = state.apply(&fleet, 0, 1.0, 0.0, 1.0);
        assert!(applied.charge_mw.abs() < 1e-12);
        // Drain beyond the stored energy: clamped at empty.
        for _ in 0..10 {
            state.apply(&fleet, 0, 0.0, 2.0, 1.0);
        }
        assert!(state.soc_mwh()[0].abs() < 1e-9);
        let applied = state.apply(&fleet, 0, 0.0, 2.0, 1.0);
        assert!(applied.discharge_mw.abs() < 1e-12);
    }

    #[test]
    fn negative_commands_are_clamped_to_zero() {
        let fleet = StorageFleet::uniform(1, paper_test_battery()).unwrap();
        let mut state = StorageState::of(&fleet);
        let before = state.soc_mwh()[0];
        let applied = state.apply(&fleet, 0, -1.0, -1.0, 0.5);
        assert_eq!(applied.charge_mw, 0.0);
        assert_eq!(applied.discharge_mw, 0.0);
        assert_eq!(state.soc_mwh()[0], before);
    }
}
