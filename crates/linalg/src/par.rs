//! Deterministic scoped-thread parallel helpers.
//!
//! Every helper here guarantees **bitwise reproducibility across thread
//! counts**: work is split into fixed-size chunks whose outputs depend only
//! on their own input slice (plus shared read-only data), and the
//! chunk-to-thread assignment is a static contiguous partition. Each chunk
//! therefore performs the identical sequence of floating-point operations
//! whether it runs on one thread or sixteen, so `threads = 1` and
//! `threads = k` produce byte-identical results — the property the MPC
//! checkpoint/restore and lockstep backend-agreement gates rely on.

use crate::gemm::{gemm_ws, MR};
use crate::workspace::Workspace;

/// Worker threads to use for parallel factorizations.
///
/// Reads `IDC_LINALG_THREADS` when set (clamped to `[1, 64]`), otherwise the
/// machine's available parallelism. Falls back to 1 when neither is known.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("IDC_LINALG_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, 64);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(64))
        .unwrap_or(1)
}

/// Processes `data` in contiguous chunks of `chunk` elements on up to
/// `threads` scoped threads, calling `f(chunk_index, chunk_slice)` for each.
///
/// Chunks are assigned to threads as a static contiguous partition, so the
/// result is bitwise independent of `threads`. The final chunk may be
/// shorter than `chunk`.
///
/// # Panics
///
/// Panics if `chunk == 0` while `data` is non-empty.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk > 0, "zero chunk size");
    let nchunks = data.len().div_ceil(chunk);
    if threads <= 1 || nchunks <= 1 {
        for (idx, c) in data.chunks_mut(chunk).enumerate() {
            f(idx, c);
        }
        return;
    }
    let threads = threads.min(nchunks);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        for tid in 0..threads {
            let lo = tid * nchunks / threads;
            let hi = (tid + 1) * nchunks / threads;
            let elems = ((hi - lo) * chunk).min(rest.len());
            let (mine, tail) = rest.split_at_mut(elems);
            rest = tail;
            scope.spawn(move || {
                for (k, c) in mine.chunks_mut(chunk).enumerate() {
                    f(lo + k, c);
                }
            });
        }
    });
}

/// Row-parallel [`gemm_ws`]: `C ← α·A·B + β·C` with the rows of `C` (and
/// `A`) split across up to `threads` scoped threads.
///
/// Row bands are aligned to the microkernel tile height [`MR`], so the packed
/// panels — and therefore every floating-point operation — are identical to a
/// single-threaded [`gemm_ws`] call: the output is bitwise independent of
/// `threads`.
#[allow(clippy::too_many_arguments)]
pub fn par_gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    threads: usize,
    ws: &mut Workspace,
) {
    let band = m.div_ceil(threads.max(1)).div_ceil(MR) * MR;
    if threads <= 1 || band >= m {
        gemm_ws(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, ws);
        return;
    }
    // Row band i covers rows [i·band, min((i+1)·band, m)). The `c` slice for
    // a band must stay within the caller's buffer: trailing bands may be
    // ragged, so slice lengths are clamped against `c.len()`.
    let nbands = m.div_ceil(band);
    std::thread::scope(|scope| {
        let mut crest = &mut c[..];
        for bi in 0..nbands {
            let r0 = bi * band;
            let rows = band.min(m - r0);
            let celems = if bi + 1 == nbands {
                crest.len()
            } else {
                rows * ldc
            };
            let (cband, ctail) = crest.split_at_mut(celems);
            crest = ctail;
            let aband = &a[r0 * lda..];
            scope.spawn(move || {
                let mut local = Workspace::new();
                gemm_ws(
                    rows, n, k, alpha, aband, lda, b, ldb, beta, cband, ldc, &mut local,
                );
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_visits_every_chunk_once() {
        for threads in [1, 2, 3, 8] {
            let mut data: Vec<u64> = vec![0; 37];
            par_chunks_mut(&mut data, 5, threads, |idx, c| {
                for v in c.iter_mut() {
                    *v += 1 + idx as u64;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, 1 + (i / 5) as u64, "threads={threads} i={i}");
            }
        }
    }

    #[test]
    fn par_gemm_is_bitwise_independent_of_threads() {
        let mut seed = 0x1234_5678u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            ((seed.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let (m, n, k) = (23, 17, 9);
        let a: Vec<f64> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| next()).collect();
        let base: Vec<f64> = (0..m * n).map(|_| next()).collect();
        let mut ws = Workspace::new();
        let mut serial = base.clone();
        gemm_ws(m, n, k, 1.5, &a, k, &b, n, 0.5, &mut serial, n, &mut ws);
        for threads in [1, 2, 3, 7] {
            let mut c = base.clone();
            par_gemm(m, n, k, 1.5, &a, k, &b, n, 0.5, &mut c, n, threads, &mut ws);
            assert_eq!(c, serial, "threads={threads}");
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
