use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::{Error, Result};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse of the workspace: the MPC prediction matrices
/// `Θ` and `Ξ`, the state-space quadruple `(A, B, F, W)` and every KKT system
/// assembled by the optimizers are instances of this type.
///
/// # Example
///
/// ```
/// use idc_linalg::Matrix;
///
/// # fn main() -> Result<(), idc_linalg::Error> {
/// let a = Matrix::identity(2);
/// let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let c = (&a * &b)?;
/// assert_eq!(c, b);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on the main diagonal.
    pub fn diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadLength`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::BadLength {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Jagged`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(Error::Jagged);
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(i, j)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a single-column matrix from a vector.
    pub fn column(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Creates a single-row matrix from a vector.
    pub fn row_matrix(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(Error::DimensionMismatch {
                op: "mul_vec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Transposed matrix–vector product `selfᵀ * v` without forming the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `v.len() != self.rows()`.
    pub fn tr_mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(Error::DimensionMismatch {
                op: "tr_mul_vec",
                lhs: (self.cols, self.rows),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            let vi = v[i];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * vi;
            }
        }
        Ok(out)
    }

    /// Reshapes `self` to `rows × cols` with every entry zero, reusing the
    /// existing allocation when its capacity suffices.
    ///
    /// This is the entry point for workspace reuse: hot loops keep one
    /// `Matrix` alive and `resize_zeroed` it each iteration instead of
    /// constructing a fresh [`Matrix::zeros`].
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an exact copy of `other`, reusing the allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Returns `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the inner dimensions disagree.
    pub fn mul_mat(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.mul_mat_into(other, &mut out)?;
        Ok(out)
    }

    /// Writes `self * other` into `out`, reusing `out`'s allocation.
    ///
    /// The kernel is a blocked row-major i-k-j loop: the shared dimension
    /// and the output columns are tiled so the active rows of `other` and
    /// `out` stay cache-resident while a tile is swept, which is what makes
    /// the large condensed-MPC products scale past L2.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the inner dimensions disagree.
    pub fn mul_mat_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(Error::DimensionMismatch {
                op: "mul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        // Tile sizes: KB rows of `other` (each up to JB wide) ≈ 128 KiB,
        // comfortably within L2 alongside the output tile.
        const KB: usize = 64;
        const JB: usize = 256;
        out.resize_zeroed(self.rows, other.cols);
        for k0 in (0..self.cols).step_by(KB) {
            let k1 = (k0 + KB).min(self.cols);
            for j0 in (0..other.cols).step_by(JB) {
                let j1 = (j0 + JB).min(other.cols);
                for i in 0..self.rows {
                    let arow = &self.row(i)[k0..k1];
                    let dest = &mut out.row_mut(i)[j0..j1];
                    for (dk, &aik) in arow.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &other.row(k0 + dk)[j0..j1];
                        for (d, &b) in dest.iter_mut().zip(brow) {
                            *d += aik * b;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Returns `self * otherᵀ` without forming the transpose.
    ///
    /// Both operands are traversed row-wise (each output entry is a dot
    /// product of two rows), so this is the cache-friendly way to multiply
    /// by a matrix that is conceptually transposed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.cols() != other.cols()`.
    pub fn mul_mat_transpose(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.mul_mat_transpose_into(other, &mut out)?;
        Ok(out)
    }

    /// Writes `self * otherᵀ` into `out`, reusing `out`'s allocation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.cols() != other.cols()`.
    pub fn mul_mat_transpose_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.cols {
            return Err(Error::DimensionMismatch {
                op: "mul_t",
                lhs: self.shape(),
                rhs: (other.cols, other.rows),
            });
        }
        out.resize_zeroed(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            let dest = out.row_mut(i);
            for (j, d) in dest.iter_mut().enumerate() {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *d = acc;
            }
        }
        Ok(())
    }

    /// Writes `self * v` into `out`, reusing `out`'s allocation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if v.len() != self.cols {
            return Err(Error::DimensionMismatch {
                op: "mul_vec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        out.clear();
        out.resize(self.rows, 0.0);
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *o = acc;
        }
        Ok(())
    }

    /// Writes `selfᵀ * v` into `out`, reusing `out`'s allocation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `v.len() != self.rows()`.
    pub fn tr_mul_vec_into(&self, v: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if v.len() != self.rows {
            return Err(Error::DimensionMismatch {
                op: "tr_mul_vec",
                lhs: (self.cols, self.rows),
                rhs: (v.len(), 1),
            });
        }
        out.clear();
        out.resize(self.cols, 0.0);
        for i in 0..self.rows {
            let row = self.row(i);
            let vi = v[i];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * vi;
            }
        }
        Ok(())
    }

    /// Returns `selfᵀ * other` without forming the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.rows() != other.rows()`.
    pub fn tr_mul_mat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(Error::DimensionMismatch {
                op: "tr_mul",
                lhs: (self.cols, self.rows),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &aki) in arow.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let dest = out.row_mut(i);
                for (d, &b) in dest.iter_mut().zip(brow) {
                    *d += aki * b;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise map, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place `self += s * other`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if shapes disagree.
    pub fn scaled_add_assign(&mut self, s: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(Error::DimensionMismatch {
                op: "scaled_add",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
        Ok(())
    }

    /// Writes `block` into `self` with its upper-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block {}x{} at ({r0},{c0}) does not fit in {}x{}",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }

    /// Copy of the sub-matrix of shape `(nr, nc)` rooted at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "block {nr}x{nc} at ({r0},{c0}) exceeds {}x{}",
            self.rows,
            self.cols
        );
        Matrix::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Stacks `top` above `bottom`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the column counts differ.
    pub fn vstack(top: &Matrix, bottom: &Matrix) -> Result<Matrix> {
        if top.cols != bottom.cols {
            return Err(Error::DimensionMismatch {
                op: "vstack",
                lhs: top.shape(),
                rhs: bottom.shape(),
            });
        }
        let mut data = Vec::with_capacity(top.data.len() + bottom.data.len());
        data.extend_from_slice(&top.data);
        data.extend_from_slice(&bottom.data);
        Ok(Matrix {
            rows: top.rows + bottom.rows,
            cols: top.cols,
            data,
        })
    }

    /// Places `left` and `right` side by side.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the row counts differ.
    pub fn hstack(left: &Matrix, right: &Matrix) -> Result<Matrix> {
        if left.rows != right.rows {
            return Err(Error::DimensionMismatch {
                op: "hstack",
                lhs: left.shape(),
                rhs: right.shape(),
            });
        }
        let mut out = Matrix::zeros(left.rows, left.cols + right.cols);
        for i in 0..left.rows {
            out.row_mut(i)[..left.cols].copy_from_slice(left.row(i));
            out.row_mut(i)[left.cols..].copy_from_slice(right.row(i));
        }
        Ok(out)
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (first, second) = self.data.split_at_mut(hi * self.cols);
        first[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut second[..self.cols]);
    }

    /// Sum of the diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Induced 1-norm (maximum absolute column sum); used by the Padé
    /// exponential's scaling heuristic.
    pub fn norm_1(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Induced ∞-norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Largest absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Numerical rank via Gaussian elimination with partial pivoting.
    ///
    /// Entries whose pivot magnitude falls below
    /// `tol * max(rows, cols) * norm_max` are treated as zero. Pass
    /// `f64::EPSILON` for a LAPACK-like default.
    pub fn rank(&self, tol: f64) -> usize {
        let mut m = self.clone();
        let threshold = tol * self.rows.max(self.cols) as f64 * self.norm_max().max(1e-300);
        let mut rank = 0;
        let mut row = 0;
        for col in 0..m.cols {
            if row >= m.rows {
                break;
            }
            // Find pivot.
            let (pivot_row, pivot_val) = (row..m.rows)
                .map(|i| (i, m[(i, col)].abs()))
                .fold((row, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
            if pivot_val <= threshold {
                continue;
            }
            m.swap_rows(row, pivot_row);
            let pivot = m[(row, col)];
            for i in (row + 1)..m.rows {
                let factor = m[(i, col)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..m.cols {
                    let v = m[(row, j)];
                    m[(i, j)] -= factor * v;
                }
            }
            rank += 1;
            row += 1;
        }
        rank
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>10.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Result<Matrix>;

    fn add(self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(out)
    }
}

impl Sub for &Matrix {
    type Output = Result<Matrix>;

    fn sub(self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
        Ok(out)
    }
}

impl Mul for &Matrix {
    type Output = Result<Matrix>;

    fn mul(self, rhs: &Matrix) -> Result<Matrix> {
        self.mul_mat(rhs)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::identity(4).trace(), 4.0);
        assert_eq!(Matrix::diag(&[1.0, 2.0])[(1, 1)], 2.0);
        assert_eq!(Matrix::column(&[1.0, 2.0, 3.0]).shape(), (3, 1));
        assert_eq!(Matrix::row_matrix(&[1.0, 2.0, 3.0]).shape(), (1, 3));
        assert_eq!(Matrix::filled(2, 2, 7.0)[(0, 1)], 7.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0]),
            Err(Error::BadLength {
                expected: 4,
                actual: 1
            })
        ));
    }

    #[test]
    fn from_rows_rejects_jagged_input() {
        let a: &[f64] = &[1.0, 2.0];
        let b: &[f64] = &[3.0];
        assert!(matches!(Matrix::from_rows(&[a, b]), Err(Error::Jagged)));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.mul_mat(&b).unwrap();
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mul_mat(&b).is_err());
    }

    #[test]
    fn blocked_matmul_matches_naive_across_tile_boundaries() {
        // Shapes straddling the KB=64 / JB=256 tile edges exercise every
        // partial-tile path in the blocked kernel.
        for &(m, k, n) in &[(1, 1, 1), (3, 64, 256), (5, 65, 257), (70, 130, 300)] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j) % 13) as f64 - 6.0);
            let fast = a.mul_mat(&b).unwrap();
            let mut naive = Matrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc += a[(i, p)] * b[(p, j)];
                    }
                    naive[(i, j)] = acc;
                }
            }
            assert_eq!(fast, naive, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn mul_mat_into_reuses_dirty_buffers() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        // Wrong shape and stale contents: must be fully overwritten.
        let mut out = Matrix::filled(5, 7, f64::NAN);
        a.mul_mat_into(&b, &mut out).unwrap();
        assert_eq!(out, m22(19.0, 22.0, 43.0, 50.0));
        // Second use reuses the allocation and still gets the right answer.
        a.mul_mat_into(&a, &mut out).unwrap();
        assert_eq!(out, m22(7.0, 10.0, 15.0, 22.0));
        assert!(a.mul_mat_into(&Matrix::zeros(3, 2), &mut out).is_err());
    }

    #[test]
    fn mul_mat_transpose_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f64 * 0.25 - 2.0);
        let b = Matrix::from_fn(5, 6, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let fast = a.mul_mat_transpose(&b).unwrap();
        let slow = a.mul_mat(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
        let mut out = Matrix::filled(1, 1, f64::NAN);
        a.mul_mat_transpose_into(&b, &mut out).unwrap();
        assert_eq!(out, slow);
        assert!(a.mul_mat_transpose(&Matrix::zeros(5, 7)).is_err());
    }

    #[test]
    fn vec_into_variants_match_allocating_versions() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + 3 * j) as f64);
        let v3 = [1.0, -1.0, 2.0];
        let v2 = [0.5, -2.0];
        let mut out = vec![f64::NAN; 9];
        a.mul_vec_into(&v2, &mut out).unwrap();
        assert_eq!(out, a.mul_vec(&v2).unwrap());
        a.tr_mul_vec_into(&v3, &mut out).unwrap();
        assert_eq!(out, a.tr_mul_vec(&v3).unwrap());
        assert!(a.mul_vec_into(&v3, &mut out).is_err());
        assert!(a.tr_mul_vec_into(&v2, &mut out).is_err());
    }

    #[test]
    fn resize_zeroed_clears_and_reshapes() {
        let mut m = m22(1.0, 2.0, 3.0, 4.0);
        m.resize_zeroed(1, 3);
        assert_eq!(m, Matrix::zeros(1, 3));
        m.resize_zeroed(3, 3);
        assert_eq!(m, Matrix::zeros(3, 3));
    }

    #[test]
    fn tr_mul_equals_explicit_transpose_product() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let b = Matrix::from_fn(3, 4, |i, j| (i + j) as f64 * 0.5);
        let fast = a.tr_mul_mat(&b).unwrap();
        let slow = a.transpose().mul_mat(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn tr_mul_vec_equals_explicit_transpose_product() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + 3 * j) as f64);
        let v = [1.0, -1.0, 2.0];
        let fast = a.tr_mul_vec(&v).unwrap();
        let slow = a.transpose().mul_vec(&v).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn stacking_roundtrips_through_blocks() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let v = Matrix::vstack(&a, &b).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.block(2, 0, 2, 2), b);
        let h = Matrix::hstack(&a, &b).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.block(0, 2, 2, 2), b);
    }

    #[test]
    fn stacking_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(Matrix::vstack(&a, &b).is_err());
        let c = Matrix::zeros(3, 2);
        assert!(Matrix::hstack(&a, &c).is_err());
    }

    #[test]
    fn set_block_writes_in_place() {
        let mut big = Matrix::zeros(3, 3);
        big.set_block(1, 1, &m22(1.0, 2.0, 3.0, 4.0));
        assert_eq!(big[(1, 1)], 1.0);
        assert_eq!(big[(2, 2)], 4.0);
        assert_eq!(big[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn set_block_panics_when_out_of_bounds() {
        let mut big = Matrix::zeros(2, 2);
        big.set_block(1, 1, &m22(1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = m22(1.0, 2.0, 3.0, 4.0);
        a.swap_rows(0, 1);
        assert_eq!(a, m22(3.0, 4.0, 1.0, 2.0));
        a.swap_rows(1, 1); // no-op
        assert_eq!(a, m22(3.0, 4.0, 1.0, 2.0));
    }

    #[test]
    fn norms_match_hand_computation() {
        let a = m22(1.0, -2.0, -3.0, 4.0);
        assert_eq!(a.norm_1(), 6.0); // col 1: |−2|+4 = 6
        assert_eq!(a.norm_inf(), 7.0); // row 1: 3+4 = 7
        assert_eq!(a.norm_max(), 4.0);
        assert!((a.norm_fro() - 30.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn rank_detects_deficiency() {
        let full = m22(1.0, 2.0, 3.0, 4.0);
        assert_eq!(full.rank(f64::EPSILON), 2);
        let deficient = m22(1.0, 2.0, 2.0, 4.0);
        assert_eq!(deficient.rank(f64::EPSILON), 1);
        assert_eq!(Matrix::zeros(3, 3).rank(f64::EPSILON), 0);
        let rect = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).unwrap();
        assert_eq!(rect.rank(f64::EPSILON), 2);
    }

    #[test]
    fn arithmetic_operators_work() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!((&a + &b).unwrap(), Matrix::filled(2, 2, 5.0));
        assert_eq!((&a - &a).unwrap(), Matrix::zeros(2, 2));
        assert_eq!(&a * 2.0, m22(2.0, 4.0, 6.0, 8.0));
        assert_eq!(-&a, m22(-1.0, -2.0, -3.0, -4.0));
        assert!((&a + &Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn scaled_add_assign_accumulates() {
        let mut a = m22(1.0, 2.0, 3.0, 4.0);
        let b = Matrix::identity(2);
        a.scaled_add_assign(10.0, &b).unwrap();
        assert_eq!(a, m22(11.0, 2.0, 3.0, 14.0));
        assert!(a.scaled_add_assign(1.0, &Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn debug_output_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(s.contains("Matrix 1x1"));
    }
}
