//! LU factorization with partial pivoting.
//!
//! This is the primary square-system solver of the workspace: the active-set
//! QP solver factors its KKT systems with it, and the Padé matrix
//! exponential uses it for its final rational solve.

use crate::{Error, Matrix, Result};

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// # Example
///
/// ```
/// use idc_linalg::{Matrix, lu::Lu};
///
/// # fn main() -> Result<(), idc_linalg::Error> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper, on/above diagonal).
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `piv[i]` of `A`.
    piv: Vec<usize>,
    /// +1.0 or −1.0 depending on the permutation parity.
    sign: f64,
    /// Scratch copy of the pivot row's tail during elimination.
    prow: Vec<f64>,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] if `a` is rectangular.
    /// * [`Error::Singular`] if a pivot underflows working precision.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let mut lu = Lu::empty();
        lu.refactor(a)?;
        Ok(lu)
    }

    /// An empty factorization to be filled by [`Lu::refactor`].
    ///
    /// Useful as the initial state of a reusable workspace; calling
    /// [`Lu::solve`] on it only accepts zero-length right-hand sides.
    pub fn empty() -> Self {
        Lu {
            lu: Matrix::zeros(0, 0),
            piv: Vec::new(),
            sign: 1.0,
            prow: Vec::new(),
        }
    }

    /// Factors `a`, reusing this factorization's buffers.
    ///
    /// This is the allocation-free path for hot loops that factor a
    /// same-sized matrix over and over (the QP solver's per-iteration KKT
    /// systems): after the first call, subsequent `refactor`s of matrices
    /// of equal or smaller dimension allocate nothing.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] if `a` is rectangular.
    /// * [`Error::Singular`] if a pivot underflows working precision; the
    ///   factorization is left unusable until the next successful
    ///   `refactor`.
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let lu = &mut self.lu;
        lu.copy_from(a);
        self.piv.clear();
        self.piv.extend(0..n);
        self.sign = 1.0;
        let scale = lu.norm_max().max(1e-300);

        for k in 0..n {
            // Partial pivoting: bring the largest |entry| in column k to row k.
            let (p, pmag) = (k..n)
                .map(|i| (i, lu[(i, k)].abs()))
                .fold((k, -1.0), |acc, x| if x.1 > acc.1 { x } else { acc });
            if pmag <= f64::EPSILON * n as f64 * scale {
                return Err(Error::Singular);
            }
            if p != k {
                lu.swap_rows(k, p);
                self.piv.swap(k, p);
                self.sign = -self.sign;
            }
            let pivot = lu[(k, k)];
            // Eliminate on contiguous row tails: copying the pivot row's
            // tail out once per column lets the update run on two plain
            // slices, which the compiler vectorizes — the difference
            // between ~1 and ~8 flops per cycle on a dense factor.
            self.prow.clear();
            self.prow.extend_from_slice(&lu.row(k)[k + 1..]);
            for i in (k + 1)..n {
                let row = &mut lu.row_mut(i)[k..];
                let factor = row[0] / pivot;
                row[0] = factor;
                if factor == 0.0 {
                    continue;
                }
                for (v, &u) in row[1..].iter_mut().zip(&self.prow) {
                    *v -= factor * u;
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len()` differs from the
    /// factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::with_capacity(self.dim());
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b`, writing the solution into `x` and reusing its
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len()` differs from the
    /// factored dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation.
        x.clear();
        x.extend(self.piv.iter().map(|&p| b[p]));
        // Forward substitution with unit-lower L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.rows()` differs from the
    /// factored dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Explicit inverse. Prefer [`Lu::solve`] when only a solve is needed.
    ///
    /// # Errors
    ///
    /// Propagates solve failures (cannot occur for a successfully factored
    /// matrix, but the signature stays fallible for uniformity).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// One-shot convenience: solves `A x = b` by factoring `a`.
///
/// # Errors
///
/// Same failure modes as [`Lu::factor`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops;

    #[test]
    fn solves_known_system() {
        let a =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        let x = solve(&a, &[1.0, -2.0, 0.0]).unwrap();
        assert!(vec_ops::approx_eq(&x, &[1.0, -2.0, -2.0], 1e-12));
    }

    #[test]
    fn residual_is_tiny_for_random_like_system() {
        let n = 12;
        // Deterministic pseudo-random fill.
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 37 + j * 101 + 13) % 97) as f64 / 97.0 - 0.5;
            if i == j {
                v + 3.0
            } else {
                v
            }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve(&a, &b).unwrap();
        let r = vec_ops::sub(&a.mul_vec(&x).unwrap(), &b);
        assert!(vec_ops::norm_inf(&r) < 1e-10, "residual {r:?}");
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(Error::Singular)));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Lu::factor(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { shape: (2, 3) })
        ));
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((Lu::factor(&a).unwrap().det() + 2.0).abs() < 1e-14);
        let i = Matrix::identity(5);
        assert!((Lu::factor(&i).unwrap().det() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        let err = (&prod - &Matrix::identity(2)).unwrap().norm_max();
        assert!(err < 1e-13);
    }

    #[test]
    fn solve_matrix_solves_multiple_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]).unwrap();
        let x = Lu::factor(&a).unwrap().solve_matrix(&b).unwrap();
        assert_eq!(x, Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap());
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(vec_ops::approx_eq(&x, &[3.0, 2.0], 1e-15));
    }

    #[test]
    fn refactor_reuses_workspace_across_systems() {
        let mut ws = Lu::empty();
        assert_eq!(ws.dim(), 0);
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        ws.refactor(&a).unwrap();
        let mut x = Vec::new();
        ws.solve_into(&[3.0, 5.0], &mut x).unwrap();
        assert!(vec_ops::approx_eq(&x, &[0.8, 1.4], 1e-12));

        // Different size, same workspace; result must match a fresh factor.
        let b =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        ws.refactor(&b).unwrap();
        ws.solve_into(&[1.0, -2.0, 0.0], &mut x).unwrap();
        assert!(vec_ops::approx_eq(&x, &[1.0, -2.0, -2.0], 1e-12));
        assert!((ws.det() - Lu::factor(&b).unwrap().det()).abs() < 1e-12);
    }

    #[test]
    fn refactor_recovers_after_singular_input() {
        let mut ws = Lu::empty();
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(ws.refactor(&singular), Err(Error::Singular)));
        // The workspace is reusable after a failed factorization.
        let good = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        ws.refactor(&good).unwrap();
        let x = ws.solve(&[2.0, 3.0]).unwrap();
        assert!(vec_ops::approx_eq(&x, &[3.0, 2.0], 1e-15));
    }
}
