//! Small-matrix blocked GEMM with packed panels and a SIMD microkernel.
//!
//! The banded MPC backend factors many small (`c × c`, `c ≤ ~32`) blocks per
//! step, which is exactly the regime where a register-blocked microkernel with
//! packed operands beats the naive triple loop: the 4×8 tile keeps eight
//! accumulators live across the full `k` loop and streams both operands from
//! contiguous panels.
//!
//! Two kernels are provided and selected once at runtime:
//!
//! * an AVX2+FMA kernel (`f64x4` broadcasts against two 4-lane columns), and
//! * a portable register-blocked fallback the autovectorizer handles well.
//!
//! Matrices are row-major with an explicit leading dimension, so callers can
//! multiply sub-blocks of larger buffers without copying. Edge tiles are
//! zero-padded during packing and written back partially, so arbitrary shapes
//! (including non-multiples of the 4×8 tile) are supported.

use crate::workspace::Workspace;

/// Rows per microkernel tile.
pub const MR: usize = 4;
/// Columns per microkernel tile.
pub const NR: usize = 8;

/// `C ← α·A·B + β·C` on row-major slices with explicit leading dimensions.
///
/// `a` is `m×k` with leading dimension `lda`, `b` is `k×n` with leading
/// dimension `ldb`, `c` is `m×n` with leading dimension `ldc`. When `beta`
/// is exactly zero, `c` is overwritten without being read (so it may contain
/// garbage, matching BLAS semantics).
///
/// Packing buffers are drawn from (and returned to) `ws`, so repeated calls
/// against a long-lived workspace are allocation-free.
///
/// # Panics
///
/// Panics if a slice is too short for its stated shape or if a leading
/// dimension is smaller than the row width.
pub fn gemm_ws(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    ws: &mut Workspace,
) {
    check_operand("a", m, k, lda, a.len());
    check_operand("b", k, n, ldb, b.len());
    check_operand("c", m, n, ldc, c.len());
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_c(m, n, beta, c, ldc);
        return;
    }

    let m_tiles = m.div_ceil(MR);
    let n_tiles = n.div_ceil(NR);
    let mut apack = ws.take(m_tiles * MR * k);
    let mut bpack = ws.take(n_tiles * NR * k);
    pack_a(m, k, a, lda, &mut apack);
    pack_b(k, n, b, ldb, &mut bpack);

    let use_avx2 = avx2_available();
    let mut acc = [0.0f64; MR * NR];
    for it in 0..m_tiles {
        let i0 = it * MR;
        let mr = MR.min(m - i0);
        let ap = &apack[it * MR * k..(it + 1) * MR * k];
        for jt in 0..n_tiles {
            let j0 = jt * NR;
            let nr = NR.min(n - j0);
            let bp = &bpack[jt * NR * k..(jt + 1) * NR * k];
            if use_avx2 {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: AVX2+FMA availability was checked at runtime.
                unsafe {
                    avx2::kernel_4x8(k, ap, bp, &mut acc);
                }
                #[cfg(not(target_arch = "x86_64"))]
                kernel_4x8_portable(k, ap, bp, &mut acc);
            } else {
                kernel_4x8_portable(k, ap, bp, &mut acc);
            }
            write_back(&acc, alpha, beta, c, ldc, i0, j0, mr, nr);
        }
    }

    ws.put(apack);
    ws.put(bpack);
}

/// Convenience wrapper around [`gemm_ws`] that uses a throwaway workspace.
///
/// Prefer [`gemm_ws`] in hot paths; this variant allocates its packing
/// buffers on every call.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let mut ws = Workspace::new();
    gemm_ws(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, &mut ws);
}

fn check_operand(name: &str, rows: usize, cols: usize, ld: usize, len: usize) {
    assert!(
        ld >= cols.max(1),
        "gemm: leading dimension of {name} ({ld}) smaller than row width ({cols})"
    );
    if rows > 0 {
        let need = (rows - 1) * ld + cols;
        assert!(
            len >= need,
            "gemm: {name} slice too short ({len} < {need}) for {rows}x{cols} ld {ld}"
        );
    }
}

fn scale_c(m: usize, n: usize, beta: f64, c: &mut [f64], ldc: usize) {
    for i in 0..m {
        let row = &mut c[i * ldc..i * ldc + n];
        if beta == 0.0 {
            row.fill(0.0);
        } else if beta != 1.0 {
            for v in row {
                *v *= beta;
            }
        }
    }
}

/// Packs `a` (m×k, row-major, ld `lda`) into MR-row panels: panel `it` holds,
/// for each depth `p`, the MR column entries `a[i0..i0+MR][p]` contiguously,
/// zero-padded past row `m`.
fn pack_a(m: usize, k: usize, a: &[f64], lda: usize, out: &mut [f64]) {
    out.fill(0.0);
    let m_tiles = m.div_ceil(MR);
    for it in 0..m_tiles {
        let i0 = it * MR;
        let mr = MR.min(m - i0);
        let panel = &mut out[it * MR * k..(it + 1) * MR * k];
        for i in 0..mr {
            let src = &a[(i0 + i) * lda..(i0 + i) * lda + k];
            for (p, &v) in src.iter().enumerate() {
                panel[p * MR + i] = v;
            }
        }
    }
}

/// Packs `b` (k×n, row-major, ld `ldb`) into NR-column panels: panel `jt`
/// holds, for each depth `p`, the NR row entries `b[p][j0..j0+NR]`
/// contiguously, zero-padded past column `n`.
fn pack_b(k: usize, n: usize, b: &[f64], ldb: usize, out: &mut [f64]) {
    out.fill(0.0);
    let n_tiles = n.div_ceil(NR);
    for jt in 0..n_tiles {
        let j0 = jt * NR;
        let nr = NR.min(n - j0);
        let panel = &mut out[jt * NR * k..(jt + 1) * NR * k];
        for p in 0..k {
            panel[p * NR..p * NR + nr].copy_from_slice(&b[p * ldb + j0..p * ldb + j0 + nr]);
        }
    }
}

fn write_back(
    acc: &[f64; MR * NR],
    alpha: f64,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    for i in 0..mr {
        let row = &mut c[(i0 + i) * ldc + j0..(i0 + i) * ldc + j0 + nr];
        let src = &acc[i * NR..i * NR + nr];
        if beta == 0.0 {
            for (dst, &v) in row.iter_mut().zip(src) {
                *dst = alpha * v;
            }
        } else {
            for (dst, &v) in row.iter_mut().zip(src) {
                *dst = alpha * v + beta * *dst;
            }
        }
    }
}

/// Portable 4×8 microkernel: `acc = Ap·Bp` over packed panels.
///
/// The eight running sums per output row live in fixed-size arrays so the
/// autovectorizer can keep them in registers.
fn kernel_4x8_portable(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; MR * NR]) {
    let mut c0 = [0.0f64; NR];
    let mut c1 = [0.0f64; NR];
    let mut c2 = [0.0f64; NR];
    let mut c3 = [0.0f64; NR];
    for p in 0..k {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for j in 0..NR {
            c0[j] += a[0] * b[j];
            c1[j] += a[1] * b[j];
            c2[j] += a[2] * b[j];
            c3[j] += a[3] * b[j];
        }
    }
    acc[..NR].copy_from_slice(&c0);
    acc[NR..2 * NR].copy_from_slice(&c1);
    acc[2 * NR..3 * NR].copy_from_slice(&c2);
    acc[3 * NR..4 * NR].copy_from_slice(&c3);
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// AVX2+FMA 4×8 microkernel over packed panels.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and FMA, `ap.len() ≥ k·MR`,
    /// and `bp.len() ≥ k·NR`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn kernel_4x8(k: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; MR * NR]) {
        debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
        let mut c00 = _mm256_setzero_pd();
        let mut c01 = _mm256_setzero_pd();
        let mut c10 = _mm256_setzero_pd();
        let mut c11 = _mm256_setzero_pd();
        let mut c20 = _mm256_setzero_pd();
        let mut c21 = _mm256_setzero_pd();
        let mut c30 = _mm256_setzero_pd();
        let mut c31 = _mm256_setzero_pd();
        let a_ptr = ap.as_ptr();
        let b_ptr = bp.as_ptr();
        for p in 0..k {
            let b0 = _mm256_loadu_pd(b_ptr.add(p * NR));
            let b1 = _mm256_loadu_pd(b_ptr.add(p * NR + 4));
            let a0 = _mm256_set1_pd(*a_ptr.add(p * MR));
            c00 = _mm256_fmadd_pd(a0, b0, c00);
            c01 = _mm256_fmadd_pd(a0, b1, c01);
            let a1 = _mm256_set1_pd(*a_ptr.add(p * MR + 1));
            c10 = _mm256_fmadd_pd(a1, b0, c10);
            c11 = _mm256_fmadd_pd(a1, b1, c11);
            let a2 = _mm256_set1_pd(*a_ptr.add(p * MR + 2));
            c20 = _mm256_fmadd_pd(a2, b0, c20);
            c21 = _mm256_fmadd_pd(a2, b1, c21);
            let a3 = _mm256_set1_pd(*a_ptr.add(p * MR + 3));
            c30 = _mm256_fmadd_pd(a3, b0, c30);
            c31 = _mm256_fmadd_pd(a3, b1, c31);
        }
        let out = acc.as_mut_ptr();
        _mm256_storeu_pd(out, c00);
        _mm256_storeu_pd(out.add(4), c01);
        _mm256_storeu_pd(out.add(NR), c10);
        _mm256_storeu_pd(out.add(NR + 4), c11);
        _mm256_storeu_pd(out.add(2 * NR), c20);
        _mm256_storeu_pd(out.add(2 * NR + 4), c21);
        _mm256_storeu_pd(out.add(3 * NR), c30);
        _mm256_storeu_pd(out.add(3 * NR + 4), c31);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn naive(m: usize, n: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
        c
    }

    fn pseudo(seed: &mut u64) -> f64 {
        // xorshift64*; deterministic values in [-1, 1)
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((seed.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn matches_naive_on_assorted_shapes() {
        let mut seed = 0x1234_5678_9abc_def1u64;
        for &(m, n, k) in &[
            (1, 1, 1),
            (4, 8, 4),
            (5, 9, 7),
            (3, 17, 2),
            (12, 24, 12),
            (16, 16, 16),
            (7, 5, 11),
            (1, 8, 3),
            (9, 1, 9),
        ] {
            let a: Vec<f64> = (0..m * k).map(|_| pseudo(&mut seed)).collect();
            let b: Vec<f64> = (0..k * n).map(|_| pseudo(&mut seed)).collect();
            let expect = naive(m, n, k, &a, &b);
            let mut c = vec![f64::NAN; m * n];
            gemm(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n);
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-12 * (1.0 + y.abs()), "{m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn alpha_beta_and_leading_dimensions() {
        let mut seed = 42u64;
        let (m, n, k) = (5, 6, 4);
        let (lda, ldb, ldc) = (k + 3, n + 2, n + 5);
        let a: Vec<f64> = (0..m * lda).map(|_| pseudo(&mut seed)).collect();
        let b: Vec<f64> = (0..k * ldb).map(|_| pseudo(&mut seed)).collect();
        let c0: Vec<f64> = (0..m * ldc).map(|_| pseudo(&mut seed)).collect();
        let mut c = c0.clone();
        gemm(m, n, k, 2.5, &a, lda, &b, ldb, -0.5, &mut c, ldc);
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0.0;
                for p in 0..k {
                    dot += a[i * lda + p] * b[p * ldb + j];
                }
                let expect = 2.5 * dot - 0.5 * c0[i * ldc + j];
                assert!((c[i * ldc + j] - expect).abs() < 1e-12);
            }
        }
        // Padding columns untouched.
        for i in 0..m {
            for j in n..ldc {
                assert_eq!(c[i * ldc + j], c0[i * ldc + j]);
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_garbage() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [f64::NAN; 4];
        gemm(2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn zero_k_scales_existing_c() {
        let mut c = [2.0, 4.0];
        gemm(1, 2, 0, 1.0, &[], 1, &[], 2, 0.5, &mut c, 2);
        assert_eq!(c, [1.0, 2.0]);
    }

    #[test]
    fn agrees_with_matrix_mul() {
        let mut seed = 7u64;
        let (m, n, k) = (13, 11, 9);
        let a = Matrix::from_fn(m, k, |_, _| pseudo(&mut seed));
        let b = Matrix::from_fn(k, n, |_, _| pseudo(&mut seed));
        let expect = a.mul_mat(&b).unwrap();
        let mut c = vec![0.0; m * n];
        gemm(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            k,
            b.as_slice(),
            n,
            0.0,
            &mut c,
            n,
        );
        for (x, y) in c.iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-12 * (1.0 + y.abs()));
        }
    }
}
