//! Eigenvalue routines: cyclic Jacobi for symmetric matrices and a
//! norm-of-powers spectral-radius estimate for general matrices.
//!
//! Used by the control layer's stability checks (`ρ(Φ_cl) < 1` ⇔ Schur
//! stability of a linear closed loop) and by tests that certify the MPC
//! Hessian's conditioning.

use crate::{Error, Matrix, Result};

/// Eigenvalues of a **symmetric** matrix via the cyclic Jacobi method,
/// returned in ascending order.
///
/// Only the lower triangle is read; symmetry is assumed. Converges
/// quadratically; `sweeps` caps the number of full sweeps (12 is ample for
/// the sizes in this workspace).
///
/// # Errors
///
/// * [`Error::NotSquare`] if `a` is rectangular.
/// * [`Error::Singular`] if the iteration fails to reduce the off-diagonal
///   mass below tolerance within the sweep budget (non-finite inputs).
///
/// # Example
///
/// ```
/// use idc_linalg::{Matrix, eigen::symmetric_eigenvalues};
///
/// # fn main() -> Result<(), idc_linalg::Error> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let ev = symmetric_eigenvalues(&a, 12)?;
/// assert!((ev[0] - 1.0).abs() < 1e-12);
/// assert!((ev[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigenvalues(a: &Matrix, sweeps: usize) -> Result<Vec<f64>> {
    if !a.is_square() {
        return Err(Error::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    // Work on a symmetrized copy.
    let mut m = Matrix::from_fn(n, n, |i, j| if i >= j { a[(i, j)] } else { a[(j, i)] });
    if n <= 1 {
        return Ok((0..n).map(|i| m[(i, i)]).collect());
    }
    let tol = 1e-14 * m.norm_fro().max(1e-300);
    for _ in 0..sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            let mut ev: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
            ev.sort_by(|x, y| x.partial_cmp(y).expect("finite eigenvalues"));
            return Ok(ev);
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation J(p, q, θ) on both sides.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = c * apk - s * aqk;
                    m[(q, k)] = s * apk + c * aqk;
                }
            }
        }
    }
    // Check final convergence.
    let mut off = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            off += m[(i, j)] * m[(i, j)];
        }
    }
    if off.sqrt() > 1e-8 * m.norm_fro().max(1e-300) {
        return Err(Error::Singular);
    }
    let mut ev: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    ev.sort_by(|x, y| x.partial_cmp(y).expect("finite eigenvalues"));
    Ok(ev)
}

/// Condition number estimate `λmax/λmin` of a symmetric positive-definite
/// matrix (∞ when the smallest eigenvalue is non-positive).
///
/// # Errors
///
/// Propagates [`symmetric_eigenvalues`] failures.
pub fn spd_condition_number(a: &Matrix) -> Result<f64> {
    let ev = symmetric_eigenvalues(a, 16)?;
    let min = *ev.first().expect("non-empty spectrum");
    let max = *ev.last().expect("non-empty spectrum");
    Ok(if min <= 0.0 { f64::INFINITY } else { max / min })
}

/// Spectral-radius estimate `ρ(A) ≈ ‖A^{2^k}‖₁^{1/2^k}` by repeated
/// squaring (Gelfand's formula). Handles complex spectra, unlike plain
/// power iteration. `squarings` of 20–30 gives 3+ correct digits for
/// well-scaled matrices.
///
/// # Errors
///
/// * [`Error::NotSquare`] if `a` is rectangular.
/// * [`Error::Singular`] if the powers overflow to non-finite values
///   before the estimate stabilizes (extremely large ρ — treat as
///   unstable).
pub fn spectral_radius(a: &Matrix, squarings: usize) -> Result<f64> {
    if !a.is_square() {
        return Err(Error::NotSquare { shape: a.shape() });
    }
    if a.rows() == 0 {
        return Ok(0.0);
    }
    let mut power = a.clone();
    let mut log_scale = 0.0_f64; // accumulated log of norm factors
    let mut exponent = 1.0_f64;
    for _ in 0..squarings {
        let norm = power.norm_1();
        if norm == 0.0 {
            return Ok(0.0); // nilpotent
        }
        if !norm.is_finite() {
            return Err(Error::Singular);
        }
        // Rescale to avoid overflow, tracking log(ρ) ≈ (log_scale + log‖P‖)/2^k.
        log_scale += norm.ln() / exponent;
        power = power.scale(1.0 / norm);
        power = power.mul_mat(&power)?;
        exponent *= 2.0;
    }
    let final_norm = power.norm_1();
    if final_norm > 0.0 && final_norm.is_finite() {
        log_scale += final_norm.ln() / exponent;
    }
    Ok(log_scale.exp())
}

/// `true` when the discrete-time system `x(k+1) = A x(k)` is Schur stable
/// (`ρ(A) < 1 − margin`).
///
/// # Errors
///
/// Propagates [`spectral_radius`] failures.
pub fn is_schur_stable(a: &Matrix, margin: f64) -> Result<bool> {
    Ok(spectral_radius(a, 30)? < 1.0 - margin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_on_diagonal_matrix_returns_sorted_diagonal() {
        let ev = symmetric_eigenvalues(&Matrix::diag(&[3.0, -1.0, 2.0]), 12).unwrap();
        assert_eq!(ev, vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] → {1, 3}.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let ev = symmetric_eigenvalues(&a, 12).unwrap();
        assert!((ev[0] - 1.0).abs() < 1e-12 && (ev[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_preserves_trace_and_det() {
        let a =
            Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 3.0, 0.5], &[-2.0, 0.5, 5.0]]).unwrap();
        let ev = symmetric_eigenvalues(&a, 16).unwrap();
        let trace: f64 = ev.iter().sum();
        assert!((trace - 12.0).abs() < 1e-10);
        let det_ev: f64 = ev.iter().product();
        let det_lu = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((det_ev - det_lu).abs() < 1e-8 * det_lu.abs().max(1.0));
    }

    #[test]
    fn jacobi_rejects_rectangular() {
        assert!(matches!(
            symmetric_eigenvalues(&Matrix::zeros(2, 3), 12),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn jacobi_handles_trivial_sizes() {
        assert_eq!(
            symmetric_eigenvalues(&Matrix::zeros(0, 0), 12).unwrap(),
            Vec::<f64>::new()
        );
        assert_eq!(
            symmetric_eigenvalues(&Matrix::diag(&[7.0]), 12).unwrap(),
            vec![7.0]
        );
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        assert_eq!(spd_condition_number(&Matrix::identity(4)).unwrap(), 1.0);
        let c = spd_condition_number(&Matrix::diag(&[1.0, 100.0])).unwrap();
        assert!((c - 100.0).abs() < 1e-9);
        // Indefinite → ∞.
        let c = spd_condition_number(&Matrix::diag(&[-1.0, 2.0])).unwrap();
        assert!(c.is_infinite());
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let r = spectral_radius(&Matrix::diag(&[0.3, -0.9, 0.5]), 30).unwrap();
        assert!((r - 0.9).abs() < 1e-3, "rho {r}");
    }

    #[test]
    fn spectral_radius_of_rotation_is_one() {
        // Pure rotation: complex eigenvalues of modulus 1 — power iteration
        // would fail, repeated squaring does not.
        let t = 0.7f64;
        let a = Matrix::from_rows(&[&[t.cos(), -t.sin()], &[t.sin(), t.cos()]]).unwrap();
        let r = spectral_radius(&a, 30).unwrap();
        assert!((r - 1.0).abs() < 1e-6, "rho {r}");
    }

    #[test]
    fn spectral_radius_of_nilpotent_is_zero() {
        let a = Matrix::from_rows(&[&[0.0, 5.0], &[0.0, 0.0]]).unwrap();
        assert_eq!(spectral_radius(&a, 10).unwrap(), 0.0);
    }

    #[test]
    fn schur_stability_classifier() {
        assert!(is_schur_stable(&Matrix::diag(&[0.5, -0.8]), 0.01).unwrap());
        assert!(!is_schur_stable(&Matrix::diag(&[0.5, -1.1]), 0.01).unwrap());
        // The paper's Φ = I + A·Ts has ρ = 1 (integrator): not Schur.
        let mut phi = Matrix::identity(3);
        phi[(0, 1)] = 0.3;
        assert!(!is_schur_stable(&phi, 0.01).unwrap());
    }

    #[test]
    fn spectral_radius_rejects_rectangular() {
        assert!(spectral_radius(&Matrix::zeros(2, 3), 5).is_err());
    }
}
