//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The MPC Hessian `ΘᵀQΘ + R` of the condensed problem (paper eq. 42) is
//! symmetric positive definite whenever `R ≻ 0`, so equality-free solves use
//! Cholesky, which is roughly twice as fast as LU and certifies definiteness
//! as a side effect.

use crate::gemm::gemm_ws;
use crate::workspace::Workspace;
use crate::{Error, Matrix, Result};

/// A lower-triangular Cholesky factor `A = L·Lᵀ`.
///
/// # Example
///
/// ```
/// use idc_linalg::{Matrix, cholesky::Cholesky};
///
/// # fn main() -> Result<(), idc_linalg::Error> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&[2.0, 1.0])?;
/// let r = a.mul_vec(&x)?;
/// assert!((r[0] - 2.0).abs() < 1e-12 && (r[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is assumed, not checked.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] if `a` is rectangular.
    /// * [`Error::NotPositiveDefinite`] if a diagonal pivot is not strictly
    ///   positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = a[(i, j)];
                for k in 0..j {
                    acc -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if acc <= 0.0 {
                        return Err(Error::NotPositiveDefinite);
                    }
                    l[(i, j)] = acc.sqrt();
                } else {
                    l[(i, j)] = acc / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len()` differs from the
    /// factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x = b.to_vec();
        // L y = b
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (numerically stable for large well-conditioned
    /// systems).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// An incrementally maintained Cholesky factor with O(n²) row append and
/// O((n−k)²) row removal.
///
/// The active-set QP loop grows and shrinks the working-set Schur complement
/// `S_W = C_W·H⁻¹·C_Wᵀ` by one row per iteration. Refactoring from scratch is
/// O(n³) per iteration; this type instead maintains the packed lower factor
/// `L` of `S_W` under single row/column appends (one triangular solve),
/// end truncations (free), and interior removals (a Givens-style rank-1
/// update of the trailing block).
///
/// Storage is a packed row-major lower triangle (`row i` occupies
/// `i·(i+1)/2 .. i·(i+1)/2 + i + 1`), so no O(n²) dense buffer is touched on
/// append.
#[derive(Debug, Clone, Default)]
pub struct UpdatableCholesky {
    n: usize,
    /// Packed row-major lower-triangular factor.
    l: Vec<f64>,
    /// Scratch for appends/removals.
    w: Vec<f64>,
}

impl UpdatableCholesky {
    /// Creates an empty (0×0) factor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to the empty factor, keeping allocations.
    pub fn clear(&mut self) {
        self.n = 0;
        self.l.clear();
    }

    /// Current factored dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Appends one symmetric row/column to the factored matrix.
    ///
    /// `col` holds the new matrix entries `[a(new, 0), …, a(new, n−1),
    /// a(new, new)]`, i.e. length `n + 1`. Internally solves `L·w = col[..n]`
    /// and sets the new diagonal to `√(a(new,new) − wᵀw)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPositiveDefinite`] (factor left unchanged) when the
    /// Schur complement of the new diagonal is not safely positive — the
    /// caller should fall back to a full refactorization.
    ///
    /// # Panics
    ///
    /// Panics if `col.len() != self.dim() + 1`.
    pub fn append(&mut self, col: &[f64]) -> Result<()> {
        let n = self.n;
        assert_eq!(col.len(), n + 1, "append column has wrong length");
        self.w.clear();
        self.w.extend_from_slice(&col[..n]);
        for i in 0..n {
            let row = &self.l[i * (i + 1) / 2..];
            let mut acc = self.w[i];
            for j in 0..i {
                acc -= row[j] * self.w[j];
            }
            self.w[i] = acc / row[i];
        }
        let d2 = col[n] - self.w.iter().map(|v| v * v).sum::<f64>();
        if d2 <= 0.0 || d2 <= 1e-12 * col[n].abs() {
            return Err(Error::NotPositiveDefinite);
        }
        self.l.extend_from_slice(&self.w);
        self.l.push(d2.sqrt());
        self.n += 1;
        Ok(())
    }

    /// Appends `k` symmetric rows/columns in one blocked operation.
    ///
    /// `cols` concatenates the [`append`](Self::append) columns of the `k`
    /// new rows: row `j` contributes the `n + j + 1` entries `[a(n+j, 0), …,
    /// a(n+j, n+j)]`, where `n` is the dimension before the call — total
    /// length `k·n + k·(k+1)/2`, i.e. exactly what `k` successive `append`
    /// calls would consume.
    ///
    /// The off-diagonal factor block `L21` comes from `k` triangular solves
    /// against the existing factor, the k×k Schur complement
    /// `S22 − L21·L21ᵀ` is downdated through the packed GEMM microkernel,
    /// and its own Cholesky factor is built in scratch. Diagonal pivots must
    /// pass the same relative positivity test as [`append`](Self::append).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPositiveDefinite`] with the factor left
    /// **unchanged** (no partial commit, unlike a sequence of `append`
    /// calls) when any pivot fails; the caller can fall back to per-row
    /// appends to locate the offending row.
    ///
    /// # Panics
    ///
    /// Panics if `cols.len()` does not match `k` stacked append columns.
    pub fn append_block(&mut self, k: usize, cols: &[f64], ws: &mut Workspace) -> Result<()> {
        let n = self.n;
        assert_eq!(
            cols.len(),
            k * n + k * (k + 1) / 2,
            "append block has wrong length"
        );
        if k == 0 {
            return Ok(());
        }
        if k == 1 {
            return self.append(cols);
        }
        // L21 rows: solve L11·w = colsⱼ[..n] against the packed factor.
        let mut b = ws.take(k * n);
        for j in 0..k {
            let off = j * n + j * (j + 1) / 2;
            let row = &mut b[j * n..(j + 1) * n];
            row.copy_from_slice(&cols[off..off + n]);
            for i in 0..n {
                let lrow = &self.l[i * (i + 1) / 2..];
                let mut acc = row[i];
                for p in 0..i {
                    acc -= lrow[p] * row[p];
                }
                row[i] = acc / lrow[i];
            }
        }
        // Schur complement S22 − L21·L21ᵀ via GEMM (upper triangle of the
        // scratch is written by GEMM but never read below).
        let mut s22 = ws.take(k * k);
        for j in 0..k {
            let off = j * n + j * (j + 1) / 2;
            for i in 0..=j {
                s22[j * k + i] = cols[off + n + i];
            }
        }
        let mut bt = ws.take(n * k);
        for j in 0..k {
            for i in 0..n {
                bt[i * k + j] = b[j * n + i];
            }
        }
        if n > 0 {
            gemm_ws(k, k, n, -1.0, &b, n, &bt, k, 1.0, &mut s22, k, ws);
        }
        // Factor the Schur block in scratch; commit only on success.
        let mut result = crate::banded::chol_in_place_blocked(k, &mut s22, 1, ws);
        if result.is_ok() {
            for j in 0..k {
                let off = j * n + j * (j + 1) / 2;
                let d2 = s22[j * k + j] * s22[j * k + j];
                if d2 <= 1e-12 * cols[off + n + j].abs() {
                    result = Err(Error::NotPositiveDefinite);
                    break;
                }
            }
        }
        if result.is_ok() {
            for j in 0..k {
                self.l.extend_from_slice(&b[j * n..(j + 1) * n]);
                self.l.extend_from_slice(&s22[j * k..j * k + j + 1]);
            }
            self.n += k;
        }
        ws.put(b);
        ws.put(s22);
        ws.put(bt);
        result
    }

    /// Drops trailing rows/columns so the factor has dimension `new_dim`.
    ///
    /// This is exact and free: the leading principal factor of `L` is the
    /// factor of the leading principal submatrix.
    ///
    /// # Panics
    ///
    /// Panics if `new_dim > self.dim()`.
    pub fn truncate(&mut self, new_dim: usize) {
        assert!(new_dim <= self.n, "truncate beyond current dimension");
        self.n = new_dim;
        self.l.truncate(new_dim * (new_dim + 1) / 2);
    }

    /// Removes interior row/column `k` of the factored matrix.
    ///
    /// Rows above `k` are untouched; rows below shift up and the trailing
    /// block absorbs the deleted column through a positive rank-1
    /// (Givens-style) update, costing O((n−k)²).
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.dim()`.
    pub fn remove(&mut self, k: usize) {
        let n = self.n;
        assert!(k < n, "remove index out of bounds");
        if k == n - 1 {
            self.truncate(n - 1);
            return;
        }
        // Save the deleted column below the diagonal, then shift rows up.
        self.w.clear();
        for i in k + 1..n {
            self.w.push(self.l[i * (i + 1) / 2 + k]);
        }
        for i in k + 1..n {
            let old = i * (i + 1) / 2;
            let new = (i - 1) * i / 2;
            // Writes land strictly below the source row, so ascending order
            // never clobbers unread data.
            self.l.copy_within(old..old + k, new);
            self.l.copy_within(old + k + 1..old + i + 1, new + k);
        }
        self.n = n - 1;
        self.l.truncate(self.n * (self.n + 1) / 2);
        // Rank-1 update of the trailing block: A' = L₃₃L₃₃ᵀ + wwᵀ.
        let m = self.n - k;
        for t in 0..m {
            let row = k + t;
            let dpos = row * (row + 1) / 2 + row;
            let lkk = self.l[dpos];
            let x = self.w[t];
            let r = lkk.hypot(x);
            let c = r / lkk;
            let s = x / lkk;
            self.l[dpos] = r;
            for i in t + 1..m {
                let pos = (k + i) * (k + i + 1) / 2 + row;
                let updated = (self.l[pos] + s * self.w[i]) / c;
                self.l[pos] = updated;
                self.w[i] = c * self.w[i] - s * updated;
            }
        }
    }

    /// Solves `A·x = b` in place (`x` holds `b` on entry, the solution on
    /// exit).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        assert_eq!(x.len(), n, "dimension mismatch");
        for i in 0..n {
            let row = &self.l[i * (i + 1) / 2..];
            let mut acc = x[i];
            for j in 0..i {
                acc -= row[j] * x[j];
            }
            x[i] = acc / row[i];
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.l[j * (j + 1) / 2 + i] * x[j];
            }
            x[i] = acc / self.l[i * (i + 1) / 2 + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops;

    #[test]
    fn factor_of_identity_is_identity() {
        let chol = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert_eq!(*chol.l(), Matrix::identity(4));
        assert_eq!(chol.log_det(), 0.0);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[&[6.0, 3.0, 1.0], &[3.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let chol = Cholesky::factor(&a).unwrap();
        let rebuilt = chol.l().mul_mat(&chol.l().transpose()).unwrap();
        assert!((&rebuilt - &a).unwrap().norm_max() < 1e-13);
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[6.0, 3.0, 1.0], &[3.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let b = [1.0, -1.0, 2.5];
        let x_chol = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!(vec_ops::approx_eq(&x_chol, &x_lu, 1e-12));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(Error::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let chol = Cholesky::factor(&Matrix::identity(2)).unwrap();
        assert!(chol.solve(&[1.0, 2.0, 3.0]).is_err());
    }

    fn pseudo(seed: &mut u64) -> f64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((seed.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    fn random_spd(n: usize, seed: &mut u64) -> Matrix {
        let g = Matrix::from_fn(n, n, |_, _| pseudo(seed));
        let mut a = g.mul_mat(&g.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn updatable_from(a: &Matrix) -> UpdatableCholesky {
        let mut up = UpdatableCholesky::new();
        for i in 0..a.rows() {
            let col: Vec<f64> = (0..=i).map(|j| a[(i, j)]).collect();
            up.append(&col).unwrap();
        }
        up
    }

    #[test]
    fn incremental_appends_match_batch_factor() {
        let mut seed = 0xabcdu64;
        let a = random_spd(7, &mut seed);
        let up = updatable_from(&a);
        assert_eq!(up.dim(), 7);
        let b: Vec<f64> = (0..7).map(|_| pseudo(&mut seed)).collect();
        let mut x = b.clone();
        up.solve_in_place(&mut x);
        let expect = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        assert!(vec_ops::approx_eq(&x, &expect, 1e-10));
    }

    #[test]
    fn interior_removal_matches_downdated_matrix() {
        let mut seed = 0x5eedu64;
        let n = 8;
        let a = random_spd(n, &mut seed);
        for k in [0, 3, n - 1] {
            let mut up = updatable_from(&a);
            up.remove(k);
            assert_eq!(up.dim(), n - 1);
            let keep: Vec<usize> = (0..n).filter(|&i| i != k).collect();
            let reduced = Matrix::from_fn(n - 1, n - 1, |i, j| a[(keep[i], keep[j])]);
            let b: Vec<f64> = (0..n - 1).map(|_| pseudo(&mut seed)).collect();
            let mut x = b.clone();
            up.solve_in_place(&mut x);
            let expect = Cholesky::factor(&reduced).unwrap().solve(&b).unwrap();
            assert!(vec_ops::approx_eq(&x, &expect, 1e-9), "k={k}");
        }
    }

    #[test]
    fn repeated_mutation_stays_consistent() {
        let mut seed = 0x77u64;
        let n = 10;
        let a = random_spd(n, &mut seed);
        let mut up = updatable_from(&a);
        up.remove(2);
        up.remove(5);
        up.truncate(6);
        let keep: Vec<usize> = (0..n).filter(|&i| i != 2 && i != 6).take(6).collect();
        let reduced = Matrix::from_fn(6, 6, |i, j| a[(keep[i], keep[j])]);
        let b: Vec<f64> = (0..6).map(|_| pseudo(&mut seed)).collect();
        let mut x = b.clone();
        up.solve_in_place(&mut x);
        let expect = Cholesky::factor(&reduced).unwrap().solve(&b).unwrap();
        assert!(vec_ops::approx_eq(&x, &expect, 1e-9));
    }

    #[test]
    fn block_append_matches_per_row_appends() {
        let mut seed = 0xb10cu64;
        let n = 9;
        let a = random_spd(n, &mut seed);
        for split in [0usize, 3, 7] {
            // Build the first `split` rows one at a time, the rest in a block.
            let mut up = UpdatableCholesky::new();
            for i in 0..split {
                let col: Vec<f64> = (0..=i).map(|j| a[(i, j)]).collect();
                up.append(&col).unwrap();
            }
            let mut cols = Vec::new();
            for i in split..n {
                cols.extend((0..=i).map(|j| a[(i, j)]));
            }
            let mut ws = Workspace::new();
            up.append_block(n - split, &cols, &mut ws).unwrap();
            assert_eq!(up.dim(), n);
            let b: Vec<f64> = (0..n).map(|_| pseudo(&mut seed)).collect();
            let mut x = b.clone();
            up.solve_in_place(&mut x);
            let expect = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
            assert!(vec_ops::approx_eq(&x, &expect, 1e-9), "split={split}");
        }
    }

    #[test]
    fn block_append_rejects_indefinite_block_without_commit() {
        let mut up = UpdatableCholesky::new();
        up.append(&[4.0]).unwrap();
        // Rows 1 and 2 make the matrix singular (row 2 = row 1).
        let cols = [2.0, 2.0, 2.0, 2.0, 2.0];
        let mut ws = Workspace::new();
        assert!(matches!(
            up.append_block(2, &cols, &mut ws),
            Err(Error::NotPositiveDefinite)
        ));
        assert_eq!(up.dim(), 1, "failed block append must not commit rows");
        let mut x = vec![8.0];
        up.solve_in_place(&mut x);
        assert!((x[0] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn append_rejects_indefinite_extension_and_preserves_factor() {
        let mut up = UpdatableCholesky::new();
        up.append(&[4.0]).unwrap();
        // New row makes the 2×2 matrix singular: [[4, 2], [2, 1]].
        assert!(matches!(
            up.append(&[2.0, 1.0]),
            Err(Error::NotPositiveDefinite)
        ));
        assert_eq!(up.dim(), 1);
        let mut x = vec![8.0];
        up.solve_in_place(&mut x);
        assert!((x[0] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 9.0]]).unwrap();
        let ld = Cholesky::factor(&a).unwrap().log_det();
        let det = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((ld - det.ln()).abs() < 1e-12);
    }
}
