//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The MPC Hessian `ΘᵀQΘ + R` of the condensed problem (paper eq. 42) is
//! symmetric positive definite whenever `R ≻ 0`, so equality-free solves use
//! Cholesky, which is roughly twice as fast as LU and certifies definiteness
//! as a side effect.

use crate::{Error, Matrix, Result};

/// A lower-triangular Cholesky factor `A = L·Lᵀ`.
///
/// # Example
///
/// ```
/// use idc_linalg::{Matrix, cholesky::Cholesky};
///
/// # fn main() -> Result<(), idc_linalg::Error> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&[2.0, 1.0])?;
/// let r = a.mul_vec(&x)?;
/// assert!((r[0] - 2.0).abs() < 1e-12 && (r[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is assumed, not checked.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] if `a` is rectangular.
    /// * [`Error::NotPositiveDefinite`] if a diagonal pivot is not strictly
    ///   positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = a[(i, j)];
                for k in 0..j {
                    acc -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if acc <= 0.0 {
                        return Err(Error::NotPositiveDefinite);
                    }
                    l[(i, j)] = acc.sqrt();
                } else {
                    l[(i, j)] = acc / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len()` differs from the
    /// factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x = b.to_vec();
        // L y = b
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (numerically stable for large well-conditioned
    /// systems).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops;

    #[test]
    fn factor_of_identity_is_identity() {
        let chol = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert_eq!(*chol.l(), Matrix::identity(4));
        assert_eq!(chol.log_det(), 0.0);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[&[6.0, 3.0, 1.0], &[3.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let chol = Cholesky::factor(&a).unwrap();
        let rebuilt = chol.l().mul_mat(&chol.l().transpose()).unwrap();
        assert!((&rebuilt - &a).unwrap().norm_max() < 1e-13);
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[6.0, 3.0, 1.0], &[3.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let b = [1.0, -1.0, 2.5];
        let x_chol = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!(vec_ops::approx_eq(&x_chol, &x_lu, 1e-12));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(Error::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let chol = Cholesky::factor(&Matrix::identity(2)).unwrap();
        assert!(chol.solve(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 9.0]]).unwrap();
        let ld = Cholesky::factor(&a).unwrap().log_det();
        let det = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((ld - det.ln()).abs() < 1e-12);
    }
}
