//! Free functions over `&[f64]` vectors.
//!
//! The optimizers and the MPC controller shuttle a lot of flat vectors
//! around (stacked `ΔU` inputs, residuals, KKT right-hand sides); these
//! helpers keep that code readable without committing to a vector newtype.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Maximum absolute entry; 0 for an empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// `alpha * a` as a new vector.
pub fn scale(alpha: f64, a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| alpha * x).collect()
}

/// Sum of all entries.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Largest entry; `f64::NEG_INFINITY` for an empty slice.
pub fn max(a: &[f64]) -> f64 {
    a.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x))
}

/// Smallest entry; `f64::INFINITY` for an empty slice.
pub fn min(a: &[f64]) -> f64 {
    a.iter().fold(f64::INFINITY, |m, &x| m.min(x))
}

/// `true` when `a` and `b` agree entry-wise within `tol`.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn elementwise_helpers() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 1.0]), vec![2.0, 1.0]);
        assert_eq!(add(&[3.0, 2.0], &[1.0, 1.0]), vec![4.0, 3.0]);
        assert_eq!(scale(2.0, &[1.0, -2.0]), vec![2.0, -4.0]);
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(max(&[1.0, 5.0, -2.0]), 5.0);
        assert_eq!(min(&[1.0, 5.0, -2.0]), -2.0);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
