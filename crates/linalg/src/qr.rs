//! Householder QR factorization and least-squares solves.
//!
//! The paper reduces the MPC optimization to "a standard constrained
//! least-squares problem" (eq. 42); the unconstrained inner solves of the
//! optimizer, as well as the RLS sanity checks in `idc-timeseries`, are
//! backed by this factorization.

use crate::{Error, Matrix, Result};

/// A Householder QR factorization `A = Q·R` of an `m × n` matrix with
/// `m ≥ n`.
///
/// # Example
///
/// ```
/// use idc_linalg::{Matrix, qr::Qr};
///
/// // Overdetermined fit of y = 2x + 1 through three exact samples.
/// # fn main() -> Result<(), idc_linalg::Error> {
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]])?;
/// let coef = Qr::factor(&a)?.solve_least_squares(&[1.0, 3.0, 5.0])?;
/// assert!((coef[0] - 2.0).abs() < 1e-12);
/// assert!((coef[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors packed below the diagonal; R on/above it.
    qr: Matrix,
    /// Householder scalar factors.
    tau: Vec<f64>,
}

impl Qr {
    /// Factors an `m × n` matrix with `m ≥ n`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `m < n` (use the transpose
    /// and a minimum-norm formulation for underdetermined systems).
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(Error::DimensionMismatch {
                op: "qr (requires rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm = f64::hypot(norm, qr[(i, k)]);
            }
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            tau[k] = -v0 / alpha;
            qr[(k, k)] = alpha;
            // Apply H_k to the trailing columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { qr, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// `true` when R has a diagonal entry smaller than
    /// `tol · max|R|` — i.e. the system is rank deficient at that tolerance.
    pub fn is_rank_deficient(&self, tol: f64) -> bool {
        let scale = (0..self.cols())
            .map(|i| self.qr[(i, i)].abs())
            .fold(0.0, f64::max);
        (0..self.cols()).any(|i| self.qr[(i, i)].abs() <= tol * scale.max(1e-300))
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `b.len() != rows`.
    /// * [`Error::Singular`] if `A` is rank deficient to working precision.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(Error::DimensionMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        if self.is_rank_deficient(f64::EPSILON * m as f64) {
            return Err(Error::Singular);
        }
        // y = Qᵀ b via stored Householder reflectors.
        let mut y = b.to_vec();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * y[i];
            }
            s *= self.tau[k];
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            x[i] = acc / self.qr[(i, i)];
        }
        Ok(x)
    }
}

/// One-shot least squares: `min ‖A x − b‖₂`.
///
/// # Errors
///
/// Same failure modes as [`Qr::factor`] and [`Qr::solve_least_squares`].
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops;

    #[test]
    fn exact_square_system_is_solved() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = least_squares(&a, &[3.0, 5.0]).unwrap();
        let lu = crate::lu::solve(&a, &[3.0, 5.0]).unwrap();
        assert!(vec_ops::approx_eq(&x, &lu, 1e-12));
    }

    #[test]
    fn overdetermined_fit_minimizes_residual() {
        // y = 3x - 2 with symmetric noise that a LS fit must average away.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]).unwrap();
        let b = [-2.0 + 0.1, 1.0 - 0.1, 4.0 + 0.1, 7.0 - 0.1];
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 0.05, "slope {x:?}");
        assert!((x[1] + 2.0).abs() < 0.15, "intercept {x:?}");
        // Normal-equations optimality: Aᵀ(Ax − b) = 0.
        let r = vec_ops::sub(&a.mul_vec(&x).unwrap(), &b);
        let g = a.tr_mul_vec(&r).unwrap();
        assert!(vec_ops::norm_inf(&g) < 1e-12);
    }

    #[test]
    fn underdetermined_shape_is_rejected() {
        assert!(matches!(
            Qr::factor(&Matrix::zeros(2, 3)),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rank_deficiency_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.is_rank_deficient(1e-12));
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(Error::Singular)
        ));
    }

    #[test]
    fn rhs_length_is_validated() {
        let qr = Qr::factor(&Matrix::identity(3)).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }

    #[test]
    fn reflector_handles_negative_leading_entry() {
        let a = Matrix::from_rows(&[&[-5.0, 1.0], &[0.0, 2.0], &[0.0, 0.5]]).unwrap();
        let x = least_squares(&a, &[5.0, 4.0, 1.0]).unwrap();
        let r = vec_ops::sub(&a.mul_vec(&x).unwrap(), &[5.0, 4.0, 1.0]);
        let g = a.tr_mul_vec(&r).unwrap();
        assert!(vec_ops::norm_inf(&g) < 1e-12);
    }
}
