//! Symmetric block-tridiagonal matrices and their in-place block Cholesky.
//!
//! The stagewise MPC problem in cumulative-input coordinates has a Hessian
//! that couples only neighbouring stages, i.e. it is symmetric
//! block-tridiagonal with `β₂` diagonal blocks of size `C·N × C·N`. Factoring
//! it block-row by block-row is the matrix form of the Riccati backward
//! recursion: O(β₂) stages of O(nb³) work instead of the O((β₂·nb)³) dense
//! factorization of the condensed Hessian.
//!
//! [`BlockTridiag`] stores only the diagonal and subdiagonal blocks;
//! [`BlockTridiagChol`] owns reusable factor storage so repeated
//! [`refactor`](BlockTridiagChol::refactor)/[`solve_in_place`](BlockTridiagChol::solve_in_place)
//! cycles are allocation-free. Block products route through the packed
//! [`gemm`](crate::gemm) microkernel.

use crate::gemm::gemm_ws;
use crate::workspace::Workspace;
use crate::{Error, Result};

/// A symmetric block-tridiagonal matrix stored as flat row-major blocks.
///
/// Block row `t` holds the diagonal block `D_t` (`nb × nb`) and, for
/// `t ≥ 1`, the subdiagonal block `O_{t-1}` sitting at block position
/// `(t, t-1)`. The superdiagonal is implied by symmetry (`O_{t-1}ᵀ`).
#[derive(Debug, Clone)]
pub struct BlockTridiag {
    nb: usize,
    nblocks: usize,
    diag: Vec<f64>,
    sub: Vec<f64>,
}

impl BlockTridiag {
    /// Creates a zero matrix with `nblocks` diagonal blocks of size `nb`.
    ///
    /// # Panics
    ///
    /// Panics if `nb == 0` or `nblocks == 0`.
    pub fn new(nb: usize, nblocks: usize) -> Self {
        assert!(nb > 0 && nblocks > 0, "empty block-tridiagonal matrix");
        BlockTridiag {
            nb,
            nblocks,
            diag: vec![0.0; nblocks * nb * nb],
            sub: vec![0.0; nblocks.saturating_sub(1) * nb * nb],
        }
    }

    /// Block size `nb`.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of diagonal blocks.
    pub fn nblocks(&self) -> usize {
        self.nblocks
    }

    /// Total matrix dimension `nb · nblocks`.
    pub fn dim(&self) -> usize {
        self.nb * self.nblocks
    }

    /// Row-major view of diagonal block `D_t`.
    pub fn diag(&self, t: usize) -> &[f64] {
        let s = self.nb * self.nb;
        &self.diag[t * s..(t + 1) * s]
    }

    /// Mutable row-major view of diagonal block `D_t`.
    pub fn diag_mut(&mut self, t: usize) -> &mut [f64] {
        let s = self.nb * self.nb;
        &mut self.diag[t * s..(t + 1) * s]
    }

    /// Row-major view of subdiagonal block `O_t` at block position `(t+1, t)`.
    pub fn sub(&self, t: usize) -> &[f64] {
        let s = self.nb * self.nb;
        &self.sub[t * s..(t + 1) * s]
    }

    /// Mutable row-major view of subdiagonal block `O_t`.
    pub fn sub_mut(&mut self, t: usize) -> &mut [f64] {
        let s = self.nb * self.nb;
        &mut self.sub[t * s..(t + 1) * s]
    }

    /// Zeroes every block, keeping the shape and storage.
    pub fn clear(&mut self) {
        self.diag.fill(0.0);
        self.sub.fill(0.0);
    }

    /// Resizes to a new shape, zeroing all blocks and reusing storage.
    pub fn resize(&mut self, nb: usize, nblocks: usize) {
        assert!(nb > 0 && nblocks > 0, "empty block-tridiagonal matrix");
        self.nb = nb;
        self.nblocks = nblocks;
        self.diag.clear();
        self.diag.resize(nblocks * nb * nb, 0.0);
        self.sub.clear();
        self.sub.resize((nblocks - 1) * nb * nb, 0.0);
    }

    /// Multiplies `y ← A·x` (used by tests and iterative refinement).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have length different from [`dim`](Self::dim).
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        let (nb, t) = (self.nb, self.nblocks);
        assert!(x.len() == nb * t && y.len() == nb * t, "dimension mismatch");
        y.fill(0.0);
        for bt in 0..t {
            let d = self.diag(bt);
            let xs = &x[bt * nb..(bt + 1) * nb];
            let ys = &mut y[bt * nb..(bt + 1) * nb];
            for i in 0..nb {
                let mut acc = 0.0;
                for j in 0..nb {
                    acc += d[i * nb + j] * xs[j];
                }
                ys[i] += acc;
            }
        }
        for bt in 0..t.saturating_sub(1) {
            let o = self.sub(bt);
            // y_{t+1} += O_t x_t  and  y_t += O_tᵀ x_{t+1}
            for i in 0..nb {
                let mut acc = 0.0;
                for j in 0..nb {
                    acc += o[i * nb + j] * x[bt * nb + j];
                }
                y[(bt + 1) * nb + i] += acc;
            }
            for j in 0..nb {
                let mut acc = 0.0;
                for i in 0..nb {
                    acc += o[i * nb + j] * x[(bt + 1) * nb + i];
                }
                y[bt * nb + j] += acc;
            }
        }
    }
}

/// Block Cholesky factor of a [`BlockTridiag`] matrix.
///
/// `A = L·Lᵀ` where `L` is block lower-bidiagonal: lower-triangular diagonal
/// blocks `L_t` and dense subdiagonal blocks `M_t = O_{t-1}·L_{t-1}^{-ᵀ}`.
/// The backward pass `L_t·L_tᵀ = D_t − M_t·M_tᵀ` is the Riccati recursion on
/// the value-function Hessian; the forward/backward substitution sweeps in
/// [`solve_in_place`](Self::solve_in_place) are the corresponding state and
/// co-state passes.
#[derive(Debug, Default, Clone)]
pub struct BlockTridiagChol {
    nb: usize,
    nblocks: usize,
    /// Diagonal factor blocks `L_t`, row-major, lower triangle significant.
    l: Vec<f64>,
    /// Subdiagonal factor blocks `M_t` (index `t-1`), row-major dense.
    m: Vec<f64>,
    /// Transpose scratch for the `M·Mᵀ` downdate.
    mt_scratch: Vec<f64>,
}

impl BlockTridiagChol {
    /// Creates an empty factor; call [`refactor`](Self::refactor) to fill it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total dimension of the factored matrix (0 before the first refactor).
    pub fn dim(&self) -> usize {
        self.nb * self.nblocks
    }

    /// Factors `a`, reusing all internal storage from previous calls.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPositiveDefinite`] if a stage block loses positive
    /// definiteness during the recursion.
    pub fn refactor(&mut self, a: &BlockTridiag, ws: &mut Workspace) -> Result<()> {
        let (nb, t) = (a.nb(), a.nblocks());
        let s = nb * nb;
        self.nb = nb;
        self.nblocks = t;
        self.l.clear();
        self.l.resize(t * s, 0.0);
        self.m.clear();
        self.m.resize((t - 1) * s, 0.0);
        self.mt_scratch.clear();
        self.mt_scratch.resize(s, 0.0);

        self.l[..s].copy_from_slice(a.diag(0));
        chol_in_place(nb, &mut self.l[..s])?;
        for bt in 1..t {
            // M_t = O_{t-1} · L_{t-1}^{-ᵀ}: forward-substitute L_{t-1} against
            // each row of O_{t-1}.
            let (done_l, rest_l) = self.l.split_at_mut(bt * s);
            let lprev = &done_l[(bt - 1) * s..];
            let mblk = &mut self.m[(bt - 1) * s..bt * s];
            mblk.copy_from_slice(a.sub(bt - 1));
            for r in 0..nb {
                forward_subst(nb, lprev, &mut mblk[r * nb..(r + 1) * nb]);
            }
            // L_t·L_tᵀ = D_t − M_t·M_tᵀ (Riccati downdate), via packed GEMM.
            let lcur = &mut rest_l[..s];
            lcur.copy_from_slice(a.diag(bt));
            for i in 0..nb {
                for j in 0..nb {
                    self.mt_scratch[j * nb + i] = mblk[i * nb + j];
                }
            }
            gemm_ws(
                nb,
                nb,
                nb,
                -1.0,
                mblk,
                nb,
                &self.mt_scratch,
                nb,
                1.0,
                lcur,
                nb,
                ws,
            );
            chol_in_place(nb, lcur)?;
        }
        Ok(())
    }

    /// Solves `A·x = b` in place (`x` holds `b` on entry, the solution on
    /// exit).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or the factor is empty.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        let (nb, t) = (self.nb, self.nblocks);
        assert!(t > 0, "solve on empty factor");
        assert!(x.len() == nb * t, "dimension mismatch");
        let s = nb * nb;
        // Forward sweep: L y = b.
        forward_subst(nb, &self.l[..s], &mut x[..nb]);
        for bt in 1..t {
            let mblk = &self.m[(bt - 1) * s..bt * s];
            let (prev, cur) = x.split_at_mut(bt * nb);
            let yprev = &prev[(bt - 1) * nb..];
            let ycur = &mut cur[..nb];
            for i in 0..nb {
                let mut acc = 0.0;
                for j in 0..nb {
                    acc += mblk[i * nb + j] * yprev[j];
                }
                ycur[i] -= acc;
            }
            forward_subst(nb, &self.l[bt * s..(bt + 1) * s], ycur);
        }
        // Backward sweep: Lᵀ x = y.
        back_subst_transposed(nb, &self.l[(t - 1) * s..], &mut x[(t - 1) * nb..]);
        for bt in (0..t - 1).rev() {
            let mblk = &self.m[bt * s..(bt + 1) * s];
            let (cur, next) = x.split_at_mut((bt + 1) * nb);
            let xnext = &next[..nb];
            let xcur = &mut cur[bt * nb..];
            for j in 0..nb {
                let mut acc = 0.0;
                for i in 0..nb {
                    acc += mblk[i * nb + j] * xnext[i];
                }
                xcur[j] -= acc;
            }
            back_subst_transposed(nb, &self.l[bt * s..(bt + 1) * s], xcur);
        }
    }
}

/// In-place dense Cholesky of the lower triangle of a row-major `n×n` block.
fn chol_in_place(n: usize, a: &mut [f64]) -> Result<()> {
    for i in 0..n {
        for j in 0..=i {
            let mut acc = a[i * n + j];
            for k in 0..j {
                acc -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if acc <= 0.0 {
                    return Err(Error::NotPositiveDefinite);
                }
                a[i * n + j] = acc.sqrt();
            } else {
                a[i * n + j] = acc / a[j * n + j];
            }
        }
    }
    Ok(())
}

/// Solves `L·x = b` in place against the lower triangle of a row-major block.
fn forward_subst(n: usize, l: &[f64], x: &mut [f64]) {
    for i in 0..n {
        let mut acc = x[i];
        for j in 0..i {
            acc -= l[i * n + j] * x[j];
        }
        x[i] = acc / l[i * n + i];
    }
}

/// Solves `Lᵀ·x = y` in place against the lower triangle of a row-major block.
fn back_subst_transposed(n: usize, l: &[f64], x: &mut [f64]) {
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= l[j * n + i] * x[j];
        }
        x[i] = acc / l[i * n + i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::Lu;
    use crate::Matrix;

    fn pseudo(seed: &mut u64) -> f64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((seed.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Random diagonally dominant SPD block-tridiagonal matrix.
    fn random_spd(nb: usize, t: usize, seed: &mut u64) -> BlockTridiag {
        let mut a = BlockTridiag::new(nb, t);
        for bt in 0..t.saturating_sub(1) {
            for v in a.sub_mut(bt) {
                *v = pseudo(seed);
            }
        }
        for bt in 0..t {
            let d = a.diag_mut(bt);
            for i in 0..nb {
                for j in 0..i {
                    let v = pseudo(seed);
                    d[i * nb + j] = v;
                    d[j * nb + i] = v;
                }
                d[i * nb + i] = 3.0 * nb as f64 + pseudo(seed).abs();
            }
        }
        a
    }

    fn dense_of(a: &BlockTridiag) -> Matrix {
        let (nb, t) = (a.nb(), a.nblocks());
        let mut d = Matrix::zeros(nb * t, nb * t);
        for bt in 0..t {
            for i in 0..nb {
                for j in 0..nb {
                    d[(bt * nb + i, bt * nb + j)] = a.diag(bt)[i * nb + j];
                }
            }
        }
        for bt in 0..t.saturating_sub(1) {
            for i in 0..nb {
                for j in 0..nb {
                    let v = a.sub(bt)[i * nb + j];
                    d[((bt + 1) * nb + i, bt * nb + j)] = v;
                    d[(bt * nb + j, (bt + 1) * nb + i)] = v;
                }
            }
        }
        d
    }

    #[test]
    fn solve_matches_dense_lu() {
        let mut seed = 0xfeed_beefu64;
        for &(nb, t) in &[(1usize, 1usize), (2, 4), (5, 3), (8, 6), (3, 10)] {
            let a = random_spd(nb, t, &mut seed);
            let dense = dense_of(&a);
            let b: Vec<f64> = (0..nb * t).map(|_| pseudo(&mut seed)).collect();
            let mut chol = BlockTridiagChol::new();
            let mut ws = Workspace::new();
            chol.refactor(&a, &mut ws).unwrap();
            let mut x = b.clone();
            chol.solve_in_place(&mut x);
            let expect = Lu::factor(&dense).unwrap().solve(&b).unwrap();
            for (u, v) in x.iter().zip(&expect) {
                assert!((u - v).abs() < 1e-10 * (1.0 + v.abs()), "nb={nb} t={t}");
            }
        }
    }

    #[test]
    fn refactor_reuses_storage_across_calls() {
        let mut seed = 7u64;
        let mut chol = BlockTridiagChol::new();
        let mut ws = Workspace::new();
        let a = random_spd(4, 5, &mut seed);
        chol.refactor(&a, &mut ws).unwrap();
        let b = random_spd(4, 5, &mut seed);
        chol.refactor(&b, &mut ws).unwrap();
        let rhs: Vec<f64> = (0..20).map(|_| pseudo(&mut seed)).collect();
        let mut x = rhs.clone();
        chol.solve_in_place(&mut x);
        let mut back = vec![0.0; 20];
        b.mul_vec_into(&x, &mut back);
        for (u, v) in back.iter().zip(&rhs) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite_stage() {
        let mut a = BlockTridiag::new(2, 2);
        a.diag_mut(0).copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        // Large off-diagonal coupling destroys definiteness of stage 1.
        a.sub_mut(0).copy_from_slice(&[5.0, 0.0, 0.0, 5.0]);
        a.diag_mut(1).copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        let mut chol = BlockTridiagChol::new();
        let mut ws = Workspace::new();
        assert!(matches!(
            chol.refactor(&a, &mut ws),
            Err(Error::NotPositiveDefinite)
        ));
    }

    #[test]
    fn mul_vec_matches_dense() {
        let mut seed = 99u64;
        let a = random_spd(3, 4, &mut seed);
        let dense = dense_of(&a);
        let x: Vec<f64> = (0..12).map(|_| pseudo(&mut seed)).collect();
        let mut y = vec![0.0; 12];
        a.mul_vec_into(&x, &mut y);
        let expect = dense.mul_vec(&x).unwrap();
        for (u, v) in y.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
