//! Symmetric block-tridiagonal matrices and their in-place block Cholesky.
//!
//! The stagewise MPC problem in cumulative-input coordinates has a Hessian
//! that couples only neighbouring stages, i.e. it is symmetric
//! block-tridiagonal with `β₂` diagonal blocks of size `C·N × C·N`. Factoring
//! it block-row by block-row is the matrix form of the Riccati backward
//! recursion: O(β₂) stages of O(nb³) work instead of the O((β₂·nb)³) dense
//! factorization of the condensed Hessian.
//!
//! [`BlockTridiag`] stores only the diagonal and subdiagonal blocks;
//! [`BlockTridiagChol`] owns reusable factor storage so repeated
//! [`refactor`](BlockTridiagChol::refactor)/[`solve_in_place`](BlockTridiagChol::solve_in_place)
//! cycles are allocation-free. Block products route through the packed
//! [`gemm`](crate::gemm) microkernel.

use crate::gemm::gemm_ws;
use crate::par::{default_threads, par_chunks_mut, par_gemm};
use crate::workspace::Workspace;
use crate::{Error, Result};

/// Block size below which the scalar factorization path is used unchanged.
const BLOCK_MIN: usize = 128;
/// Column-panel width for the blocked Cholesky and triangular solves.
const PANEL: usize = 48;
/// Rows per chunk when banding row-parallel work across threads.
const ROW_BAND: usize = 64;
/// Right-hand sides per chunk in [`BlockTridiagChol::solve_rows_in_place`].
const RHS_BAND: usize = 32;

/// A symmetric block-tridiagonal matrix stored as flat row-major blocks.
///
/// Block row `t` holds the diagonal block `D_t` (`nb × nb`) and, for
/// `t ≥ 1`, the subdiagonal block `O_{t-1}` sitting at block position
/// `(t, t-1)`. The superdiagonal is implied by symmetry (`O_{t-1}ᵀ`).
#[derive(Debug, Clone)]
pub struct BlockTridiag {
    nb: usize,
    nblocks: usize,
    diag: Vec<f64>,
    sub: Vec<f64>,
}

impl BlockTridiag {
    /// Creates a zero matrix with `nblocks` diagonal blocks of size `nb`.
    ///
    /// # Panics
    ///
    /// Panics if `nb == 0` or `nblocks == 0`.
    pub fn new(nb: usize, nblocks: usize) -> Self {
        assert!(nb > 0 && nblocks > 0, "empty block-tridiagonal matrix");
        BlockTridiag {
            nb,
            nblocks,
            diag: vec![0.0; nblocks * nb * nb],
            sub: vec![0.0; nblocks.saturating_sub(1) * nb * nb],
        }
    }

    /// Block size `nb`.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of diagonal blocks.
    pub fn nblocks(&self) -> usize {
        self.nblocks
    }

    /// Total matrix dimension `nb · nblocks`.
    pub fn dim(&self) -> usize {
        self.nb * self.nblocks
    }

    /// Row-major view of diagonal block `D_t`.
    pub fn diag(&self, t: usize) -> &[f64] {
        let s = self.nb * self.nb;
        &self.diag[t * s..(t + 1) * s]
    }

    /// Mutable row-major view of diagonal block `D_t`.
    pub fn diag_mut(&mut self, t: usize) -> &mut [f64] {
        let s = self.nb * self.nb;
        &mut self.diag[t * s..(t + 1) * s]
    }

    /// Row-major view of subdiagonal block `O_t` at block position `(t+1, t)`.
    pub fn sub(&self, t: usize) -> &[f64] {
        let s = self.nb * self.nb;
        &self.sub[t * s..(t + 1) * s]
    }

    /// Mutable row-major view of subdiagonal block `O_t`.
    pub fn sub_mut(&mut self, t: usize) -> &mut [f64] {
        let s = self.nb * self.nb;
        &mut self.sub[t * s..(t + 1) * s]
    }

    /// Zeroes every block, keeping the shape and storage.
    pub fn clear(&mut self) {
        self.diag.fill(0.0);
        self.sub.fill(0.0);
    }

    /// Resizes to a new shape, zeroing all blocks and reusing storage.
    pub fn resize(&mut self, nb: usize, nblocks: usize) {
        assert!(nb > 0 && nblocks > 0, "empty block-tridiagonal matrix");
        self.nb = nb;
        self.nblocks = nblocks;
        self.diag.clear();
        self.diag.resize(nblocks * nb * nb, 0.0);
        self.sub.clear();
        self.sub.resize((nblocks - 1) * nb * nb, 0.0);
    }

    /// Multiplies `y ← A·x` (used by tests and iterative refinement).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have length different from [`dim`](Self::dim).
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        let (nb, t) = (self.nb, self.nblocks);
        assert!(x.len() == nb * t && y.len() == nb * t, "dimension mismatch");
        y.fill(0.0);
        for bt in 0..t {
            let d = self.diag(bt);
            let xs = &x[bt * nb..(bt + 1) * nb];
            let ys = &mut y[bt * nb..(bt + 1) * nb];
            for i in 0..nb {
                let mut acc = 0.0;
                for j in 0..nb {
                    acc += d[i * nb + j] * xs[j];
                }
                ys[i] += acc;
            }
        }
        for bt in 0..t.saturating_sub(1) {
            let o = self.sub(bt);
            // y_{t+1} += O_t x_t  and  y_t += O_tᵀ x_{t+1}
            for i in 0..nb {
                let mut acc = 0.0;
                for j in 0..nb {
                    acc += o[i * nb + j] * x[bt * nb + j];
                }
                y[(bt + 1) * nb + i] += acc;
            }
            for j in 0..nb {
                let mut acc = 0.0;
                for i in 0..nb {
                    acc += o[i * nb + j] * x[(bt + 1) * nb + i];
                }
                y[bt * nb + j] += acc;
            }
        }
    }
}

/// Block Cholesky factor of a [`BlockTridiag`] matrix.
///
/// `A = L·Lᵀ` where `L` is block lower-bidiagonal: lower-triangular diagonal
/// blocks `L_t` and dense subdiagonal blocks `M_t = O_{t-1}·L_{t-1}^{-ᵀ}`.
/// The backward pass `L_t·L_tᵀ = D_t − M_t·M_tᵀ` is the Riccati recursion on
/// the value-function Hessian; the forward/backward substitution sweeps in
/// [`solve_in_place`](Self::solve_in_place) are the corresponding state and
/// co-state passes.
#[derive(Debug, Default, Clone)]
pub struct BlockTridiagChol {
    nb: usize,
    nblocks: usize,
    /// Diagonal factor blocks `L_t`, row-major, lower triangle significant.
    l: Vec<f64>,
    /// Subdiagonal factor blocks `M_t` (index `t-1`), row-major dense.
    m: Vec<f64>,
    /// Transpose scratch for the `M·Mᵀ` downdate.
    mt_scratch: Vec<f64>,
    /// Transpose scratch for `L` blocks in the blocked triangular solves.
    lt_scratch: Vec<f64>,
}

impl BlockTridiagChol {
    /// Creates an empty factor; call [`refactor`](Self::refactor) to fill it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total dimension of the factored matrix (0 before the first refactor).
    pub fn dim(&self) -> usize {
        self.nb * self.nblocks
    }

    /// Factors `a`, reusing all internal storage from previous calls.
    ///
    /// Delegates to [`refactor_with_threads`](Self::refactor_with_threads)
    /// with [`default_threads`] workers; the result is bitwise independent of
    /// the thread count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPositiveDefinite`] if a stage block loses positive
    /// definiteness during the recursion.
    pub fn refactor(&mut self, a: &BlockTridiag, ws: &mut Workspace) -> Result<()> {
        self.refactor_with_threads(a, ws, default_threads())
    }

    /// Factors `a` using up to `threads` scoped worker threads.
    ///
    /// Small blocks (`nb <` [`BLOCK_MIN`]) take the scalar stage recursion;
    /// larger blocks use a blocked right-looking Cholesky and blocked
    /// triangular solves whose O(nb³) inner products all route through the
    /// packed GEMM microkernel. Work is banded over rows with a static
    /// partition, so the factor is **bitwise identical for every value of
    /// `threads`** (see [`crate::par`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPositiveDefinite`] if a stage block loses positive
    /// definiteness during the recursion.
    pub fn refactor_with_threads(
        &mut self,
        a: &BlockTridiag,
        ws: &mut Workspace,
        threads: usize,
    ) -> Result<()> {
        let (nb, t) = (a.nb(), a.nblocks());
        let s = nb * nb;
        self.nb = nb;
        self.nblocks = t;
        self.l.clear();
        self.l.resize(t * s, 0.0);
        self.m.clear();
        self.m.resize((t - 1) * s, 0.0);
        self.mt_scratch.clear();
        self.mt_scratch.resize(s, 0.0);
        let blocked = nb >= BLOCK_MIN;
        if blocked {
            self.lt_scratch.clear();
            self.lt_scratch.resize(s, 0.0);
        }

        self.l[..s].copy_from_slice(a.diag(0));
        if blocked {
            chol_in_place_blocked(nb, &mut self.l[..s], threads, ws)?;
        } else {
            chol_in_place(nb, &mut self.l[..s])?;
        }
        for bt in 1..t {
            // M_t = O_{t-1} · L_{t-1}^{-ᵀ}: forward-substitute L_{t-1} against
            // each row of O_{t-1}.
            let (done_l, rest_l) = self.l.split_at_mut(bt * s);
            let lprev = &done_l[(bt - 1) * s..];
            let mblk = &mut self.m[(bt - 1) * s..bt * s];
            mblk.copy_from_slice(a.sub(bt - 1));
            if blocked {
                transpose_into(nb, lprev, &mut self.lt_scratch);
                let ltprev = &self.lt_scratch;
                par_chunks_mut(mblk, ROW_BAND * nb, threads, |_, rows| {
                    let mut local = Workspace::new();
                    trsm_rows_lower(rows.len() / nb, nb, lprev, ltprev, rows, nb, &mut local);
                });
            } else {
                for r in 0..nb {
                    forward_subst(nb, lprev, &mut mblk[r * nb..(r + 1) * nb]);
                }
            }
            // L_t·L_tᵀ = D_t − M_t·M_tᵀ (Riccati downdate), via packed GEMM.
            let lcur = &mut rest_l[..s];
            lcur.copy_from_slice(a.diag(bt));
            transpose_into(nb, mblk, &mut self.mt_scratch);
            par_gemm(
                nb,
                nb,
                nb,
                -1.0,
                mblk,
                nb,
                &self.mt_scratch,
                nb,
                1.0,
                lcur,
                nb,
                if blocked { threads } else { 1 },
                ws,
            );
            if blocked {
                chol_in_place_blocked(nb, lcur, threads, ws)?;
            } else {
                chol_in_place(nb, lcur)?;
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` in place (`x` holds `b` on entry, the solution on
    /// exit).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or the factor is empty.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        let (nb, t) = (self.nb, self.nblocks);
        assert!(t > 0, "solve on empty factor");
        assert!(x.len() == nb * t, "dimension mismatch");
        let s = nb * nb;
        // Forward sweep: L y = b.
        forward_subst(nb, &self.l[..s], &mut x[..nb]);
        for bt in 1..t {
            let mblk = &self.m[(bt - 1) * s..bt * s];
            let (prev, cur) = x.split_at_mut(bt * nb);
            let yprev = &prev[(bt - 1) * nb..];
            let ycur = &mut cur[..nb];
            for i in 0..nb {
                let mut acc = 0.0;
                for j in 0..nb {
                    acc += mblk[i * nb + j] * yprev[j];
                }
                ycur[i] -= acc;
            }
            forward_subst(nb, &self.l[bt * s..(bt + 1) * s], ycur);
        }
        // Backward sweep: Lᵀ x = y.
        back_subst_transposed(nb, &self.l[(t - 1) * s..], &mut x[(t - 1) * nb..]);
        for bt in (0..t - 1).rev() {
            let mblk = &self.m[bt * s..(bt + 1) * s];
            let (cur, next) = x.split_at_mut((bt + 1) * nb);
            let xnext = &next[..nb];
            let xcur = &mut cur[bt * nb..];
            for j in 0..nb {
                let mut acc = 0.0;
                for i in 0..nb {
                    acc += mblk[i * nb + j] * xnext[i];
                }
                xcur[j] -= acc;
            }
            back_subst_transposed(nb, &self.l[bt * s..(bt + 1) * s], xcur);
        }
    }

    /// Solves `A·yᵣ = xᵣ` for `nrhs` independent right-hand sides stored as
    /// the rows of the row-major `nrhs × dim` buffer `x`, in place, with
    /// [`default_threads`] workers.
    pub fn solve_rows_in_place(&self, x: &mut [f64], nrhs: usize, ws: &mut Workspace) {
        self.solve_rows_with_threads(x, nrhs, ws, default_threads());
    }

    /// Multi-right-hand-side [`solve_in_place`](Self::solve_in_place): each
    /// row of the row-major `nrhs × dim` buffer `x` is an independent RHS.
    ///
    /// Stage-coupling corrections are batched through GEMM and right-hand
    /// sides are banded across up to `threads` scoped threads; the result is
    /// bitwise independent of `threads` (static row partition), though not
    /// bitwise identical to per-row [`solve_in_place`](Self::solve_in_place)
    /// calls (different reduction order).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrhs · dim` or the factor is empty.
    pub fn solve_rows_with_threads(
        &self,
        x: &mut [f64],
        nrhs: usize,
        ws: &mut Workspace,
        threads: usize,
    ) {
        let (nb, t) = (self.nb, self.nblocks);
        assert!(t > 0, "solve on empty factor");
        let dim = nb * t;
        assert_eq!(x.len(), nrhs * dim, "dimension mismatch");
        if nrhs == 0 {
            return;
        }
        let s = nb * nb;
        // Shared read-only transposes: Mᵀ blocks for the forward corrections,
        // Lᵀ blocks for the blocked forward triangular solves.
        let mut mts = ws.take((t - 1) * s);
        for bt in 0..t - 1 {
            transpose_into(
                nb,
                &self.m[bt * s..(bt + 1) * s],
                &mut mts[bt * s..(bt + 1) * s],
            );
        }
        let mut lts = ws.take(t * s);
        for bt in 0..t {
            transpose_into(
                nb,
                &self.l[bt * s..(bt + 1) * s],
                &mut lts[bt * s..(bt + 1) * s],
            );
        }
        let (lblk, mblk, mtref, ltref) = (&self.l, &self.m, &mts, &lts);
        par_chunks_mut(x, RHS_BAND * dim, threads, |_, rows| {
            let band = rows.len() / dim;
            let mut local = Workspace::new();
            let mut cloc = local.take(band * nb);
            // Forward sweep: L Y = B, rows as right-hand sides.
            for bt in 0..t {
                if bt > 0 {
                    // X_bt −= X_{bt−1}·M_btᵀ, computed into `cloc` to keep the
                    // GEMM operands non-aliasing, then accumulated.
                    gemm_ws(
                        band,
                        nb,
                        nb,
                        -1.0,
                        &rows[(bt - 1) * nb..],
                        dim,
                        &mtref[(bt - 1) * s..bt * s],
                        nb,
                        0.0,
                        &mut cloc,
                        nb,
                        &mut local,
                    );
                    for r in 0..band {
                        for c in 0..nb {
                            rows[r * dim + bt * nb + c] += cloc[r * nb + c];
                        }
                    }
                }
                trsm_rows_lower(
                    band,
                    nb,
                    &lblk[bt * s..(bt + 1) * s],
                    &ltref[bt * s..(bt + 1) * s],
                    &mut rows[bt * nb..],
                    dim,
                    &mut local,
                );
            }
            // Backward sweep: Lᵀ X = Y.
            for bt in (0..t).rev() {
                if bt + 1 < t {
                    // X_bt −= X_{bt+1}·M_{bt+1}.
                    gemm_ws(
                        band,
                        nb,
                        nb,
                        -1.0,
                        &rows[(bt + 1) * nb..],
                        dim,
                        &mblk[bt * s..(bt + 1) * s],
                        nb,
                        0.0,
                        &mut cloc,
                        nb,
                        &mut local,
                    );
                    for r in 0..band {
                        for c in 0..nb {
                            rows[r * dim + bt * nb + c] += cloc[r * nb + c];
                        }
                    }
                }
                trsm_rows_lower_transposed(
                    band,
                    nb,
                    &lblk[bt * s..(bt + 1) * s],
                    &mut rows[bt * nb..],
                    dim,
                    &mut local,
                );
            }
            local.put(cloc);
        });
        ws.put(mts);
        ws.put(lts);
    }
}

/// In-place dense Cholesky of the lower triangle of a row-major `n×n` block.
fn chol_in_place(n: usize, a: &mut [f64]) -> Result<()> {
    for i in 0..n {
        for j in 0..=i {
            let mut acc = a[i * n + j];
            for k in 0..j {
                acc -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if acc <= 0.0 {
                    return Err(Error::NotPositiveDefinite);
                }
                a[i * n + j] = acc.sqrt();
            } else {
                a[i * n + j] = acc / a[j * n + j];
            }
        }
    }
    Ok(())
}

/// Solves `L·x = b` in place against the lower triangle of a row-major block.
fn forward_subst(n: usize, l: &[f64], x: &mut [f64]) {
    for i in 0..n {
        let mut acc = x[i];
        for j in 0..i {
            acc -= l[i * n + j] * x[j];
        }
        x[i] = acc / l[i * n + i];
    }
}

/// Solves `Lᵀ·x = y` in place against the lower triangle of a row-major block.
fn back_subst_transposed(n: usize, l: &[f64], x: &mut [f64]) {
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= l[j * n + i] * x[j];
        }
        x[i] = acc / l[i * n + i];
    }
}

/// Transposes the row-major `n×n` block `src` into `dst`.
fn transpose_into(n: usize, src: &[f64], dst: &mut [f64]) {
    for i in 0..n {
        for j in 0..n {
            dst[j * n + i] = src[i * n + j];
        }
    }
}

/// Blocked right-looking in-place Cholesky of the lower triangle of a
/// row-major `n×n` block.
///
/// The diagonal panel is factored scalar; the O(n³) trailing update runs
/// through the packed GEMM microkernel, banded over row panels across up to
/// `threads` scoped threads. Each row panel's output depends only on its own
/// rows plus shared read-only panels, so the factor is bitwise independent
/// of `threads`.
pub(crate) fn chol_in_place_blocked(
    n: usize,
    a: &mut [f64],
    threads: usize,
    ws: &mut Workspace,
) -> Result<()> {
    if n < BLOCK_MIN {
        return chol_in_place(n, a);
    }
    let mut bt = ws.take(PANEL * n);
    let mut result = Ok(());
    'outer: for k0 in (0..n).step_by(PANEL) {
        let w = PANEL.min(n - k0);
        // Diagonal panel: scalar Cholesky of the w×w submatrix at (k0, k0).
        for i in 0..w {
            for j in 0..=i {
                let mut acc = a[(k0 + i) * n + k0 + j];
                for p in 0..j {
                    acc -= a[(k0 + i) * n + k0 + p] * a[(k0 + j) * n + k0 + p];
                }
                if i == j {
                    if acc <= 0.0 {
                        result = Err(Error::NotPositiveDefinite);
                        break 'outer;
                    }
                    a[(k0 + i) * n + k0 + i] = acc.sqrt();
                } else {
                    a[(k0 + i) * n + k0 + j] = acc / a[(k0 + j) * n + k0 + j];
                }
            }
        }
        let r0 = k0 + w;
        if r0 == n {
            break;
        }
        // Panel solve L21 ← A21·L11⁻ᵀ, row-parallel.
        let (head, tail) = a.split_at_mut(r0 * n);
        let panel = &head[k0 * n..];
        par_chunks_mut(tail, ROW_BAND * n, threads, |_, rows| {
            for rr in rows.chunks_mut(n) {
                for i in 0..w {
                    let mut acc = rr[k0 + i];
                    for j in 0..i {
                        acc -= panel[i * n + k0 + j] * rr[k0 + j];
                    }
                    rr[k0 + i] = acc / panel[i * n + k0 + i];
                }
            }
        });
        // Bt = L21ᵀ, shared read-only by every trailing row panel.
        let ncols_total = n - r0;
        for (rr, row) in tail.chunks_exact(n).enumerate() {
            for c in 0..w {
                bt[c * ncols_total + rr] = row[k0 + c];
            }
        }
        // Trailing update A22 −= L21·L21ᵀ, one GEMM per row panel covering
        // the panel's lower-triangle columns (plus the few upper-triangle
        // entries inside the panel's diagonal block, which stay
        // insignificant — only the lower triangle of `a` is read).
        let btref = &bt;
        par_chunks_mut(tail, ROW_BAND * n, threads, |idx, rows| {
            let nrows = rows.len() / n;
            let band_r0 = r0 + idx * ROW_BAND;
            let ncols = band_r0 + nrows - r0;
            let mut local = Workspace::new();
            let mut aloc = local.take(nrows * w);
            for (rr, row) in rows.chunks_exact(n).enumerate() {
                aloc[rr * w..(rr + 1) * w].copy_from_slice(&row[k0..k0 + w]);
            }
            gemm_ws(
                nrows,
                ncols,
                w,
                -1.0,
                &aloc,
                w,
                btref,
                ncols_total,
                1.0,
                &mut rows[r0..],
                n,
                &mut local,
            );
            local.put(aloc);
        });
    }
    ws.put(bt);
    result
}

/// Solves `L·yᵣ = xᵣ` for every row of the `nrhs × n` block `x` (leading
/// dimension `ldx`), i.e. a right-side triangular solve against `Lᵀ`.
///
/// `lt` must hold the transpose of `l`. Column-panel corrections go through
/// GEMM; only the small per-panel triangles are solved scalar. Falls back to
/// scalar per-row substitution below [`BLOCK_MIN`].
fn trsm_rows_lower(
    nrhs: usize,
    n: usize,
    l: &[f64],
    lt: &[f64],
    x: &mut [f64],
    ldx: usize,
    ws: &mut Workspace,
) {
    if n < BLOCK_MIN {
        for r in 0..nrhs {
            forward_subst(n, l, &mut x[r * ldx..r * ldx + n]);
        }
        return;
    }
    let mut cloc = ws.take(nrhs * PANEL);
    for j0 in (0..n).step_by(PANEL) {
        let w = PANEL.min(n - j0);
        if j0 > 0 {
            // X[:, j0..j0+w] −= X[:, 0..j0]·(L[j0..j0+w, 0..j0])ᵀ.
            gemm_ws(
                nrhs,
                w,
                j0,
                -1.0,
                &x[..],
                ldx,
                &lt[j0..],
                n,
                0.0,
                &mut cloc[..nrhs * w],
                w,
                ws,
            );
            for r in 0..nrhs {
                for c in 0..w {
                    x[r * ldx + j0 + c] += cloc[r * w + c];
                }
            }
        }
        for r in 0..nrhs {
            let row = &mut x[r * ldx + j0..r * ldx + j0 + w];
            for i in 0..w {
                let mut acc = row[i];
                for j in 0..i {
                    acc -= l[(j0 + i) * n + j0 + j] * row[j];
                }
                row[i] = acc / l[(j0 + i) * n + j0 + i];
            }
        }
    }
    ws.put(cloc);
}

/// Solves `Lᵀ·yᵣ = xᵣ` for every row of the `nrhs × n` block `x` (leading
/// dimension `ldx`), i.e. a right-side triangular solve against `L`.
///
/// Column panels proceed right to left; corrections go through GEMM reading
/// `l` directly. Falls back to scalar per-row substitution below
/// [`BLOCK_MIN`].
fn trsm_rows_lower_transposed(
    nrhs: usize,
    n: usize,
    l: &[f64],
    x: &mut [f64],
    ldx: usize,
    ws: &mut Workspace,
) {
    if n < BLOCK_MIN {
        for r in 0..nrhs {
            back_subst_transposed(n, l, &mut x[r * ldx..r * ldx + n]);
        }
        return;
    }
    let mut cloc = ws.take(nrhs * PANEL);
    for j0 in (0..n).step_by(PANEL).rev() {
        let w = PANEL.min(n - j0);
        let hi = j0 + w;
        if hi < n {
            // X[:, j0..hi] −= X[:, hi..n]·L[hi..n, j0..hi].
            gemm_ws(
                nrhs,
                w,
                n - hi,
                -1.0,
                &x[hi..],
                ldx,
                &l[hi * n + j0..],
                n,
                0.0,
                &mut cloc[..nrhs * w],
                w,
                ws,
            );
            for r in 0..nrhs {
                for c in 0..w {
                    x[r * ldx + j0 + c] += cloc[r * w + c];
                }
            }
        }
        for r in 0..nrhs {
            let row = &mut x[r * ldx + j0..r * ldx + hi];
            for i in (0..w).rev() {
                let mut acc = row[i];
                for j in i + 1..w {
                    acc -= l[(j0 + j) * n + j0 + i] * row[j];
                }
                row[i] = acc / l[(j0 + i) * n + j0 + i];
            }
        }
    }
    ws.put(cloc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::Lu;
    use crate::Matrix;

    fn pseudo(seed: &mut u64) -> f64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((seed.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Random diagonally dominant SPD block-tridiagonal matrix.
    fn random_spd(nb: usize, t: usize, seed: &mut u64) -> BlockTridiag {
        let mut a = BlockTridiag::new(nb, t);
        for bt in 0..t.saturating_sub(1) {
            for v in a.sub_mut(bt) {
                *v = pseudo(seed);
            }
        }
        for bt in 0..t {
            let d = a.diag_mut(bt);
            for i in 0..nb {
                for j in 0..i {
                    let v = pseudo(seed);
                    d[i * nb + j] = v;
                    d[j * nb + i] = v;
                }
                d[i * nb + i] = 3.0 * nb as f64 + pseudo(seed).abs();
            }
        }
        a
    }

    fn dense_of(a: &BlockTridiag) -> Matrix {
        let (nb, t) = (a.nb(), a.nblocks());
        let mut d = Matrix::zeros(nb * t, nb * t);
        for bt in 0..t {
            for i in 0..nb {
                for j in 0..nb {
                    d[(bt * nb + i, bt * nb + j)] = a.diag(bt)[i * nb + j];
                }
            }
        }
        for bt in 0..t.saturating_sub(1) {
            for i in 0..nb {
                for j in 0..nb {
                    let v = a.sub(bt)[i * nb + j];
                    d[((bt + 1) * nb + i, bt * nb + j)] = v;
                    d[(bt * nb + j, (bt + 1) * nb + i)] = v;
                }
            }
        }
        d
    }

    #[test]
    fn solve_matches_dense_lu() {
        let mut seed = 0xfeed_beefu64;
        for &(nb, t) in &[(1usize, 1usize), (2, 4), (5, 3), (8, 6), (3, 10)] {
            let a = random_spd(nb, t, &mut seed);
            let dense = dense_of(&a);
            let b: Vec<f64> = (0..nb * t).map(|_| pseudo(&mut seed)).collect();
            let mut chol = BlockTridiagChol::new();
            let mut ws = Workspace::new();
            chol.refactor(&a, &mut ws).unwrap();
            let mut x = b.clone();
            chol.solve_in_place(&mut x);
            let expect = Lu::factor(&dense).unwrap().solve(&b).unwrap();
            for (u, v) in x.iter().zip(&expect) {
                assert!((u - v).abs() < 1e-10 * (1.0 + v.abs()), "nb={nb} t={t}");
            }
        }
    }

    #[test]
    fn refactor_reuses_storage_across_calls() {
        let mut seed = 7u64;
        let mut chol = BlockTridiagChol::new();
        let mut ws = Workspace::new();
        let a = random_spd(4, 5, &mut seed);
        chol.refactor(&a, &mut ws).unwrap();
        let b = random_spd(4, 5, &mut seed);
        chol.refactor(&b, &mut ws).unwrap();
        let rhs: Vec<f64> = (0..20).map(|_| pseudo(&mut seed)).collect();
        let mut x = rhs.clone();
        chol.solve_in_place(&mut x);
        let mut back = vec![0.0; 20];
        b.mul_vec_into(&x, &mut back);
        for (u, v) in back.iter().zip(&rhs) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite_stage() {
        let mut a = BlockTridiag::new(2, 2);
        a.diag_mut(0).copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        // Large off-diagonal coupling destroys definiteness of stage 1.
        a.sub_mut(0).copy_from_slice(&[5.0, 0.0, 0.0, 5.0]);
        a.diag_mut(1).copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        let mut chol = BlockTridiagChol::new();
        let mut ws = Workspace::new();
        assert!(matches!(
            chol.refactor(&a, &mut ws),
            Err(Error::NotPositiveDefinite)
        ));
    }

    #[test]
    fn blocked_path_matches_dense_lu() {
        // nb ≥ BLOCK_MIN exercises the blocked Cholesky + blocked trsm path.
        let mut seed = 0x600d_cafeu64;
        let (nb, t) = (BLOCK_MIN + 5, 2);
        let a = random_spd(nb, t, &mut seed);
        let dense = dense_of(&a);
        let b: Vec<f64> = (0..nb * t).map(|_| pseudo(&mut seed)).collect();
        let mut chol = BlockTridiagChol::new();
        let mut ws = Workspace::new();
        chol.refactor_with_threads(&a, &mut ws, 2).unwrap();
        let mut x = b.clone();
        chol.solve_in_place(&mut x);
        let expect = Lu::factor(&dense).unwrap().solve(&b).unwrap();
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-9 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn refactor_is_bitwise_independent_of_thread_count() {
        let mut seed = 0x7ead_5afeu64;
        let (nb, t) = (BLOCK_MIN + 9, 3);
        let a = random_spd(nb, t, &mut seed);
        let mut ws = Workspace::new();
        let mut serial = BlockTridiagChol::new();
        serial.refactor_with_threads(&a, &mut ws, 1).unwrap();
        for threads in [2, 3, 5] {
            let mut par = BlockTridiagChol::new();
            par.refactor_with_threads(&a, &mut ws, threads).unwrap();
            assert_eq!(par.l, serial.l, "threads={threads}");
            assert_eq!(par.m, serial.m, "threads={threads}");
        }
    }

    #[test]
    fn solve_rows_matches_per_row_solves() {
        let mut seed = 0x0def_aced_u64;
        for &(nb, t) in &[(6usize, 4usize), (BLOCK_MIN + 3, 2)] {
            let a = random_spd(nb, t, &mut seed);
            let dim = nb * t;
            let nrhs = 5;
            let mut chol = BlockTridiagChol::new();
            let mut ws = Workspace::new();
            chol.refactor(&a, &mut ws).unwrap();
            let rhs: Vec<f64> = (0..nrhs * dim).map(|_| pseudo(&mut seed)).collect();
            let mut batch = rhs.clone();
            chol.solve_rows_with_threads(&mut batch, nrhs, &mut ws, 1);
            let mut batch_par = rhs.clone();
            chol.solve_rows_with_threads(&mut batch_par, nrhs, &mut ws, 3);
            assert_eq!(batch, batch_par, "nb={nb}: thread count changed bits");
            for r in 0..nrhs {
                let mut x = rhs[r * dim..(r + 1) * dim].to_vec();
                chol.solve_in_place(&mut x);
                for (u, v) in batch[r * dim..(r + 1) * dim].iter().zip(&x) {
                    assert!((u - v).abs() < 1e-9 * (1.0 + v.abs()), "nb={nb} r={r}");
                }
            }
        }
    }

    #[test]
    fn mul_vec_matches_dense() {
        let mut seed = 99u64;
        let a = random_spd(3, 4, &mut seed);
        let dense = dense_of(&a);
        let x: Vec<f64> = (0..12).map(|_| pseudo(&mut seed)).collect();
        let mut y = vec![0.0; 12];
        a.mul_vec_into(&x, &mut y);
        let expect = dense.mul_vec(&x).unwrap();
        for (u, v) in y.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
