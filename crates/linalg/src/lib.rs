//! Dense linear-algebra substrate for the `idc-mpc` workspace.
//!
//! This crate provides exactly the numerical kernels required by the
//! reproduction of *"Dynamic Control of Electricity Cost with Power Demand
//! Smoothing and Peak Shaving for Distributed Internet Data Centers"*
//! (ICDCS 2012):
//!
//! * a row-major dense [`Matrix`] type with the usual arithmetic,
//! * [LU](lu::Lu), [Cholesky](cholesky::Cholesky) and
//!   [Householder QR](qr::Qr) factorizations,
//! * least-squares solves (the paper reduces MPC to constrained least squares),
//! * the scaling-and-squaring [Padé matrix exponential](expm::expm) used for
//!   zero-order-hold discretization of the continuous-time cost model
//!   (`Φ = e^{A·Ts}`, paper eq. 23–25),
//! * rank / norm utilities used by the controllability test of Sec. IV-C.
//!
//! The crate is dependency-free and deterministic; all routines operate on
//! `f64`.
//!
//! # Example
//!
//! ```
//! use idc_linalg::{Matrix, lu::Lu};
//!
//! # fn main() -> Result<(), idc_linalg::Error> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let x = Lu::factor(&a)?.solve(&[1.0, 2.0])?;
//! let r = a.mul_vec(&x)?;
//! assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod banded;
pub mod cholesky;
pub mod eigen;
mod error;
pub mod expm;
pub mod gemm;
pub mod lu;
mod matrix;
pub mod par;
pub mod qr;
pub mod vec_ops;
pub mod workspace;

pub use error::Error;
pub use matrix::Matrix;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
