//! Matrix exponential via Padé approximation with scaling and squaring.
//!
//! Implements Higham's 2005 algorithm (degrees 3/5/7/9/13 with the
//! associated θ thresholds). The ZOH discretization of the continuous-time
//! electricity-cost model (paper eq. 23–25) is computed by exponentiating an
//! augmented matrix; see `idc-control::discretize`.

use crate::lu::Lu;
use crate::{Error, Matrix, Result};

/// Padé coefficients for degree 13 (Higham 2005, Table 10.4).
const B13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// θ thresholds: use degree `m` when ‖A‖₁ ≤ θ_m.
const THETA: [(usize, f64); 4] = [
    (3, 1.495585217958292e-2),
    (5, 2.53939833006323e-1),
    (7, 9.504178996162932e-1),
    (9, 2.097847961257068e0),
];
const THETA_13: f64 = 5.371920351148152;

/// Computes the matrix exponential `e^A`.
///
/// # Errors
///
/// * [`Error::NotSquare`] if `a` is rectangular.
/// * [`Error::Singular`] if the Padé denominator solve fails (can only
///   happen for inputs containing non-finite values).
///
/// # Example
///
/// ```
/// use idc_linalg::{Matrix, expm::expm};
///
/// # fn main() -> Result<(), idc_linalg::Error> {
/// // exp of a diagonal matrix exponentiates the diagonal.
/// let a = Matrix::diag(&[0.0, 1.0]);
/// let e = expm(&a)?;
/// assert!((e[(0, 0)] - 1.0).abs() < 1e-14);
/// assert!((e[(1, 1)] - 1.0_f64.exp()).abs() < 1e-13);
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(Error::NotSquare { shape: a.shape() });
    }
    let norm = a.norm_1();
    if !norm.is_finite() {
        return Err(Error::Singular);
    }

    for &(m, theta) in &THETA {
        if norm <= theta {
            return pade(a, m);
        }
    }

    // Scaling and squaring with degree 13.
    let s = if norm > THETA_13 {
        (norm / THETA_13).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(0.5_f64.powi(s as i32));
    let mut e = pade13(&scaled)?;
    for _ in 0..s {
        e = e.mul_mat(&e)?;
    }
    Ok(e)
}

/// Padé approximant of odd degree `m ∈ {3, 5, 7, 9}`.
fn pade(a: &Matrix, m: usize) -> Result<Matrix> {
    // b coefficients for the requested degree (prefixes of known tables).
    let b: &[f64] = match m {
        3 => &[120.0, 60.0, 12.0, 1.0],
        5 => &[30240.0, 15120.0, 3360.0, 420.0, 30.0, 1.0],
        7 => &[
            17297280.0, 8648640.0, 1995840.0, 277200.0, 25200.0, 1512.0, 56.0, 1.0,
        ],
        9 => &[
            17643225600.0,
            8821612800.0,
            2075673600.0,
            302702400.0,
            30270240.0,
            2162160.0,
            110880.0,
            3960.0,
            90.0,
            1.0,
        ],
        _ => unreachable!("unsupported Padé degree {m}"),
    };
    let n = a.rows();
    let a2 = a.mul_mat(a)?;
    // U = A * (Σ b[2k+1] A^{2k}),  V = Σ b[2k] A^{2k}
    let mut u_poly = Matrix::identity(n).scale(b[1]);
    let mut v = Matrix::identity(n).scale(b[0]);
    let mut a_pow = Matrix::identity(n); // A^{2k}
    for k in 1..=(m / 2) {
        a_pow = a_pow.mul_mat(&a2)?;
        u_poly.scaled_add_assign(b[2 * k + 1], &a_pow)?;
        v.scaled_add_assign(b[2 * k], &a_pow)?;
    }
    let u = a.mul_mat(&u_poly)?;
    rational_solve(&u, &v)
}

/// Degree-13 Padé approximant with Higham's economical evaluation.
fn pade13(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    let ident = Matrix::identity(n);
    let a2 = a.mul_mat(a)?;
    let a4 = a2.mul_mat(&a2)?;
    let a6 = a4.mul_mat(&a2)?;

    // U = A [ A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I ]
    let mut w1 = a6.scale(B13[13]);
    w1.scaled_add_assign(B13[11], &a4)?;
    w1.scaled_add_assign(B13[9], &a2)?;
    let mut w2 = a6.scale(B13[7]);
    w2.scaled_add_assign(B13[5], &a4)?;
    w2.scaled_add_assign(B13[3], &a2)?;
    w2.scaled_add_assign(B13[1], &ident)?;
    let mut w = a6.mul_mat(&w1)?;
    w.scaled_add_assign(1.0, &w2)?;
    let u = a.mul_mat(&w)?;

    // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    let mut z1 = a6.scale(B13[12]);
    z1.scaled_add_assign(B13[10], &a4)?;
    z1.scaled_add_assign(B13[8], &a2)?;
    let mut v = a6.mul_mat(&z1)?;
    v.scaled_add_assign(B13[6], &a6)?;
    v.scaled_add_assign(B13[4], &a4)?;
    v.scaled_add_assign(B13[2], &a2)?;
    v.scaled_add_assign(B13[0], &ident)?;

    rational_solve(&u, &v)
}

/// Solves `(V − U) X = (V + U)` — the final Padé rational step.
fn rational_solve(u: &Matrix, v: &Matrix) -> Result<Matrix> {
    let denom = (v - u)?;
    let numer = (v + u)?;
    Lu::factor(&denom)?.solve_matrix(&numer)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        let err = (a - b).unwrap().norm_max();
        assert!(err < tol, "matrices differ by {err}");
    }

    #[test]
    fn exp_of_zero_is_identity() {
        assert_close(
            &expm(&Matrix::zeros(4, 4)).unwrap(),
            &Matrix::identity(4),
            1e-15,
        );
    }

    #[test]
    fn exp_of_diagonal_exponentiates_entries() {
        let a = Matrix::diag(&[-1.0, 0.5, 2.0]);
        let e = expm(&a).unwrap();
        for (i, &d) in [-1.0, 0.5, 2.0].iter().enumerate() {
            assert!((e[(i, i)] - f64::exp(d)).abs() < 1e-12);
        }
    }

    #[test]
    fn exp_of_nilpotent_matches_truncated_series() {
        // N = [[0,1],[0,0]] → e^N = I + N exactly.
        let n = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let e = expm(&n).unwrap();
        let expected = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        assert_close(&e, &expected, 1e-15);
    }

    #[test]
    fn exp_of_rotation_generator_gives_rotation() {
        // A = [[0,-t],[t,0]] → e^A = [[cos t, -sin t],[sin t, cos t]].
        let t = 1.3;
        let a = Matrix::from_rows(&[&[0.0, -t], &[t, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        let expected = Matrix::from_rows(&[&[t.cos(), -t.sin()], &[t.sin(), t.cos()]]).unwrap();
        assert_close(&e, &expected, 1e-13);
    }

    #[test]
    fn inverse_property_holds() {
        let a =
            Matrix::from_rows(&[&[0.2, 1.0, 0.0], &[-0.5, 0.1, 0.3], &[0.0, 0.2, -0.4]]).unwrap();
        let e = expm(&a).unwrap();
        let einv = expm(&a.scale(-1.0)).unwrap();
        assert_close(&e.mul_mat(&einv).unwrap(), &Matrix::identity(3), 1e-12);
    }

    #[test]
    fn large_norm_triggers_scaling_and_stays_accurate() {
        // ‖A‖ large enough to force several squarings.
        let a = Matrix::from_rows(&[&[10.0, -3.0], &[4.0, 8.0]]).unwrap();
        let e = expm(&a).unwrap();
        // Check against the semigroup property e^A = (e^{A/2})².
        let half = expm(&a.scale(0.5)).unwrap();
        let squared = half.mul_mat(&half).unwrap();
        let rel = (&e - &squared).unwrap().norm_max() / e.norm_max();
        assert!(rel < 1e-11, "relative error {rel}");
    }

    #[test]
    fn semigroup_property_across_degrees() {
        // Check e^{A} e^{A} = e^{2A} for norms exercising small-degree paths.
        for scale in [0.001, 0.1, 0.5, 1.5, 3.0] {
            let a = Matrix::from_rows(&[&[0.0, 1.0], &[-1.0, -0.2]])
                .unwrap()
                .scale(scale);
            let e1 = expm(&a).unwrap();
            let e2 = expm(&a.scale(2.0)).unwrap();
            let prod = e1.mul_mat(&e1).unwrap();
            let rel = (&e2 - &prod).unwrap().norm_max() / e2.norm_max().max(1.0);
            assert!(rel < 1e-11, "scale {scale}: rel err {rel}");
        }
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            expm(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_entries() {
        let a = Matrix::from_rows(&[&[f64::NAN, 0.0], &[0.0, 0.0]]).unwrap();
        assert!(expm(&a).is_err());
    }

    #[test]
    fn paper_cost_model_structure_is_exact() {
        // The paper's A matrix has one nonzero row (prices) and is nilpotent
        // of index 2: A² = 0, so e^{A·Ts} = I + A·Ts exactly.
        let prices = [43.26, 30.26, 19.06];
        let n = prices.len() + 1;
        let mut a = Matrix::zeros(n, n);
        for (j, &p) in prices.iter().enumerate() {
            a[(0, j + 1)] = p;
        }
        let ts = 30.0;
        let e = expm(&a.scale(ts)).unwrap();
        let mut expected = Matrix::identity(n);
        expected.scaled_add_assign(ts, &a).unwrap();
        let err = (&e - &expected).unwrap().norm_max();
        assert!(err < 1e-9 * ts * prices[0], "err {err}");
    }
}
