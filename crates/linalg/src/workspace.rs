//! Arena-style scratch-buffer pool for allocation-free hot paths.
//!
//! The MPC solve path needs many short-lived `f64` buffers per step (packed
//! GEMM panels, block-recursion temporaries, gathered KKT rows). Allocating
//! them on every call dominates small-problem runtimes, so [`Workspace`]
//! recycles buffers through a free list: [`take`](Workspace::take) hands out a
//! zeroed buffer (reusing retired capacity when available) and
//! [`put`](Workspace::put) retires it again. After a warm-up pass every
//! `take`/`put` pair is allocation-free.

/// A recycling pool of `Vec<f64>` scratch buffers.
///
/// # Example
///
/// ```
/// use idc_linalg::workspace::Workspace;
///
/// let mut ws = Workspace::new();
/// let buf = ws.take(16);
/// assert!(buf.iter().all(|&v| v == 0.0));
/// let cap = buf.capacity();
/// ws.put(buf);
/// // The next request reuses the retired allocation.
/// let again = ws.take(8);
/// assert!(again.capacity() >= 8 && cap >= 16);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    free: Vec<Vec<f64>>,
}

impl Workspace {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zeroed buffer of exactly `len` elements.
    ///
    /// Reuses the retired buffer with the largest capacity when one exists;
    /// only grows an allocation when no retired buffer is big enough.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut buf = match self
            .free
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.capacity())
        {
            Some((idx, _)) => self.free.swap_remove(idx),
            None => Vec::new(),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Number of retired buffers currently held.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_requested_len() {
        let mut ws = Workspace::new();
        let mut b = ws.take(5);
        assert_eq!(b, vec![0.0; 5]);
        b.iter_mut().for_each(|v| *v = 7.0);
        ws.put(b);
        // Recycled buffer must come back zeroed.
        let b2 = ws.take(3);
        assert_eq!(b2, vec![0.0; 3]);
    }

    #[test]
    fn reuses_largest_retired_capacity() {
        let mut ws = Workspace::new();
        let big = ws.take(100);
        let small = ws.take(2);
        let big_ptr = big.as_ptr();
        ws.put(small);
        ws.put(big);
        let reused = ws.take(50);
        assert_eq!(reused.as_ptr(), big_ptr);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.put(Vec::new());
        assert_eq!(ws.pooled(), 0);
    }
}
