use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable name of the failing operation.
        op: &'static str,
        /// Shape of the left / first operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right / second operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// A factorization encountered an (numerically) singular matrix.
    Singular,
    /// Cholesky factorization was attempted on a matrix that is not
    /// symmetric positive definite.
    NotPositiveDefinite,
    /// A constructor received data whose length does not match `rows * cols`.
    BadLength {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Rows of a jagged input had differing lengths.
    Jagged,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            Error::Singular => write!(f, "matrix is singular to working precision"),
            Error::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            Error::BadLength { expected, actual } => {
                write!(f, "expected {expected} elements, got {actual}")
            }
            Error::Jagged => write!(f, "rows have inconsistent lengths"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::DimensionMismatch {
            op: "mul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "dimension mismatch in mul: 2x3 vs 4x5");
        assert_eq!(
            Error::Singular.to_string(),
            "matrix is singular to working precision"
        );
        assert_eq!(
            Error::NotSquare { shape: (1, 2) }.to_string(),
            "matrix must be square, got 1x2"
        );
        assert_eq!(
            Error::BadLength {
                expected: 4,
                actual: 3
            }
            .to_string(),
            "expected 4 elements, got 3"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
