//! Property-based tests for the dense linear-algebra kernels.

use idc_linalg::{expm::expm, lu::Lu, qr, vec_ops, Matrix};
use proptest::prelude::*;

/// Strategy: an `n × n` matrix with entries in [-1, 1] and a diagonal boost
/// that makes it strictly diagonally dominant (hence nonsingular).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).expect("sized by construction");
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_has_small_residual((a, b) in dominant_matrix(6).prop_flat_map(|a| {
        let n = a.rows();
        (Just(a), vector(n))
    })) {
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let r = vec_ops::sub(&a.mul_vec(&x).unwrap(), &b);
        prop_assert!(vec_ops::norm_inf(&r) < 1e-9);
    }

    #[test]
    fn lu_det_sign_consistent_under_row_swap(a in dominant_matrix(4)) {
        let d = Lu::factor(&a).unwrap().det();
        let mut swapped = a.clone();
        swapped.swap_rows(0, 1);
        let d2 = Lu::factor(&swapped).unwrap().det();
        prop_assert!((d + d2).abs() <= 1e-8 * d.abs().max(1.0));
    }

    #[test]
    fn transpose_reverses_products(a in dominant_matrix(4), b in dominant_matrix(4)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.mul_mat(&b).unwrap().transpose();
        let rhs = b.transpose().mul_mat(&a.transpose()).unwrap();
        prop_assert!((&lhs - &rhs).unwrap().norm_max() < 1e-10);
    }

    #[test]
    fn least_squares_satisfies_normal_equations(
        data in prop::collection::vec(-5.0f64..5.0, 8 * 3),
        b in vector(8),
    ) {
        let mut a = Matrix::from_vec(8, 3, data).unwrap();
        // Make the columns independent by seeding an identity block.
        for j in 0..3 {
            a[(j, j)] += 10.0;
        }
        let x = qr::least_squares(&a, &b).unwrap();
        let r = vec_ops::sub(&a.mul_vec(&x).unwrap(), &b);
        let g = a.tr_mul_vec(&r).unwrap();
        prop_assert!(vec_ops::norm_inf(&g) < 1e-8);
    }

    #[test]
    fn expm_inverse_property(data in prop::collection::vec(-0.8f64..0.8, 9)) {
        let a = Matrix::from_vec(3, 3, data).unwrap();
        let e = expm(&a).unwrap();
        let einv = expm(&a.scale(-1.0)).unwrap();
        let prod = e.mul_mat(&einv).unwrap();
        let err = (&prod - &Matrix::identity(3)).unwrap().norm_max();
        prop_assert!(err < 1e-9, "err = {err}");
    }

    #[test]
    fn expm_semigroup_property(data in prop::collection::vec(-0.5f64..0.5, 9)) {
        let a = Matrix::from_vec(3, 3, data).unwrap();
        let e1 = expm(&a).unwrap();
        let e2 = expm(&a.scale(2.0)).unwrap();
        let prod = e1.mul_mat(&e1).unwrap();
        let rel = (&e2 - &prod).unwrap().norm_max() / e2.norm_max().max(1.0);
        prop_assert!(rel < 1e-9, "rel = {rel}");
    }

    #[test]
    fn rank_of_outer_product_is_at_most_one(u in vector(5), v in vector(5)) {
        let outer = Matrix::from_fn(5, 5, |i, j| u[i] * v[j]);
        prop_assert!(outer.rank(f64::EPSILON) <= 1);
    }

    #[test]
    fn norm_inequalities_hold(data in prop::collection::vec(-100.0f64..100.0, 16)) {
        let a = Matrix::from_vec(4, 4, data).unwrap();
        // ‖A‖_max ≤ ‖A‖_1, ‖A‖_∞ and ‖A‖_F ≤ sqrt(rank)·‖A‖_2 style bounds.
        prop_assert!(a.norm_max() <= a.norm_1() + 1e-12);
        prop_assert!(a.norm_max() <= a.norm_inf() + 1e-12);
        prop_assert!(a.norm_fro() <= 4.0 * a.norm_max() + 1e-12);
    }
}
