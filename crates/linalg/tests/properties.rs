//! Property-based tests for the dense linear-algebra kernels.

use idc_linalg::banded::{BlockTridiag, BlockTridiagChol};
use idc_linalg::cholesky::UpdatableCholesky;
use idc_linalg::gemm::{gemm, gemm_ws};
use idc_linalg::workspace::Workspace;
use idc_linalg::{expm::expm, lu::Lu, qr, vec_ops, Matrix};
use proptest::prelude::*;

/// Strategy: an `n × n` matrix with entries in [-1, 1] and a diagonal boost
/// that makes it strictly diagonally dominant (hence nonsingular).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).expect("sized by construction");
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_has_small_residual((a, b) in dominant_matrix(6).prop_flat_map(|a| {
        let n = a.rows();
        (Just(a), vector(n))
    })) {
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let r = vec_ops::sub(&a.mul_vec(&x).unwrap(), &b);
        prop_assert!(vec_ops::norm_inf(&r) < 1e-9);
    }

    #[test]
    fn lu_det_sign_consistent_under_row_swap(a in dominant_matrix(4)) {
        let d = Lu::factor(&a).unwrap().det();
        let mut swapped = a.clone();
        swapped.swap_rows(0, 1);
        let d2 = Lu::factor(&swapped).unwrap().det();
        prop_assert!((d + d2).abs() <= 1e-8 * d.abs().max(1.0));
    }

    #[test]
    fn transpose_reverses_products(a in dominant_matrix(4), b in dominant_matrix(4)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.mul_mat(&b).unwrap().transpose();
        let rhs = b.transpose().mul_mat(&a.transpose()).unwrap();
        prop_assert!((&lhs - &rhs).unwrap().norm_max() < 1e-10);
    }

    #[test]
    fn least_squares_satisfies_normal_equations(
        data in prop::collection::vec(-5.0f64..5.0, 8 * 3),
        b in vector(8),
    ) {
        let mut a = Matrix::from_vec(8, 3, data).unwrap();
        // Make the columns independent by seeding an identity block.
        for j in 0..3 {
            a[(j, j)] += 10.0;
        }
        let x = qr::least_squares(&a, &b).unwrap();
        let r = vec_ops::sub(&a.mul_vec(&x).unwrap(), &b);
        let g = a.tr_mul_vec(&r).unwrap();
        prop_assert!(vec_ops::norm_inf(&g) < 1e-8);
    }

    #[test]
    fn expm_inverse_property(data in prop::collection::vec(-0.8f64..0.8, 9)) {
        let a = Matrix::from_vec(3, 3, data).unwrap();
        let e = expm(&a).unwrap();
        let einv = expm(&a.scale(-1.0)).unwrap();
        let prod = e.mul_mat(&einv).unwrap();
        let err = (&prod - &Matrix::identity(3)).unwrap().norm_max();
        prop_assert!(err < 1e-9, "err = {err}");
    }

    #[test]
    fn expm_semigroup_property(data in prop::collection::vec(-0.5f64..0.5, 9)) {
        let a = Matrix::from_vec(3, 3, data).unwrap();
        let e1 = expm(&a).unwrap();
        let e2 = expm(&a.scale(2.0)).unwrap();
        let prod = e1.mul_mat(&e1).unwrap();
        let rel = (&e2 - &prod).unwrap().norm_max() / e2.norm_max().max(1.0);
        prop_assert!(rel < 1e-9, "rel = {rel}");
    }

    #[test]
    fn rank_of_outer_product_is_at_most_one(u in vector(5), v in vector(5)) {
        let outer = Matrix::from_fn(5, 5, |i, j| u[i] * v[j]);
        prop_assert!(outer.rank(f64::EPSILON) <= 1);
    }

    /// The packed SIMD GEMM agrees with the blocked `mul_mat` reference on
    /// arbitrary shapes, specifically shapes that are NOT multiples of the
    /// 4×8 microkernel tile (partial edge tiles exercise the masked
    /// write-back path).
    #[test]
    fn gemm_matches_mul_mat_on_arbitrary_shapes(
        m in 1usize..18,
        n in 1usize..21,
        k in 1usize..15,
        seed in prop::collection::vec(-3.0f64..3.0, 18 * 21),
    ) {
        let a: Vec<f64> = (0..m * k).map(|i| seed[i % seed.len()] + 0.1 * i as f64).collect();
        let b: Vec<f64> = (0..k * n).map(|i| seed[(i * 7) % seed.len()] - 0.05 * i as f64).collect();
        let am = Matrix::from_vec(m, k, a.clone()).unwrap();
        let bm = Matrix::from_vec(k, n, b.clone()).unwrap();
        let oracle = am.mul_mat(&bm).unwrap();

        let mut c = vec![f64::NAN; m * n]; // beta = 0 must not read C
        gemm(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n);
        for i in 0..m {
            for j in 0..n {
                let got = c[i * n + j];
                let want = oracle[(i, j)];
                prop_assert!(
                    (got - want).abs() <= 1e-10 * want.abs().max(1.0),
                    "({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    /// `C ← α·A·B + β·C` semantics hold, and a long-lived workspace gives
    /// bit-identical results to the allocating wrapper.
    #[test]
    fn gemm_accumulates_and_workspace_reuse_is_exact(
        m in 1usize..10,
        n in 1usize..12,
        k in 1usize..9,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.71).cos()).collect();
        let c0: Vec<f64> = (0..m * n).map(|i| 0.5 - (i % 5) as f64 * 0.25).collect();

        let mut expect = c0.clone();
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0.0;
                for l in 0..k {
                    dot += a[i * k + l] * b[l * n + j];
                }
                expect[i * n + j] = alpha * dot + beta * c0[i * n + j];
            }
        }

        let mut c = c0.clone();
        gemm(m, n, k, alpha, &a, k, &b, n, beta, &mut c, n);
        let mut ws = Workspace::new();
        let mut c_ws = c0.clone();
        // Warm the workspace on an unrelated shape first, then reuse it.
        let wa = vec![1.0; 6];
        let wb = vec![2.0; 8];
        let mut scratch = vec![0.0; 12];
        gemm_ws(3, 4, 2, 1.0, &wa, 2, &wb, 4, 0.0, &mut scratch, 4, &mut ws);
        gemm_ws(m, n, k, alpha, &a, k, &b, n, beta, &mut c_ws, n, &mut ws);

        for (idx, (&got, &want)) in c.iter().zip(&expect).enumerate() {
            prop_assert!(
                (got - want).abs() <= 1e-10 * want.abs().max(1.0),
                "idx {idx}: {got} vs {want}"
            );
        }
        prop_assert_eq!(c, c_ws); // allocation strategy must not change bits
    }

    /// Padded leading dimensions (submatrix views) read and write only the
    /// in-bounds parts of each row.
    #[test]
    fn gemm_honours_leading_dimensions(
        m in 1usize..7,
        n in 1usize..10,
        k in 1usize..6,
        pad in 1usize..4,
    ) {
        let (lda, ldb, ldc) = (k + pad, n + pad, n + pad);
        let a: Vec<f64> = (0..m * lda).map(|i| (i as f64 * 0.13).sin()).collect();
        let b: Vec<f64> = (0..k * ldb).map(|i| (i as f64 * 0.29).cos()).collect();
        let mut c: Vec<f64> = vec![7.5; m * ldc];
        gemm(m, n, k, 1.0, &a, lda, &b, ldb, 0.0, &mut c, ldc);
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0.0;
                for l in 0..k {
                    dot += a[i * lda + l] * b[l * ldb + j];
                }
                let got = c[i * ldc + j];
                prop_assert!(
                    (got - dot).abs() <= 1e-10 * dot.abs().max(1.0),
                    "({i},{j}): {got} vs {dot}"
                );
            }
            // The padding tail of each row is untouched.
            for j in n..ldc.min(c.len() - i * ldc) {
                prop_assert_eq!(c[i * ldc + j], 7.5);
            }
        }
    }

    #[test]
    fn norm_inequalities_hold(data in prop::collection::vec(-100.0f64..100.0, 16)) {
        let a = Matrix::from_vec(4, 4, data).unwrap();
        // ‖A‖_max ≤ ‖A‖_1, ‖A‖_∞ and ‖A‖_F ≤ sqrt(rank)·‖A‖_2 style bounds.
        prop_assert!(a.norm_max() <= a.norm_1() + 1e-12);
        prop_assert!(a.norm_max() <= a.norm_inf() + 1e-12);
        prop_assert!(a.norm_fro() <= 4.0 * a.norm_max() + 1e-12);
    }
}

/// Strategy: a symmetric strictly diagonally dominant (hence SPD) matrix.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = (data[i * n + j] + data[j * n + i]) / 2.0;
            }
        }
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An incrementally up/downdated factor must agree with a factor built
    /// fresh over the final index set, for arbitrary add/drop sequences —
    /// the invariant behind the active-set solvers' working-set factors.
    #[test]
    fn updatable_cholesky_add_drop_matches_fresh(
        s in spd_matrix(6),
        ops in prop::collection::vec((0usize..2, 0usize..6), 1..14),
        b in vector(6),
    ) {
        let n = 6;
        let mut fac = UpdatableCholesky::new();
        let mut active: Vec<usize> = Vec::new();
        for (add, pick) in ops {
            if add == 0 && active.len() < n {
                let unused: Vec<usize> = (0..n).filter(|g| !active.contains(g)).collect();
                let g = unused[pick % unused.len()];
                let col: Vec<f64> = active
                    .iter()
                    .chain(std::iter::once(&g))
                    .map(|&a| s[(g, a)])
                    .collect();
                fac.append(&col).unwrap();
                active.push(g);
            } else if !active.is_empty() {
                let pos = pick % active.len();
                fac.remove(pos);
                active.remove(pos);
            }
        }
        prop_assume!(!active.is_empty());
        let mut fresh = UpdatableCholesky::new();
        for (r, &gr) in active.iter().enumerate() {
            let col: Vec<f64> = active[..=r].iter().map(|&gq| s[(gr, gq)]).collect();
            fresh.append(&col).unwrap();
        }
        let mut x_inc = b[..active.len()].to_vec();
        let mut x_fresh = x_inc.clone();
        fac.solve_in_place(&mut x_inc);
        fresh.solve_in_place(&mut x_fresh);
        for (xi, xf) in x_inc.iter().zip(&x_fresh) {
            prop_assert!(
                (xi - xf).abs() <= 1e-8 * (1.0 + xf.abs()),
                "up/downdated {xi} vs fresh {xf}"
            );
        }
    }

    /// The blocked multi-row append (batched pivoting's bulk admission)
    /// must agree with row-by-row appends at any split point.
    #[test]
    fn cholesky_append_block_matches_row_appends(
        s in spd_matrix(7),
        split in 0usize..7,
        b in vector(7),
    ) {
        let n = 7;
        let col_of = |r: usize| -> Vec<f64> { (0..=r).map(|q| s[(r, q)]).collect() };
        let mut rowwise = UpdatableCholesky::new();
        for r in 0..n {
            rowwise.append(&col_of(r)).unwrap();
        }
        let mut blocked = UpdatableCholesky::new();
        for r in 0..split {
            blocked.append(&col_of(r)).unwrap();
        }
        let packed: Vec<f64> = (split..n).flat_map(col_of).collect();
        let mut ws = Workspace::new();
        blocked.append_block(n - split, &packed, &mut ws).unwrap();
        let mut x_row = b.clone();
        let mut x_blk = b;
        rowwise.solve_in_place(&mut x_row);
        blocked.solve_in_place(&mut x_blk);
        for (xr, xb) in x_row.iter().zip(&x_blk) {
            prop_assert!(
                (xr - xb).abs() <= 1e-8 * (1.0 + xr.abs()),
                "row-by-row {xr} vs blocked {xb}"
            );
        }
    }
}

proptest! {
    // The blocked path factors 128-wide blocks; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The parallel blocked banded factorization must be bitwise identical
    /// for every thread count (deterministic static partitioning).
    #[test]
    fn blocked_banded_refactor_is_bitwise_thread_independent(
        seed in 0u64..u64::MAX,
        t in 2usize..4,
    ) {
        // BLOCK_MIN-sized blocks engage the blocked/parallel path; filling
        // t·nb² entries through proptest strategies would dwarf the test,
        // so the content comes from a seeded LCG instead.
        let nb = 128;
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = BlockTridiag::new(nb, t);
        for bt in 0..t {
            for i in 0..nb {
                for j in 0..=i {
                    let v = 0.5 * next();
                    a.diag_mut(bt)[i * nb + j] = v;
                    a.diag_mut(bt)[j * nb + i] = v;
                }
                a.diag_mut(bt)[i * nb + i] += 2.0 * nb as f64;
            }
        }
        for bt in 0..t - 1 {
            for k in 0..nb * nb {
                a.sub_mut(bt)[k] = 0.25 * next();
            }
        }
        let rhs: Vec<f64> = (0..nb * t).map(|_| next()).collect();
        let mut ws = Workspace::new();
        let mut serial = BlockTridiagChol::new();
        serial.refactor_with_threads(&a, &mut ws, 1).unwrap();
        let mut x_serial = rhs.clone();
        serial.solve_in_place(&mut x_serial);
        for threads in [2usize, 3, 8] {
            let mut par = BlockTridiagChol::new();
            par.refactor_with_threads(&a, &mut ws, threads).unwrap();
            let mut x = rhs.clone();
            par.solve_in_place(&mut x);
            prop_assert!(x == x_serial, "threads={threads} diverged from serial");
        }
    }
}
