//! Robustness of the factorizations on classically ill-conditioned inputs.

use idc_linalg::eigen::spd_condition_number;
use idc_linalg::{cholesky::Cholesky, lu, qr, vec_ops, Matrix};

/// The n×n Hilbert matrix — the textbook ill-conditioned SPD matrix.
fn hilbert(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64)
}

#[test]
fn hilbert_condition_number_grows_as_expected() {
    // κ(H_4) ≈ 1.55e4, κ(H_6) ≈ 1.5e7.
    let k4 = spd_condition_number(&hilbert(4)).unwrap();
    assert!((1e4..1e5).contains(&k4), "κ(H4) = {k4}");
    let k6 = spd_condition_number(&hilbert(6)).unwrap();
    assert!((1e6..1e8).contains(&k6), "κ(H6) = {k6}");
}

#[test]
fn lu_solves_hilbert_with_bounded_residual() {
    // Solution accuracy degrades with κ, but the *residual* ‖Ax − b‖ stays
    // small — the property the KKT solves actually rely on.
    for n in [4usize, 6, 8] {
        let h = hilbert(n);
        let x_true = vec![1.0; n];
        let b = h.mul_vec(&x_true).unwrap();
        let x = lu::solve(&h, &b).unwrap();
        let r = vec_ops::sub(&h.mul_vec(&x).unwrap(), &b);
        assert!(
            vec_ops::norm_inf(&r) < 1e-12,
            "n = {n}: residual {}",
            vec_ops::norm_inf(&r)
        );
    }
}

#[test]
fn cholesky_factors_hilbert_until_numerical_breakdown() {
    // H_10 is SPD in exact arithmetic; Cholesky must either factor it or
    // report NotPositiveDefinite — never panic or return NaN.
    for n in 2..=12 {
        match Cholesky::factor(&hilbert(n)) {
            Ok(c) => {
                let rebuilt = c.l().mul_mat(&c.l().transpose()).unwrap();
                let err = (&rebuilt - &hilbert(n)).unwrap().norm_max();
                assert!(err < 1e-12, "n = {n}: reconstruction error {err}");
            }
            Err(idc_linalg::Error::NotPositiveDefinite) => {
                assert!(n >= 11, "premature breakdown at n = {n}");
            }
            Err(other) => panic!("unexpected error at n = {n}: {other}"),
        }
    }
}

#[test]
fn qr_least_squares_handles_nearly_collinear_columns() {
    // Two columns differing by 1e-7: rank-deficient to loose tolerances,
    // still solvable; the residual must remain orthogonal to the columns.
    let a = Matrix::from_fn(6, 2, |i, j| {
        let base = (i as f64 + 1.0).sqrt();
        if j == 0 {
            base
        } else {
            base + 1e-7 * i as f64
        }
    });
    let b: Vec<f64> = (0..6).map(|i| (i as f64 * 0.7).cos()).collect();
    let x = qr::least_squares(&a, &b).unwrap();
    let r = vec_ops::sub(&a.mul_vec(&x).unwrap(), &b);
    let g = a.tr_mul_vec(&r).unwrap();
    assert!(vec_ops::norm_inf(&g) < 1e-6, "gradient {g:?}");
}

#[test]
fn scaled_systems_solve_across_ten_orders_of_magnitude() {
    // Mixed-unit systems (MW vs req/s) produce badly scaled matrices; the
    // partial-pivoting LU must cope.
    let a = Matrix::from_rows(&[&[1e-6, 2.0, 0.0], &[3.0, 1e6, 1.0], &[0.0, 4.0, 1e-3]]).unwrap();
    let x_true = [2.0, -1e-5, 30.0];
    let b = a.mul_vec(&x_true).unwrap();
    let x = lu::solve(&a, &b).unwrap();
    for (xi, ti) in x.iter().zip(&x_true) {
        assert!((xi - ti).abs() < 1e-9 * ti.abs().max(1.0), "{xi} vs {ti}");
    }
}
