//! The runtime's error type: wraps control-stack and I/O failures and adds
//! snapshot/configuration variants of its own.

use std::fmt;

/// Errors produced by the online runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The control/simulation stack failed.
    Core(idc_core::Error),
    /// Filesystem or socket I/O failed.
    Io(std::io::Error),
    /// A snapshot could not be written, parsed or validated.
    Snapshot(String),
    /// Invalid runtime configuration (unknown scenario key, bad flag).
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "control stack failure: {e}"),
            Error::Io(e) => write!(f, "i/o failure: {e}"),
            Error::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            Error::Config(msg) => write!(f, "runtime configuration error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Snapshot(_) | Error::Config(_) => None,
        }
    }
}

impl From<idc_core::Error> for Error {
    fn from(e: idc_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
