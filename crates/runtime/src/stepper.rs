//! The event-driven online stepper: the batch simulator's per-step dynamics
//! re-expressed over streaming feeds, with held-last-value staleness
//! handling, checkpoint/restore and metrics.
//!
//! # Batch equivalence
//!
//! With fault-free feeds, [`Stepper`] reproduces
//! [`idc_core::simulation::Simulator::run`] *bit for bit*: the workload
//! feed draws noise in the batch simulator's exact RNG order, the price
//! feed closes the same demand→price feedback loop on the previous step's
//! power, and the accounting (admission control, latency classification,
//! cost integration) is the same arithmetic in the same order. The
//! `runtime_soak` bin asserts this equivalence on a full simulated day.
//!
//! # Staleness policy
//!
//! Each fast tick the stepper ingests whatever the feeds delivered and
//! holds the newest observation per feed (hold-last-value). When the newest
//! held observation of *either* feed is older than
//! [`StepperConfig::max_staleness_ticks`], the stepper stops trusting the
//! MPC pipeline for that step and degrades to the policy's
//! capacity-proportional fallback via [`MpcPolicy::degrade`], counting the
//! degradation. Observations never arrived count as infinitely stale.

use std::sync::Arc;
use std::time::Instant;

use idc_core::clock::Clock;
use idc_core::feed::{BoundedIngest, Observation, PriceFeed, WorkloadFeed};
use idc_core::policy::{MpcPolicy, MpcPolicyConfig, Policy, StepContext};
use idc_core::scenario::Scenario;
use idc_core::SolverBackend;
use idc_datacenter::idc::LatencyStatus;

use crate::error::Error;
use crate::feed::{FeedFaults, OverloadFaults, TracePriceFeed, TraceWorkloadFeed};
use crate::metrics::MetricsRegistry;
use crate::snapshot::{FeedFaultsSnap, HeldSnap, RuntimeSnapshot, SNAPSHOT_VERSION};
use crate::Result;

/// Bucket bounds (seconds) for the per-step wall-clock histogram.
const STEP_DURATION_BOUNDS: [f64; 8] = [0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.1, 1.0];

/// Configuration of an online run.
#[derive(Debug, Clone)]
pub struct StepperConfig {
    /// Scenario registry key (see [`crate::registry::SCENARIO_KEYS`]).
    pub scenario_key: String,
    /// Workload-noise seed.
    pub seed: u64,
    /// Run length override in sampling periods (`None` = scenario default).
    pub num_steps: Option<usize>,
    /// Ticks a held observation may age before the stepper degrades.
    pub max_staleness_ticks: u64,
    /// Fault schedule for the workload feed.
    pub workload_faults: FeedFaults,
    /// Fault schedule for the price feed.
    pub price_faults: FeedFaults,
    /// Solver-backend label (see [`parse_backend`]); `None` keeps the
    /// paper-tuned default. Part of the checkpoint identity: a tenant
    /// restored from a snapshot re-solves on the backend it ran on.
    pub backend: Option<String>,
    /// Per-tick, per-feed admission bound (0 = unbounded). Applied after
    /// overload amplification, before held-value ingest.
    pub ingest_bound: usize,
    /// Burst-overload schedule applied to both feeds (see
    /// [`OverloadFaults`]).
    pub overload: OverloadFaults,
}

impl StepperConfig {
    /// A fault-free run of the named scenario with the given seed.
    pub fn fault_free(scenario_key: &str, seed: u64) -> Self {
        StepperConfig {
            scenario_key: scenario_key.to_string(),
            seed,
            num_steps: None,
            max_staleness_ticks: 3,
            workload_faults: FeedFaults::none(),
            price_faults: FeedFaults::none(),
            backend: None,
            ingest_bound: 0,
            overload: OverloadFaults::none(),
        }
    }
}

/// Parses a solver-backend label: `dense` (condensed dense active-set,
/// the default), `banded` (banded Riccati) or `sharded[N]` (ADMM-style
/// consensus across `N` shards). Returns `None` for anything else.
pub fn parse_backend(label: &str) -> Option<SolverBackend> {
    match label {
        "dense" => Some(SolverBackend::CondensedDense),
        "banded" => Some(SolverBackend::BandedRiccati),
        _ => {
            let shards: usize = label
                .strip_prefix("sharded[")?
                .strip_suffix(']')?
                .parse()
                .ok()?;
            if shards == 0 {
                return None;
            }
            Some(SolverBackend::sharded(shards))
        }
    }
}

/// Builds the paper-tuned policy for `scenario`, optionally overriding
/// the solver backend by label.
fn build_policy(scenario: &Scenario, backend: Option<&str>) -> Result<MpcPolicy> {
    let mut config = MpcPolicyConfig {
        budgets: scenario.budgets().cloned(),
        ..MpcPolicyConfig::default()
    };
    if let Some(label) = backend {
        config.mpc.backend = parse_backend(label)
            .ok_or_else(|| Error::Config(format!("unknown backend '{label}'")))?;
    }
    Ok(MpcPolicy::new(config)?)
}

/// A held last-value observation.
#[derive(Debug, Clone)]
struct Held {
    value: Vec<f64>,
    updated_tick: Option<u64>,
}

impl Held {
    fn ingest(&mut self, obs: Vec<Observation<Vec<f64>>>) {
        for o in obs {
            if self.updated_tick.is_none_or(|t| o.tick > t) {
                self.updated_tick = Some(o.tick);
                self.value = o.value;
            }
        }
    }

    /// Age of the held observation at `tick`; never-arrived counts as
    /// one past the maximum representable staleness at this tick.
    fn staleness(&self, tick: u64) -> u64 {
        match self.updated_tick {
            Some(t) => tick.saturating_sub(t),
            None => tick + 1,
        }
    }

    fn snap(&self) -> HeldSnap {
        HeldSnap {
            value: self.value.clone(),
            updated_tick: self.updated_tick,
        }
    }

    fn from_snap(s: &HeldSnap) -> Self {
        Held {
            value: s.value.clone(),
            updated_tick: s.updated_tick,
        }
    }
}

/// The online two-time-scale control stepper.
#[derive(Debug)]
pub struct Stepper {
    config: StepperConfig,
    scenario: Scenario,
    policy: MpcPolicy,
    workload_feed: TraceWorkloadFeed,
    price_feed: TracePriceFeed,
    workload_ingest: BoundedIngest,
    price_ingest: BoundedIngest,
    held_offered: Held,
    held_prices: Held,
    step: u64,
    last_power_mw: Vec<f64>,
    accumulated_cost: f64,
    latency_ok: u64,
    offered_volume: f64,
    shed_volume: f64,
    degraded_steps: u64,
    power_mw: Vec<Vec<f64>>,
    servers: Vec<Vec<u64>>,
    cost_cumulative: Vec<f64>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Stepper {
    /// Builds a stepper at step 0, with the policy initialized exactly as
    /// the batch simulator initializes it (init-hour prices, zero own-load
    /// feedback, base offered workloads).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for an unknown scenario key and propagates
    /// policy construction failures.
    pub fn new(config: StepperConfig) -> Result<Self> {
        let scenario =
            crate::registry::scenario_by_key(&config.scenario_key, config.seed, config.num_steps)
                .ok_or_else(|| {
                Error::Config(format!("unknown scenario key '{}'", config.scenario_key))
            })?;
        let fleet = scenario.fleet();
        let n = fleet.num_idcs();
        let base_offered = fleet.offered_workloads();
        let init_prices = scenario
            .pricing()
            .prices(scenario.init_hour(), &vec![0.0; n]);

        let mut policy = build_policy(&scenario, config.backend.as_deref())?;
        let init_ctx = StepContext {
            step: 0,
            hour: scenario.init_hour(),
            dt_hours: scenario.ts_hours(),
            prices: init_prices.clone(),
            offered: base_offered.clone(),
            idcs: fleet.idcs(),
        };
        policy.initialize(&init_ctx)?;

        let workload_feed = TraceWorkloadFeed::new(&scenario, config.workload_faults);
        let price_feed = TracePriceFeed::new(&scenario, config.price_faults);
        let workload_ingest = BoundedIngest::new(config.ingest_bound);
        let price_ingest = BoundedIngest::new(config.ingest_bound);
        Ok(Stepper {
            config,
            policy,
            workload_feed,
            price_feed,
            workload_ingest,
            price_ingest,
            held_offered: Held {
                value: base_offered,
                updated_tick: None,
            },
            held_prices: Held {
                value: init_prices,
                updated_tick: None,
            },
            step: 0,
            last_power_mw: vec![0.0; n],
            accumulated_cost: 0.0,
            latency_ok: 0,
            offered_volume: 0.0,
            shed_volume: 0.0,
            degraded_steps: 0,
            power_mw: vec![Vec::new(); n],
            servers: vec![Vec::new(); n],
            cost_cumulative: Vec::new(),
            metrics: None,
            scenario,
        })
    }

    /// Attaches a metrics registry; every subsequent step updates it.
    pub fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        for (base, help) in [
            ("idc_steps_total", "Control steps completed."),
            (
                "idc_degraded_steps_total",
                "Steps served by the staleness fallback instead of the solver.",
            ),
            (
                "idc_fallback_steps_total",
                "Steps where the policy fell back (infeasible QP or injected failure).",
            ),
            (
                "idc_solver_warm_solves_total",
                "MPC solves warm-started from the previous step.",
            ),
            ("idc_solver_cold_solves_total", "MPC solves from scratch."),
            (
                "idc_qp_iterations_total",
                "Active-set QP iterations across all solves.",
            ),
            (
                "idc_qp_constraints_added_total",
                "Constraints activated by blocking ratio tests.",
            ),
            (
                "idc_qp_constraints_dropped_total",
                "Constraints deactivated on negative multipliers.",
            ),
            (
                "idc_qp_degenerate_pops_total",
                "Constraints popped on singular KKT factorizations.",
            ),
            (
                "idc_qp_bland_switches_total",
                "Dantzig-to-Bland pivot rule switches (anti-cycling).",
            ),
            (
                "idc_qp_refinement_passes_total",
                "Iterative refinement passes inside KKT solves.",
            ),
            (
                "idc_qp_refactorizations_total",
                "Full rebuilds of the working-set factor (cold builds and stability rebuilds).",
            ),
            (
                "idc_qp_updates_applied_total",
                "Incremental working-set factor updates (constraint adds absorbed in place).",
            ),
            (
                "idc_qp_downdates_applied_total",
                "Incremental working-set factor downdates (constraint drops absorbed in place).",
            ),
            (
                "idc_qp_working_set_delta",
                "Working-set churn: symmetric difference between warm seed and converged set (cumulative).",
            ),
            (
                "idc_qp_cold_fallbacks_total",
                "Warm-start attempts that failed and re-solved cold.",
            ),
            (
                "idc_outer_iterations_total",
                "Sharded-backend outer coordination rounds (zero for monolithic backends).",
            ),
            (
                "idc_consensus_residual_nano",
                "Last sharded solve's consensus primal residual, in nano-units (req/s scale).",
            ),
            (
                "idc_qp_warm_seed_survival",
                "Fraction of offered warm-seed constraints accepted (cumulative).",
            ),
            (
                "idc_accumulated_cost_dollars",
                "Electricity cost accumulated over the run.",
            ),
            (
                "idc_feed_staleness_ticks",
                "Age of the oldest held feed value at the last step.",
            ),
            (
                "idc_feed_shed_total",
                "Observations shed by feed admission control.",
            ),
            (
                "idc_latency_ok_fraction",
                "Fraction of (IDC, step) pairs meeting the latency bound.",
            ),
            ("idc_step", "Next step index to execute."),
            ("idc_power_mw", "Per-IDC electric power draw."),
            ("idc_servers_on", "Per-IDC active server count."),
            (
                "idc_policy_phase_ns_total",
                "Cumulative policy time per pipeline phase.",
            ),
            (
                "idc_step_duration_seconds",
                "Wall-clock duration of one control step.",
            ),
            (
                "idc_snapshots_written_total",
                "Checkpoints written by the daemon.",
            ),
        ] {
            registry.describe(base, help);
        }
        self.metrics = Some(registry);
    }

    /// The scenario being run.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The run configuration.
    pub fn config(&self) -> &StepperConfig {
        &self.config
    }

    /// Next step to execute (steps `0..step()` are accounted).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Total steps of the run.
    pub fn num_steps(&self) -> u64 {
        self.scenario.num_steps() as u64
    }

    /// Whether the run has consumed every step.
    pub fn is_finished(&self) -> bool {
        self.step >= self.num_steps()
    }

    /// Accumulated electricity cost so far ($).
    pub fn accumulated_cost(&self) -> f64 {
        self.accumulated_cost
    }

    /// Cumulative cost after each executed step.
    pub fn cost_cumulative(&self) -> &[f64] {
        &self.cost_cumulative
    }

    /// Power trajectory of IDC `j` so far (MW).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn power_mw(&self, j: usize) -> &[f64] {
        &self.power_mw[j]
    }

    /// Server trajectory of IDC `j` so far.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn servers(&self, j: usize) -> &[u64] {
        &self.servers[j]
    }

    /// Steps served by the degraded fallback path because of feed
    /// staleness.
    pub fn degraded_steps(&self) -> u64 {
        self.degraded_steps
    }

    /// Observations shed by feed admission control, as
    /// `(workload, price)`. Zero unless an ingest bound is configured and
    /// something (a burst schedule, a fault backlog) exceeded it.
    pub fn shed_observations(&self) -> (u64, u64) {
        (self.workload_ingest.shed(), self.price_ingest.shed())
    }

    /// Fraction of (IDC, step) pairs that met the latency bound so far.
    pub fn latency_ok_fraction(&self) -> f64 {
        let denom = self.step * self.power_mw.len() as u64;
        if denom == 0 {
            return 1.0;
        }
        self.latency_ok as f64 / denom as f64
    }

    /// The controller driving this run.
    pub fn policy(&self) -> &MpcPolicy {
        &self.policy
    }

    /// Executes one fast tick. Returns `false` (without stepping) once the
    /// run is complete.
    ///
    /// # Errors
    ///
    /// Propagates policy failures and rejects decisions that violate the
    /// same invariants the batch simulator enforces (dimension mismatch,
    /// lost workload).
    pub fn step_once(&mut self) -> Result<bool> {
        if self.is_finished() {
            return Ok(false);
        }
        let _step_span = idc_obs::Span::enter_cat("runtime.step", "runtime");
        let wall_start = Instant::now();
        let k = self.step;
        let fleet = self.scenario.fleet();
        let n = fleet.num_idcs();
        let ts = self.scenario.ts_hours();
        let hour = self.scenario.start_hour() + k as f64 * ts;

        // ---- Ingest feeds: amplify (overload faults), admit (bounded
        // ingest), hold newest-stamp-wins. ----
        let mut workload_batch = self.workload_feed.poll(k);
        self.config.overload.amplify(k, &mut workload_batch);
        self.held_offered
            .ingest(self.workload_ingest.admit(workload_batch));
        let mut price_batch = self.price_feed.poll(k, hour, &self.last_power_mw);
        self.config.overload.amplify(k, &mut price_batch);
        self.held_prices
            .ingest(self.price_ingest.admit(price_batch));

        // ---- Offered workload + admission control (batch-identical). ----
        let mut offered = self.held_offered.value.clone();
        let total_offered: f64 = offered.iter().sum();
        self.offered_volume += total_offered;
        let admission_cap = fleet.total_capacity() * 0.999;
        if total_offered > admission_cap {
            let scale = admission_cap / total_offered;
            for v in &mut offered {
                *v *= scale;
            }
            self.shed_volume += total_offered - admission_cap;
        }
        let prices = self.held_prices.value.clone();

        // ---- Staleness gate. ----
        let staleness = self
            .held_offered
            .staleness(k)
            .max(self.held_prices.staleness(k));
        let degraded = staleness > self.config.max_staleness_ticks;

        let ctx = StepContext {
            step: k as usize,
            hour,
            dt_hours: ts,
            prices: prices.clone(),
            offered: offered.clone(),
            idcs: fleet.idcs(),
        };
        let decision = if degraded {
            self.degraded_steps += 1;
            self.policy.degrade(&ctx)?
        } else {
            self.policy.decide(&ctx)?
        };

        // ---- Validate (same invariants as the batch simulator). ----
        if decision.servers_on.len() != n
            || decision.allocation.idcs() != n
            || decision.allocation.portals() != offered.len()
        {
            return Err(Error::Core(idc_core::Error::Config(format!(
                "policy '{}' returned a decision with wrong dimensions",
                self.policy.name()
            ))));
        }
        if !decision.allocation.conserves_workload(&offered, 1e-3) {
            return Err(Error::Core(idc_core::Error::Config(format!(
                "policy '{}' lost workload at step {k}",
                self.policy.name()
            ))));
        }

        // ---- Account (batch-identical arithmetic and order). ----
        let per_idc = fleet.per_idc_power_mw(&decision.servers_on, &decision.allocation);
        for j in 0..n {
            self.power_mw[j].push(per_idc[j]);
            self.servers[j].push(decision.servers_on[j]);
            if fleet.idcs()[j]
                .latency_status(decision.servers_on[j], decision.allocation.idc_total(j))
                == LatencyStatus::WithinBound
            {
                self.latency_ok += 1;
            }
        }
        self.accumulated_cost += per_idc
            .iter()
            .zip(&prices)
            .map(|(&p, &pr)| p * pr * ts)
            .sum::<f64>();
        self.cost_cumulative.push(self.accumulated_cost);
        self.last_power_mw = per_idc;
        self.step += 1;

        if let Some(m) = self.metrics.clone() {
            self.publish_metrics(&m, staleness, wall_start.elapsed().as_secs_f64());
        }
        Ok(true)
    }

    /// Runs every remaining step, pacing each tick through `clock`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`step_once`](Self::step_once) failure.
    pub fn run(&mut self, clock: &mut dyn Clock) -> Result<()> {
        while !self.is_finished() {
            clock.wait_for_step(self.step);
            self.step_once()?;
        }
        Ok(())
    }

    fn publish_metrics(&self, m: &MetricsRegistry, staleness: u64, step_seconds: f64) {
        m.inc_counter("idc_steps_total", 1);
        m.set_counter("idc_degraded_steps_total", self.degraded_steps);
        m.set_counter(
            "idc_fallback_steps_total",
            self.policy.fallback_steps().len() as u64,
        );
        let (warm, cold) = self.policy.controller().solve_counters();
        m.set_counter("idc_solver_warm_solves_total", warm as u64);
        m.set_counter("idc_solver_cold_solves_total", cold as u64);
        let stats = self.policy.solve_stats();
        m.set_counter("idc_qp_iterations_total", stats.iterations);
        m.set_counter("idc_qp_constraints_added_total", stats.constraints_added);
        m.set_counter(
            "idc_qp_constraints_dropped_total",
            stats.constraints_dropped,
        );
        m.set_counter("idc_qp_degenerate_pops_total", stats.degenerate_pops);
        m.set_counter("idc_qp_bland_switches_total", stats.bland_switches);
        m.set_counter("idc_qp_refinement_passes_total", stats.refinement_passes);
        m.set_counter("idc_qp_refactorizations_total", stats.refactorizations);
        m.set_counter("idc_qp_updates_applied_total", stats.updates_applied);
        m.set_counter("idc_qp_downdates_applied_total", stats.downdates_applied);
        m.set_counter("idc_qp_working_set_delta", stats.working_set_delta);
        m.set_counter("idc_qp_cold_fallbacks_total", stats.cold_fallbacks);
        m.set_counter("idc_outer_iterations_total", stats.outer_iterations);
        m.set_counter("idc_consensus_residual_nano", stats.consensus_residual_nano);
        m.set_gauge("idc_qp_warm_seed_survival", stats.seed_survival());
        m.set_gauge("idc_accumulated_cost_dollars", self.accumulated_cost);
        m.set_gauge("idc_feed_staleness_ticks", staleness as f64);
        let (w_shed, p_shed) = self.shed_observations();
        m.set_counter("idc_feed_shed_total", w_shed + p_shed);
        m.set_gauge("idc_latency_ok_fraction", self.latency_ok_fraction());
        m.set_gauge("idc_step", self.step as f64);
        for (j, idc) in self.scenario.fleet().idcs().iter().enumerate() {
            m.set_gauge(
                &format!("idc_power_mw{{idc=\"{}\"}}", idc.name()),
                self.last_power_mw[j],
            );
            m.set_gauge(
                &format!("idc_servers_on{{idc=\"{}\"}}", idc.name()),
                *self.servers[j].last().unwrap_or(&0) as f64,
            );
        }
        let phases = self.policy.phase_breakdown();
        for (phase, ns) in [
            ("refresh", phases.refresh_ns),
            ("factor", phases.factor_ns),
            ("condense", phases.condense_ns),
            ("solve", phases.solve_ns),
            ("reference", phases.reference_ns),
        ] {
            m.set_counter(
                &format!("idc_policy_phase_ns_total{{phase=\"{phase}\"}}"),
                ns,
            );
        }
        m.observe(
            "idc_step_duration_seconds",
            &STEP_DURATION_BOUNDS,
            step_seconds,
        );
    }

    /// Exports the complete resume state. `restore` on the result yields a
    /// stepper whose remaining trajectory is bit-for-bit the one this
    /// stepper would produce.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            version: SNAPSHOT_VERSION,
            scenario_key: self.config.scenario_key.clone(),
            seed: self.config.seed,
            num_steps: self.num_steps(),
            step: self.step,
            max_staleness_ticks: self.config.max_staleness_ticks,
            backend: self.config.backend.clone(),
            ingest_bound: self.config.ingest_bound as u64,
            workload_shed: self.workload_ingest.shed(),
            price_shed: self.price_ingest.shed(),
            overload: self.config.overload.state(),
            workload_faults: self.config.workload_faults.state(),
            price_faults: self.config.price_faults.state(),
            workload_feed: self.workload_feed.state(),
            price_feed: self.price_feed.state(),
            held_offered: self.held_offered.snap(),
            held_prices: self.held_prices.snap(),
            last_power_mw: self.last_power_mw.clone(),
            accumulated_cost: self.accumulated_cost,
            latency_ok: self.latency_ok,
            offered_volume: self.offered_volume,
            shed_volume: self.shed_volume,
            degraded_steps: self.degraded_steps,
            power_mw: self.power_mw.clone(),
            servers: self.servers.clone(),
            cost_cumulative: self.cost_cumulative.clone(),
            policy: self.policy.snapshot(),
        }
    }

    /// Rebuilds a stepper from a [`snapshot`](Self::snapshot) export: the
    /// scenario is reconstructed from its registry key, the feeds are
    /// fast-forwarded to their cursors, and the policy state is restored
    /// in full.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] / [`Error::Config`] when the snapshot
    /// fails validation or is inconsistent with the rebuilt scenario.
    pub fn restore(snapshot: &RuntimeSnapshot) -> Result<Self> {
        snapshot.validate()?;
        let workload_faults = FeedFaults::from_state(&snapshot.workload_faults)
            .ok_or_else(|| bad_faults(&snapshot.workload_faults))?;
        let price_faults = FeedFaults::from_state(&snapshot.price_faults)
            .ok_or_else(|| bad_faults(&snapshot.price_faults))?;
        let overload = OverloadFaults::from_state(&snapshot.overload).ok_or_else(|| {
            Error::Snapshot(format!(
                "overload schedule has out-of-range burst rate {} per mille",
                snapshot.overload.burst_per_mille
            ))
        })?;
        let config = StepperConfig {
            scenario_key: snapshot.scenario_key.clone(),
            seed: snapshot.seed,
            num_steps: Some(snapshot.num_steps as usize),
            max_staleness_ticks: snapshot.max_staleness_ticks,
            workload_faults,
            price_faults,
            backend: snapshot.backend.clone(),
            ingest_bound: snapshot.ingest_bound as usize,
            overload,
        };
        let scenario =
            crate::registry::scenario_by_key(&config.scenario_key, config.seed, config.num_steps)
                .ok_or_else(|| {
                Error::Snapshot(format!(
                    "snapshot names unknown scenario '{}'",
                    config.scenario_key
                ))
            })?;
        let n = scenario.fleet().num_idcs();
        if snapshot.last_power_mw.len() != n {
            return Err(Error::Snapshot(format!(
                "snapshot has {} IDCs but scenario '{}' has {n}",
                snapshot.last_power_mw.len(),
                config.scenario_key
            )));
        }
        let mut policy = build_policy(&scenario, config.backend.as_deref())?;
        policy.restore(&snapshot.policy)?;
        let workload_feed =
            TraceWorkloadFeed::from_state(&scenario, workload_faults, &snapshot.workload_feed);
        let price_feed = TracePriceFeed::from_state(&scenario, price_faults, &snapshot.price_feed);
        let workload_ingest = BoundedIngest::restore(config.ingest_bound, snapshot.workload_shed);
        let price_ingest = BoundedIngest::restore(config.ingest_bound, snapshot.price_shed);
        Ok(Stepper {
            config,
            policy,
            workload_feed,
            price_feed,
            workload_ingest,
            price_ingest,
            held_offered: Held::from_snap(&snapshot.held_offered),
            held_prices: Held::from_snap(&snapshot.held_prices),
            step: snapshot.step,
            last_power_mw: snapshot.last_power_mw.clone(),
            accumulated_cost: snapshot.accumulated_cost,
            latency_ok: snapshot.latency_ok,
            offered_volume: snapshot.offered_volume,
            shed_volume: snapshot.shed_volume,
            degraded_steps: snapshot.degraded_steps,
            power_mw: snapshot.power_mw.clone(),
            servers: snapshot.servers.clone(),
            cost_cumulative: snapshot.cost_cumulative.clone(),
            metrics: None,
            scenario,
        })
    }
}

fn bad_faults(snap: &FeedFaultsSnap) -> Error {
    Error::Snapshot(format!(
        "fault schedule has out-of-range drop rate {} per mille",
        snap.drop_per_mille
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idc_core::clock::SimClock;
    use idc_core::simulation::Simulator;

    #[test]
    fn fault_free_run_matches_batch_simulator_bit_for_bit() {
        let config = StepperConfig::fault_free("smoothing", 2012);
        let mut stepper = Stepper::new(config).unwrap();
        stepper.run(&mut SimClock).unwrap();
        assert_eq!(stepper.degraded_steps(), 0);

        let scenario = crate::registry::scenario_by_key("smoothing", 2012, None).unwrap();
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        let batch = Simulator::new().run(&scenario, &mut policy).unwrap();

        assert_eq!(
            stepper.cost_cumulative().len(),
            batch.cost_cumulative().len()
        );
        for (a, b) in stepper
            .cost_cumulative()
            .iter()
            .zip(batch.cost_cumulative())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for j in 0..3 {
            assert_eq!(stepper.power_mw(j).len(), batch.power_mw(j).len());
            for (a, b) in stepper.power_mw(j).iter().zip(batch.power_mw(j)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(stepper.servers(j), batch.servers(j));
        }
        assert_eq!(stepper.latency_ok_fraction(), batch.latency_ok_fraction());
    }

    #[test]
    fn snapshot_restore_mid_run_is_bit_identical() {
        let config = StepperConfig {
            workload_faults: FeedFaults::new(5, 0.15, 2),
            price_faults: FeedFaults::new(17, 0.15, 2),
            max_staleness_ticks: 1,
            ..StepperConfig::fault_free("smoothing", 2012)
        };
        let mut live = Stepper::new(config.clone()).unwrap();
        for _ in 0..12 {
            live.step_once().unwrap();
        }
        let snap = live.snapshot();
        let mut resumed = Stepper::restore(&snap).unwrap();
        while live.step_once().unwrap() {
            assert!(resumed.step_once().unwrap());
        }
        assert!(!resumed.step_once().unwrap());
        assert_eq!(
            live.accumulated_cost().to_bits(),
            resumed.accumulated_cost().to_bits()
        );
        for j in 0..3 {
            for (a, b) in live.power_mw(j).iter().zip(resumed.power_mw(j)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(live.degraded_steps(), resumed.degraded_steps());
        // And their end-of-run snapshots agree entirely.
        assert_eq!(live.snapshot(), resumed.snapshot());
    }

    #[test]
    fn total_feed_loss_degrades_every_late_step() {
        let config = StepperConfig {
            // Drop every workload sample: after max_staleness_ticks the
            // stepper must degrade and keep serving the held workload.
            workload_faults: FeedFaults::new(1, 1.0, 0),
            max_staleness_ticks: 2,
            ..StepperConfig::fault_free("smoothing", 2012)
        };
        let mut stepper = Stepper::new(config).unwrap();
        stepper.run(&mut SimClock).unwrap();
        // Ticks 0 and 1 are within the staleness budget (never-arrived
        // counts tick+1); everything after degrades.
        assert_eq!(stepper.degraded_steps(), stepper.num_steps() - 2);
        assert!(stepper.accumulated_cost().is_finite());
        assert!(stepper.accumulated_cost() > 0.0);
        assert_eq!(
            stepper.policy().fallback_steps().len() as u64,
            stepper.degraded_steps()
        );
    }

    #[test]
    fn unknown_scenario_key_is_rejected() {
        let err = Stepper::new(StepperConfig::fault_free("nope", 1)).unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn backend_labels_parse_and_select_the_solver() {
        use idc_core::SolverBackend;
        assert_eq!(parse_backend("dense"), Some(SolverBackend::CondensedDense));
        assert_eq!(parse_backend("banded"), Some(SolverBackend::BandedRiccati));
        assert!(matches!(
            parse_backend("sharded[3]"),
            Some(SolverBackend::Sharded { shards: 3, .. })
        ));
        for bad in ["", "Dense", "sharded[0]", "sharded[x]", "sharded[2"] {
            assert_eq!(parse_backend(bad), None, "{bad:?} parsed");
        }
        let err = Stepper::new(StepperConfig {
            backend: Some("warp".into()),
            ..StepperConfig::fault_free("smoothing", 1)
        })
        .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn non_default_backend_survives_snapshot_restore() {
        let config = StepperConfig {
            backend: Some("banded".into()),
            ..StepperConfig::fault_free("smoothing", 2012)
        };
        let mut live = Stepper::new(config).unwrap();
        for _ in 0..8 {
            live.step_once().unwrap();
        }
        let snap = live.snapshot();
        assert_eq!(snap.backend.as_deref(), Some("banded"));
        let mut resumed = Stepper::restore(&snap).unwrap();
        while live.step_once().unwrap() {
            assert!(resumed.step_once().unwrap());
        }
        assert_eq!(live.snapshot(), resumed.snapshot());
    }

    #[test]
    fn overload_bursts_shed_without_moving_the_trajectory() {
        // Quiet reference run.
        let mut quiet = Stepper::new(StepperConfig::fault_free("smoothing", 2012)).unwrap();
        quiet.run(&mut SimClock).unwrap();
        assert_eq!(quiet.shed_observations(), (0, 0));

        // Same loop under a heavy burst schedule with a bound that admits
        // every genuine arrival (fault-free feeds deliver exactly one
        // observation per tick): the duplicates all shed, the trajectory
        // does not move.
        let config = StepperConfig {
            overload: OverloadFaults::new(9, 400, 8),
            ingest_bound: 2,
            ..StepperConfig::fault_free("smoothing", 2012)
        };
        let mut bursty = Stepper::new(config).unwrap();
        bursty.run(&mut SimClock).unwrap();
        let (w_shed, p_shed) = bursty.shed_observations();
        assert!(w_shed > 0, "no workload observations shed");
        assert!(p_shed > 0, "no price observations shed");
        assert_eq!(
            quiet.accumulated_cost().to_bits(),
            bursty.accumulated_cost().to_bits()
        );
        for j in 0..3 {
            assert_eq!(quiet.power_mw(j), bursty.power_mw(j));
            assert_eq!(quiet.servers(j), bursty.servers(j));
        }

        // And the shed counters survive checkpoint/restore mid-run.
        let mut live = Stepper::new(bursty.config().clone()).unwrap();
        for _ in 0..12 {
            live.step_once().unwrap();
        }
        let snap = live.snapshot();
        let mut resumed = Stepper::restore(&snap).unwrap();
        assert_eq!(resumed.shed_observations(), live.shed_observations());
        while live.step_once().unwrap() {
            assert!(resumed.step_once().unwrap());
        }
        assert_eq!(live.snapshot(), resumed.snapshot());
        assert_eq!(live.shed_observations(), (w_shed, p_shed));
    }
}
