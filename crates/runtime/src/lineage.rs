//! Per-tenant checkpoint lineages: a directory of step-stamped snapshots
//! with keep-last-K compaction and startup garbage collection.
//!
//! One lineage owns one directory. Checkpoints are written as
//! `ckpt-<step>.json` (zero-padded so lexical and numeric order agree)
//! through [`RuntimeSnapshot::write_atomic`]'s tmp+fsync+rename protocol,
//! then the lineage *compacts*: everything but the newest `keep_last`
//! snapshots is deleted — strictly after the new snapshot is durable, so
//! compaction can never leave the lineage without its newest restorable
//! state, whatever instant the process is killed at.
//!
//! [`open`](CheckpointLineage::open) garbage-collects the wreckage of a
//! kill: `.tmp` partials (a rename that never happened) are removed, and
//! corrupt or truncated `ckpt-*.json` files are removed and logged —
//! [`latest_restorable`](CheckpointLineage::latest_restorable) therefore
//! only ever resumes from a snapshot that parses and validates.

use std::fs;
use std::path::{Path, PathBuf};

use crate::snapshot::RuntimeSnapshot;
use crate::Result;

/// Width of the zero-padded step in a checkpoint file name.
const STEP_WIDTH: usize = 20;

/// A tenant's checkpoint directory with keep-last-K retention.
#[derive(Debug, Clone)]
pub struct CheckpointLineage {
    dir: PathBuf,
    keep_last: usize,
}

/// Parses the step out of a `ckpt-<step>.json` file name.
fn step_of(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

impl CheckpointLineage {
    /// Opens (creating if needed) the lineage at `dir`, retaining the
    /// newest `keep_last` checkpoints (clamped to at least 1), and
    /// garbage-collects leftovers of an unclean death: `.tmp` partials
    /// are removed silently, corrupt/truncated `ckpt-*.json` are removed
    /// and logged to stderr (and to the anomaly log when one is wired).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the directory cannot be created or
    /// scanned.
    pub fn open(dir: impl Into<PathBuf>, keep_last: usize) -> Result<Self> {
        let lineage = CheckpointLineage {
            dir: dir.into(),
            keep_last: keep_last.max(1),
        };
        fs::create_dir_all(&lineage.dir)?;
        for (step, path) in lineage.scan()? {
            if RuntimeSnapshot::read(&path).is_err() {
                eprintln!(
                    "lineage: GC of corrupt checkpoint {} (step {step})",
                    path.display()
                );
                idc_obs::record_anomaly("checkpoint_gc", step, &[]);
                fs::remove_file(&path)?;
            }
        }
        Ok(lineage)
    }

    /// The lineage directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The checkpoint path for `step`.
    pub fn path_for(&self, step: u64) -> PathBuf {
        self.dir
            .join(format!("ckpt-{step:0w$}.json", w = STEP_WIDTH))
    }

    /// All `(step, path)` pairs present, sorted by step. `.tmp` partials
    /// are removed on sight (they are by definition incomplete).
    fn scan(&self) -> Result<Vec<(u64, PathBuf)>> {
        let mut found = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                fs::remove_file(&path)?;
                continue;
            }
            if let Some(step) = step_of(name) {
                found.push((step, path));
            }
        }
        found.sort_unstable_by_key(|(step, _)| *step);
        Ok(found)
    }

    /// Steps with a checkpoint on disk, ascending.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the directory cannot be scanned.
    pub fn steps(&self) -> Result<Vec<u64>> {
        Ok(self.scan()?.into_iter().map(|(step, _)| step).collect())
    }

    /// Writes `snapshot` as this lineage's checkpoint for its own step
    /// cursor, then compacts to the newest `keep_last`. Returns the
    /// written path.
    ///
    /// The order is deliberate — durable write first, deletions second —
    /// so a kill at any instant leaves either the old retention set or
    /// the new one, never a lineage whose only snapshots were deleted.
    ///
    /// # Errors
    ///
    /// Propagates snapshot serialization and filesystem failures.
    pub fn record(&self, snapshot: &RuntimeSnapshot) -> Result<PathBuf> {
        let path = self.path_for(snapshot.step);
        snapshot.write_atomic(&path)?;
        let found = self.scan()?;
        if found.len() > self.keep_last {
            for (_, stale) in &found[..found.len() - self.keep_last] {
                fs::remove_file(stale)?;
            }
        }
        Ok(path)
    }

    /// The newest snapshot on disk that parses and validates, with its
    /// step. Corrupt candidates are GC'd and logged, then older ones are
    /// tried — `None` only when nothing restorable remains.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the directory cannot be scanned.
    pub fn latest_restorable(&self) -> Result<Option<(u64, RuntimeSnapshot)>> {
        for (step, path) in self.scan()?.into_iter().rev() {
            match RuntimeSnapshot::read(&path) {
                Ok(snapshot) => return Ok(Some((step, snapshot))),
                Err(err) => {
                    eprintln!(
                        "lineage: GC of corrupt checkpoint {}: {err}",
                        path.display()
                    );
                    idc_obs::record_anomaly("checkpoint_gc", step, &[]);
                    fs::remove_file(&path)?;
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepper::{Stepper, StepperConfig};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idc-lineage-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn snapshots(n: usize) -> Vec<RuntimeSnapshot> {
        let mut stepper = Stepper::new(StepperConfig::fault_free("smoothing", 2012)).unwrap();
        let mut out = vec![stepper.snapshot()];
        for _ in 1..n {
            stepper.step_once().unwrap();
            out.push(stepper.snapshot());
        }
        out
    }

    #[test]
    fn record_compacts_to_keep_last_and_restores_newest() {
        let dir = tmpdir("compact");
        let lineage = CheckpointLineage::open(&dir, 3).unwrap();
        let snaps = snapshots(6);
        for snap in &snaps {
            lineage.record(snap).unwrap();
        }
        assert_eq!(lineage.steps().unwrap(), vec![3, 4, 5]);
        let (step, newest) = lineage.latest_restorable().unwrap().unwrap();
        assert_eq!(step, 5);
        assert_eq!(&newest, snaps.last().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_gcs_partials_and_corrupt_files() {
        let dir = tmpdir("gc");
        {
            let lineage = CheckpointLineage::open(&dir, 2).unwrap();
            for snap in &snapshots(2) {
                lineage.record(snap).unwrap();
            }
        }
        // Simulate a kill mid-write plus on-disk corruption.
        fs::write(dir.join("ckpt-00000000000000000009.tmp"), b"{\"torn\":").unwrap();
        fs::write(dir.join("ckpt-00000000000000000007.json"), b"not json").unwrap();
        let reopened = CheckpointLineage::open(&dir, 2).unwrap();
        assert_eq!(reopened.steps().unwrap(), vec![0, 1]);
        assert!(!dir.join("ckpt-00000000000000000009.tmp").exists());
        assert!(!dir.join("ckpt-00000000000000000007.json").exists());
        let (step, _) = reopened.latest_restorable().unwrap().unwrap();
        assert_eq!(step, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_restorable_skips_truncated_newest() {
        let dir = tmpdir("truncated");
        let lineage = CheckpointLineage::open(&dir, 4).unwrap();
        let snaps = snapshots(3);
        for snap in &snaps {
            lineage.record(snap).unwrap();
        }
        // Truncate the newest checkpoint in place (torn at the fs level).
        let newest = lineage.path_for(2);
        let text = fs::read_to_string(&newest).unwrap();
        fs::write(&newest, &text[..text.len() / 2]).unwrap();
        let (step, snap) = lineage.latest_restorable().unwrap().unwrap();
        assert_eq!(step, 1);
        assert_eq!(snap, snaps[1]);
        // The torn file is gone after the failed read.
        assert_eq!(lineage.steps().unwrap(), vec![0, 1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_lineage_has_nothing_restorable() {
        let dir = tmpdir("empty");
        let lineage = CheckpointLineage::open(&dir, 1).unwrap();
        assert!(lineage.latest_restorable().unwrap().is_none());
        assert!(lineage.steps().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
