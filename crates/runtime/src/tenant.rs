//! The multi-tenant control plane: N independent control loops multiplexed
//! over a thread-per-shard worker pool by a time-ordered ready queue.
//!
//! # Model
//!
//! A *tenant* is one fleet under control: its own [`Stepper`] (scenario,
//! policy, feeds, fault layer), its own pacing clock, and — when a
//! checkpoint root is configured — its own [`CheckpointLineage`]. Tenants
//! share nothing but threads and the metrics registry, so a tenant's
//! trajectory is a pure function of its [`StepperConfig`]: the same spec
//! produces byte-identical snapshots whether it runs solo, with 99
//! neighbours, or under any worker count.
//!
//! # Scheduling
//!
//! The manager keeps a time-ordered ready queue (a min-heap on each
//! tenant's next due instant, from [`Clock::due_in`]) guarded by a mutex
//! and condvar. Workers pop the earliest due tenant, take exclusive
//! ownership of its cell, run a bounded *slice* of steps (up to
//! `slice_steps`, stopping early when the tenant's clock says the next
//! step is not yet due), then park it back on the queue. A worker that
//! finds the earliest tenant not yet due sleeps on the condvar with a
//! timeout of exactly the remaining lead time — no polling, no
//! thread-per-tenant.
//!
//! # Admission, backpressure, kill
//!
//! [`add_tenant`](TenantManager::add_tenant) enforces the tenant cap and
//! id uniqueness; per-feed backpressure is the stepper's own
//! [`idc_core::feed::BoundedIngest`] (bounded per-tick queues with shed
//! counters). `stop_after_total_steps` is a deterministic in-process kill
//! switch: once the global step budget is spent, workers stop mid-soak
//! without final checkpoints — exactly what `kill -9` leaves behind —
//! and a resumed manager picks every tenant up from its newest
//! restorable checkpoint.

use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use idc_core::clock::{Clock, WallClock};
use idc_testkit::faults::{FaultKind, FaultPlan};
use serde::Serialize;

use crate::error::Error;
use crate::feed::{FeedFaults, OverloadFaults};
use crate::lineage::CheckpointLineage;
use crate::metrics::MetricsRegistry;
use crate::snapshot::RuntimeSnapshot;
use crate::stepper::{Stepper, StepperConfig};
use crate::Result;

/// Bucket bounds (seconds) for the per-tenant step-latency histograms.
const TENANT_STEP_BOUNDS: [f64; 8] = [0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.1, 1.0];

/// One tenant's specification: identity, control-loop config, pacing and
/// checkpoint cadence.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Unique tenant id (also the checkpoint subdirectory name).
    pub id: String,
    /// The tenant's control-loop configuration.
    pub config: StepperConfig,
    /// Wall-clock speedup for this tenant's pacing; `<= 0` means "as fast
    /// as possible" (every step immediately due).
    pub speedup: f64,
    /// Steps between checkpoints (0 = only the final checkpoint, and only
    /// when a checkpoint root is configured).
    pub checkpoint_every: u64,
}

impl TenantSpec {
    /// A maximum-speed tenant with no periodic checkpoints.
    pub fn max_speed(id: impl Into<String>, config: StepperConfig) -> Self {
        TenantSpec {
            id: id.into(),
            config,
            speedup: 0.0,
            checkpoint_every: 0,
        }
    }
}

/// Scenario keys cycled by [`derive_tenants`]: the seven canned scenarios
/// interleaved with parametric scaled fleets, so a derived population
/// mixes sizes (2×2 up to 5×4), market models and fault layers.
const DERIVE_MIX: [&str; 10] = [
    "smoothing",
    "noisy_day",
    "scaled_4x3",
    "diurnal_day",
    "scaled_2x2",
    "mmpp_hour",
    "peak_shaving",
    "scaled_5x4",
    "smoothing_table_ii",
    "smoothing_faulty_price",
];

/// Derives `n` heterogeneous tenant specs from `base_seed`: scenario keys
/// cycle through [`DERIVE_MIX`], solver backends cycle
/// default/dense/banded/sharded, every third tenant runs under transport
/// feed faults, and every fifth under a
/// [`FaultKind::TenantOverload`]-derived burst schedule with a matching
/// ingest bound. `num_steps` overrides every tenant's run length (useful
/// for multi-week soaks and fast tests alike). Deterministic: the same
/// `(n, base_seed, num_steps)` always derives the same population.
pub fn derive_tenants(n: usize, base_seed: u64, num_steps: Option<usize>) -> Vec<TenantSpec> {
    let backends: [Option<&str>; 4] = [None, Some("dense"), Some("banded"), Some("sharded[2]")];
    (0..n)
        .map(|i| {
            let seed = base_seed.wrapping_add((i as u64).wrapping_mul(7919));
            let mut config = StepperConfig::fault_free(DERIVE_MIX[i % DERIVE_MIX.len()], seed);
            config.num_steps = num_steps;
            config.max_staleness_ticks = 2 + (i as u64 % 4);
            config.backend = backends[i % backends.len()].map(str::to_string);
            if i % 3 == 2 {
                config.workload_faults = FeedFaults::new(seed ^ 0xF00D, 0.10, 2);
                config.price_faults = FeedFaults::new(seed ^ 0xBEEF, 0.10, 2);
            }
            if i % 5 == 4 {
                let plan = FaultPlan::new(FaultKind::TenantOverload, seed);
                let p = plan
                    .overload_params()
                    .expect("TenantOverload plans always derive params");
                config.overload = OverloadFaults::new(p.seed, p.burst_per_mille, p.burst_factor);
                config.ingest_bound = p.ingest_bound;
            }
            TenantSpec {
                id: format!("t-{i:03}"),
                config,
                speedup: 0.0,
                checkpoint_every: 16 + (i as u64 % 5) * 8,
            }
        })
        .collect()
}

/// Manager-level configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Worker threads (0 = available parallelism, capped at 8).
    pub workers: usize,
    /// Maximum steps one worker runs a tenant for before re-queueing it
    /// (0 = the default of 8). Bounds scheduling latency under skewed
    /// tenant sizes.
    pub slice_steps: u64,
    /// Root directory for per-tenant checkpoint lineages (`<root>/<id>/`);
    /// `None` disables checkpointing.
    pub checkpoint_root: Option<PathBuf>,
    /// Checkpoints retained per tenant (see [`CheckpointLineage`]).
    pub keep_last: usize,
    /// Admission cap: [`TenantManager::add_tenant`] refuses tenants beyond
    /// this count (0 = unlimited).
    pub max_tenants: usize,
    /// Resume tenants from their newest restorable checkpoint when one
    /// exists under the checkpoint root.
    pub resume: bool,
    /// Deterministic kill switch: stop the whole manager after this many
    /// steps summed across tenants, leaving checkpoints exactly as a
    /// `kill -9` would.
    pub stop_after_total_steps: Option<u64>,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            workers: 0,
            slice_steps: 8,
            checkpoint_root: None,
            keep_last: 4,
            max_tenants: 0,
            resume: false,
            stop_after_total_steps: None,
        }
    }
}

/// A tenant's live status, published to the status board after every
/// slice (served on the daemon's `/tenants` route).
#[derive(Debug, Clone, Serialize)]
pub struct TenantStatus {
    /// Tenant id.
    pub id: String,
    /// Scenario registry key.
    pub scenario_key: String,
    /// Steps completed.
    pub step: u64,
    /// Total steps of the run.
    pub num_steps: u64,
    /// Whether the run has consumed every step.
    pub finished: bool,
    /// Accumulated electricity cost ($).
    pub cost_dollars: f64,
    /// Steps served by the staleness fallback.
    pub degraded_steps: u64,
    /// Workload observations shed by feed admission control.
    pub shed_workload: u64,
    /// Price observations shed by feed admission control.
    pub shed_price: u64,
    /// Step at which the newest checkpoint was recorded; `null` until the
    /// tenant has checkpointed (or resumed from one).
    pub last_checkpoint_step: Option<u64>,
}

/// A cloneable, thread-safe view of every tenant's latest status.
#[derive(Debug, Clone, Default)]
pub struct StatusBoard {
    inner: Arc<Mutex<Vec<TenantStatus>>>,
}

impl StatusBoard {
    /// Every tenant's latest status, in admission order.
    pub fn statuses(&self) -> Vec<TenantStatus> {
        self.inner.lock().expect("status board mutex").clone()
    }

    /// The board as a JSON array (the `/tenants` response body).
    pub fn render_json(&self) -> String {
        serde_json::to_string(&self.statuses()).expect("statuses serialize")
    }

    /// The latest status of one tenant, by id.
    pub fn status_of(&self, id: &str) -> Option<TenantStatus> {
        self.inner
            .lock()
            .expect("status board mutex")
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }

    /// One tenant's status as a JSON object (the `/tenants/<id>` response
    /// body); `None` for an unknown id.
    pub fn render_tenant_json(&self, id: &str) -> Option<String> {
        self.status_of(id)
            .map(|s| serde_json::to_string(&s).expect("status serializes"))
    }

    fn push(&self, status: TenantStatus) {
        self.inner.lock().expect("status board mutex").push(status);
    }

    fn set(&self, idx: usize, status: TenantStatus) {
        self.inner.lock().expect("status board mutex")[idx] = status;
    }
}

/// Per-tenant outcome of a soak, for reports and `BENCH_runtime.json`.
#[derive(Debug, Clone, Serialize)]
pub struct TenantReport {
    /// Tenant id.
    pub id: String,
    /// Scenario registry key.
    pub scenario_key: String,
    /// Solver-backend label (`null` = paper default).
    pub backend: Option<String>,
    /// Steps completed.
    pub steps: u64,
    /// Total steps of the run.
    pub num_steps: u64,
    /// Whether the run completed.
    pub finished: bool,
    /// Accumulated electricity cost ($).
    pub cost_dollars: f64,
    /// Steps served by the staleness fallback.
    pub degraded_steps: u64,
    /// Workload observations shed by admission control.
    pub shed_workload: u64,
    /// Price observations shed by admission control.
    pub shed_price: u64,
    /// Median step latency (ms).
    pub p50_step_ms: f64,
    /// 99th-percentile step latency (ms).
    pub p99_step_ms: f64,
}

/// Whole-soak outcome.
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    /// Per-tenant outcomes, in admission order.
    pub tenants: Vec<TenantReport>,
    /// Steps executed across all tenants (this run only — resumed steps
    /// count from the resume point).
    pub total_steps: u64,
    /// Whether the deterministic kill switch fired.
    pub killed: bool,
    /// Aggregate median step latency across tenants (ms).
    pub p50_step_ms: f64,
    /// Aggregate 99th-percentile step latency across tenants (ms).
    pub p99_step_ms: f64,
}

/// One hosted tenant: spec, control loop, pacing clock, lineage.
#[derive(Debug)]
struct TenantCell {
    spec: TenantSpec,
    stepper: Stepper,
    clock: WallClock,
    lineage: Option<CheckpointLineage>,
    /// Step of the newest checkpoint recorded (or resumed from).
    last_checkpoint_step: Option<u64>,
}

/// How a slice ended.
enum SliceOutcome {
    /// Not finished; due again at the instant carried.
    Parked(Instant),
    /// Ran its final step (final checkpoint written).
    Finished,
    /// The global step budget ran out mid-slice (no checkpoint — this is
    /// the `kill -9` simulation).
    Killed,
    /// The external stop flag was raised (graceful; the manager writes
    /// final checkpoints after the workers drain).
    Stopped,
}

/// Scheduler state under the mutex.
struct SchedState {
    ready: BinaryHeap<Slot>,
    cells: Vec<Option<TenantCell>>,
    live: usize,
    failure: Option<Error>,
}

/// A ready-queue entry: min-heap on due instant, tenant index as a
/// deterministic tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    due: Instant,
    idx: usize,
}

impl Ord for Slot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-due first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything the workers share.
struct Shared<'a> {
    state: Mutex<SchedState>,
    cv: Condvar,
    budget: AtomicU64,
    killed: AtomicBool,
    stop: &'a AtomicBool,
    total: AtomicU64,
}

impl Shared<'_> {
    /// Consumes one unit of the global step budget; on exhaustion flips
    /// the kill flag and reports `false`.
    fn take_budget(&self) -> bool {
        if self
            .budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_ok()
        {
            true
        } else {
            self.killed.store(true, Ordering::SeqCst);
            false
        }
    }
}

/// The multi-tenant manager. See the module docs for the model.
#[derive(Debug)]
pub struct TenantManager {
    config: ManagerConfig,
    cells: Vec<TenantCell>,
    registry: Arc<MetricsRegistry>,
    board: StatusBoard,
}

/// Formats a per-tenant metric key with its `tenant` label.
fn tenant_key(base: &str, id: &str) -> String {
    format!("{base}{{tenant=\"{id}\"}}")
}

impl TenantManager {
    /// An empty manager.
    pub fn new(config: ManagerConfig) -> Self {
        TenantManager {
            config,
            cells: Vec::new(),
            registry: Arc::new(MetricsRegistry::new()),
            board: StatusBoard::default(),
        }
    }

    /// Replaces the metrics registry (call before [`run`](Self::run), e.g.
    /// with the registry the HTTP endpoint serves).
    pub fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.registry = registry;
    }

    /// The registry the manager publishes into.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// A cloneable handle to the per-tenant status board (wire it to the
    /// `/tenants` route before running).
    pub fn status_board(&self) -> StatusBoard {
        self.board.clone()
    }

    /// Hosted tenant count.
    pub fn num_tenants(&self) -> usize {
        self.cells.len()
    }

    /// Admits a tenant. With a checkpoint root configured, opens (and
    /// garbage-collects) the tenant's lineage; with `resume` set and a
    /// restorable checkpoint present, the tenant resumes from it instead
    /// of starting fresh. Returns whether it resumed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the admission cap is reached or the
    /// id is already hosted, and propagates stepper/lineage failures.
    pub fn add_tenant(&mut self, spec: TenantSpec) -> Result<bool> {
        if self.config.max_tenants > 0 && self.cells.len() >= self.config.max_tenants {
            return Err(Error::Config(format!(
                "admission refused: tenant cap {} reached",
                self.config.max_tenants
            )));
        }
        if self.cells.iter().any(|c| c.spec.id == spec.id) {
            return Err(Error::Config(format!(
                "admission refused: tenant id '{}' already hosted",
                spec.id
            )));
        }
        let lineage = match &self.config.checkpoint_root {
            Some(root) => Some(CheckpointLineage::open(
                root.join(&spec.id),
                self.config.keep_last,
            )?),
            None => None,
        };
        let mut resumed = false;
        let stepper = match lineage
            .as_ref()
            .filter(|_| self.config.resume)
            .map(CheckpointLineage::latest_restorable)
            .transpose()?
            .flatten()
        {
            Some((_, snapshot)) => {
                resumed = true;
                Stepper::restore(&snapshot)?
            }
            None => Stepper::new(spec.config.clone())?,
        };
        let clock = WallClock::new(stepper.scenario().ts_hours(), spec.speedup);
        self.board.push(TenantStatus {
            id: spec.id.clone(),
            scenario_key: spec.config.scenario_key.clone(),
            step: stepper.step(),
            num_steps: stepper.num_steps(),
            finished: stepper.is_finished(),
            cost_dollars: stepper.accumulated_cost(),
            degraded_steps: stepper.degraded_steps(),
            shed_workload: stepper.shed_observations().0,
            shed_price: stepper.shed_observations().1,
            last_checkpoint_step: resumed.then(|| stepper.step()),
        });
        let last_checkpoint_step = resumed.then(|| stepper.step());
        self.cells.push(TenantCell {
            spec,
            stepper,
            clock,
            lineage,
            last_checkpoint_step,
        });
        Ok(resumed)
    }

    /// The current snapshot of tenant `id` (its complete resume state).
    pub fn snapshot(&self, id: &str) -> Option<RuntimeSnapshot> {
        self.cells
            .iter()
            .find(|c| c.spec.id == id)
            .map(|c| c.stepper.snapshot())
    }

    /// Runs every tenant to completion (or until the kill switch fires),
    /// multiplexed over the worker pool. Reentrant: a second `run` after a
    /// kill continues from the in-memory state.
    ///
    /// # Errors
    ///
    /// Returns the first tenant failure; the other tenants stop at their
    /// next slice boundary with their state intact.
    pub fn run(&mut self) -> Result<SoakReport> {
        self.run_until(&AtomicBool::new(false))
    }

    /// Like [`run`](Self::run), additionally draining the workers as soon
    /// as `stop` is raised (a SIGTERM/SIGINT handler's flag). Unlike the
    /// `stop_after_total_steps` kill switch, a graceful stop writes a
    /// final checkpoint for every unfinished tenant before returning.
    ///
    /// # Errors
    ///
    /// Returns the first tenant or checkpoint failure.
    pub fn run_until(&mut self, stop: &AtomicBool) -> Result<SoakReport> {
        for (base, help) in [
            (
                "idc_tenant_step_duration_seconds",
                "Wall-clock duration of one tenant control step (aggregate and per tenant).",
            ),
            ("idc_tenant_steps_total", "Steps completed per tenant."),
            (
                "idc_tenant_degraded_steps_total",
                "Steps served by the staleness fallback, per tenant.",
            ),
            (
                "idc_tenant_shed_total",
                "Observations shed by feed admission control, per tenant.",
            ),
            (
                "idc_tenant_cost_dollars",
                "Accumulated electricity cost per tenant.",
            ),
            (
                "idc_tenant_checkpoints_total",
                "Checkpoints written across all tenants.",
            ),
            ("idc_tenants_live", "Tenants still running."),
            ("idc_tenants_hosted", "Tenants admitted."),
        ] {
            self.registry.describe(base, help);
        }
        self.registry
            .set_gauge("idc_tenants_hosted", self.cells.len() as f64);
        let workers = match self.config.workers {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .min(8),
            w => w,
        }
        .min(self.cells.len())
        .max(1);

        let mut state = SchedState {
            ready: BinaryHeap::new(),
            cells: std::mem::take(&mut self.cells)
                .into_iter()
                .map(Some)
                .collect(),
            live: 0,
            failure: None,
        };
        let now = Instant::now();
        for (idx, cell) in state.cells.iter().enumerate() {
            if !cell.as_ref().expect("freshly seeded").stepper.is_finished() {
                state.ready.push(Slot { due: now, idx });
                state.live += 1;
            }
        }
        self.registry
            .set_gauge("idc_tenants_live", state.live as f64);

        let shared = Shared {
            state: Mutex::new(state),
            cv: Condvar::new(),
            budget: AtomicU64::new(self.config.stop_after_total_steps.unwrap_or(u64::MAX)),
            killed: AtomicBool::new(false),
            stop,
            total: AtomicU64::new(0),
        };
        let slice_steps = match self.config.slice_steps {
            0 => 8,
            s => s,
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(&shared, &self.registry, &self.board, slice_steps));
            }
        });

        let mut state = shared.state.into_inner().expect("scheduler mutex");
        self.cells = state
            .cells
            .into_iter()
            .map(|c| c.expect("workers return every cell"))
            .collect();
        if let Some(err) = state.failure.take() {
            return Err(err);
        }
        let killed = shared.killed.load(Ordering::SeqCst);
        if stop.load(Ordering::SeqCst) && !killed {
            // Graceful drain: leave every unfinished tenant resumable.
            for cell in self.cells.iter_mut().filter(|c| !c.stepper.is_finished()) {
                checkpoint(cell, &self.registry)?;
            }
        }
        Ok(self.report(shared.total.load(Ordering::SeqCst), killed))
    }

    /// Builds the soak report from the settled cells and the histograms.
    fn report(&self, total_steps: u64, killed: bool) -> SoakReport {
        let quantile_ms = |key: &str, q: f64| {
            self.registry
                .histogram_quantile(key, q)
                .map_or(0.0, |s| s * 1000.0)
        };
        let tenants = self
            .cells
            .iter()
            .map(|cell| {
                let s = &cell.stepper;
                let (shed_workload, shed_price) = s.shed_observations();
                let key = tenant_key("idc_tenant_step_duration_seconds", &cell.spec.id);
                TenantReport {
                    id: cell.spec.id.clone(),
                    scenario_key: cell.spec.config.scenario_key.clone(),
                    backend: cell.spec.config.backend.clone(),
                    steps: s.step(),
                    num_steps: s.num_steps(),
                    finished: s.is_finished(),
                    cost_dollars: s.accumulated_cost(),
                    degraded_steps: s.degraded_steps(),
                    shed_workload,
                    shed_price,
                    p50_step_ms: quantile_ms(&key, 0.50),
                    p99_step_ms: quantile_ms(&key, 0.99),
                }
            })
            .collect();
        SoakReport {
            tenants,
            total_steps,
            killed,
            p50_step_ms: quantile_ms("idc_tenant_step_duration_seconds", 0.50),
            p99_step_ms: quantile_ms("idc_tenant_step_duration_seconds", 0.99),
        }
    }
}

/// One worker thread: pop the earliest due tenant, run a slice, park it.
fn worker_loop(
    shared: &Shared<'_>,
    registry: &MetricsRegistry,
    board: &StatusBoard,
    slice_steps: u64,
) {
    let mut guard = shared.state.lock().expect("scheduler mutex");
    loop {
        if guard.failure.is_some()
            || guard.live == 0
            || shared.killed.load(Ordering::SeqCst)
            || shared.stop.load(Ordering::SeqCst)
        {
            shared.cv.notify_all();
            return;
        }
        let Some(slot) = guard.ready.peek().copied() else {
            // Every live tenant is owned by another worker; wait for one
            // to be parked (or for shutdown).
            guard = shared.cv.wait(guard).expect("scheduler mutex");
            continue;
        };
        let now = Instant::now();
        if slot.due > now {
            let (g, _) = shared
                .cv
                .wait_timeout(guard, slot.due - now)
                .expect("scheduler mutex");
            guard = g;
            continue;
        }
        guard.ready.pop();
        let mut cell = guard.cells[slot.idx]
            .take()
            .expect("queued cell is present");
        drop(guard);

        let outcome = run_slice(&mut cell, shared, registry, slice_steps);
        publish(&cell, slot.idx, registry, board);

        guard = shared.state.lock().expect("scheduler mutex");
        guard.cells[slot.idx] = Some(cell);
        match outcome {
            Ok(SliceOutcome::Parked(due)) => guard.ready.push(Slot { due, idx: slot.idx }),
            Ok(SliceOutcome::Finished) => {
                guard.live -= 1;
                registry.set_gauge("idc_tenants_live", guard.live as f64);
            }
            Ok(SliceOutcome::Killed | SliceOutcome::Stopped) => {}
            Err(err) => {
                guard.live -= 1;
                registry.set_gauge("idc_tenants_live", guard.live as f64);
                if guard.failure.is_none() {
                    let id = &guard.cells[slot.idx].as_ref().expect("just parked").spec.id;
                    guard.failure = Some(Error::Config(format!("tenant '{id}': {err}")));
                }
            }
        }
        shared.cv.notify_all();
    }
}

/// Runs one tenant for up to `slice_steps` due steps.
fn run_slice(
    cell: &mut TenantCell,
    shared: &Shared<'_>,
    registry: &MetricsRegistry,
    slice_steps: u64,
) -> Result<SliceOutcome> {
    let _tenant = idc_obs::tenant_scope(&cell.spec.id);
    let _span = idc_obs::Span::enter_cat(format!("tenant.{}", cell.spec.id), "tenant");
    let key = tenant_key("idc_tenant_step_duration_seconds", &cell.spec.id);
    let mut executed = 0u64;
    while executed < slice_steps && !cell.stepper.is_finished() {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(SliceOutcome::Stopped);
        }
        if cell.clock.due_in(cell.stepper.step()) > Duration::ZERO {
            break;
        }
        if !shared.take_budget() {
            return Ok(SliceOutcome::Killed);
        }
        let t0 = Instant::now();
        cell.stepper.step_once()?;
        let dt = t0.elapsed().as_secs_f64();
        registry.observe("idc_tenant_step_duration_seconds", &TENANT_STEP_BOUNDS, dt);
        registry.observe(&key, &TENANT_STEP_BOUNDS, dt);
        shared.total.fetch_add(1, Ordering::Relaxed);
        executed += 1;
        let step = cell.stepper.step();
        if cell.spec.checkpoint_every > 0 && step.is_multiple_of(cell.spec.checkpoint_every) {
            checkpoint(cell, registry)?;
        }
    }
    if cell.stepper.is_finished() {
        checkpoint(cell, registry)?;
        return Ok(SliceOutcome::Finished);
    }
    Ok(SliceOutcome::Parked(
        Instant::now() + cell.clock.due_in(cell.stepper.step()),
    ))
}

/// Records a checkpoint in the tenant's lineage, when one is configured.
fn checkpoint(cell: &mut TenantCell, registry: &MetricsRegistry) -> Result<()> {
    if let Some(lineage) = &cell.lineage {
        lineage.record(&cell.stepper.snapshot())?;
        registry.inc_counter("idc_tenant_checkpoints_total", 1);
        cell.last_checkpoint_step = Some(cell.stepper.step());
    }
    Ok(())
}

/// Publishes a tenant's per-slice metrics and status-board entry.
fn publish(cell: &TenantCell, idx: usize, registry: &MetricsRegistry, board: &StatusBoard) {
    let id = &cell.spec.id;
    let s = &cell.stepper;
    let (w, p) = s.shed_observations();
    registry.set_counter(&tenant_key("idc_tenant_steps_total", id), s.step());
    registry.set_counter(
        &tenant_key("idc_tenant_degraded_steps_total", id),
        s.degraded_steps(),
    );
    registry.set_counter(&tenant_key("idc_tenant_shed_total", id), w + p);
    registry.set_gauge(
        &tenant_key("idc_tenant_cost_dollars", id),
        s.accumulated_cost(),
    );
    board.set(
        idx,
        TenantStatus {
            id: id.clone(),
            scenario_key: cell.spec.config.scenario_key.clone(),
            step: s.step(),
            num_steps: s.num_steps(),
            finished: s.is_finished(),
            cost_dollars: s.accumulated_cost(),
            degraded_steps: s.degraded_steps(),
            shed_workload: w,
            shed_price: p,
            last_checkpoint_step: cell.last_checkpoint_step,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use idc_core::clock::SimClock;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idc-tenant-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn short(key: &str, seed: u64, steps: usize) -> StepperConfig {
        StepperConfig {
            num_steps: Some(steps),
            ..StepperConfig::fault_free(key, seed)
        }
    }

    #[test]
    fn hosted_tenants_match_solo_runs_byte_for_byte() {
        let mut manager = TenantManager::new(ManagerConfig {
            workers: 3,
            ..ManagerConfig::default()
        });
        let specs = [
            ("a", short("smoothing", 2012, 20)),
            ("b", short("noisy_day", 7, 16)),
            ("c", short("scaled_2x2", 3, 12)),
        ];
        for (id, config) in &specs {
            manager
                .add_tenant(TenantSpec::max_speed(*id, config.clone()))
                .unwrap();
        }
        let report = manager.run().unwrap();
        assert!(!report.killed);
        assert_eq!(report.total_steps, 20 + 16 + 12);
        assert!(report.tenants.iter().all(|t| t.finished));

        for (id, config) in &specs {
            let mut solo = Stepper::new(config.clone()).unwrap();
            solo.run(&mut SimClock).unwrap();
            assert_eq!(
                manager.snapshot(id).unwrap(),
                solo.snapshot(),
                "tenant '{id}' diverged from its solo run"
            );
        }
    }

    #[test]
    fn admission_enforces_cap_and_unique_ids() {
        let mut manager = TenantManager::new(ManagerConfig {
            max_tenants: 2,
            ..ManagerConfig::default()
        });
        manager
            .add_tenant(TenantSpec::max_speed("a", short("smoothing", 1, 4)))
            .unwrap();
        let dup = manager
            .add_tenant(TenantSpec::max_speed("a", short("smoothing", 2, 4)))
            .unwrap_err();
        assert!(matches!(dup, Error::Config(_)), "{dup}");
        manager
            .add_tenant(TenantSpec::max_speed("b", short("smoothing", 3, 4)))
            .unwrap();
        let full = manager
            .add_tenant(TenantSpec::max_speed("c", short("smoothing", 4, 4)))
            .unwrap_err();
        assert!(matches!(full, Error::Config(_)), "{full}");
        assert_eq!(manager.num_tenants(), 2);
    }

    #[test]
    fn kill_and_resume_completes_byte_identically() {
        let root = tmpdir("kill-resume");
        let specs = |every| {
            [
                TenantSpec {
                    checkpoint_every: every,
                    ..TenantSpec::max_speed("x", short("smoothing", 2012, 24))
                },
                TenantSpec {
                    checkpoint_every: every,
                    ..TenantSpec::max_speed("y", short("noisy_day", 5, 24))
                },
            ]
        };
        let mut first = TenantManager::new(ManagerConfig {
            workers: 2,
            checkpoint_root: Some(root.clone()),
            stop_after_total_steps: Some(17),
            ..ManagerConfig::default()
        });
        for spec in specs(4) {
            assert!(!first.add_tenant(spec).unwrap());
        }
        let report = first.run().unwrap();
        assert!(report.killed);
        assert!(report.total_steps <= 17);
        drop(first); // the "killed" process

        let mut resumed = TenantManager::new(ManagerConfig {
            workers: 2,
            checkpoint_root: Some(root.clone()),
            resume: true,
            ..ManagerConfig::default()
        });
        let mut any_resumed = false;
        for spec in specs(4) {
            any_resumed |= resumed.add_tenant(spec).unwrap();
        }
        assert!(any_resumed, "nothing resumed from the lineage");
        let report = resumed.run().unwrap();
        assert!(!report.killed);
        assert!(report.tenants.iter().all(|t| t.finished));

        for spec in specs(4) {
            let mut solo = Stepper::new(spec.config.clone()).unwrap();
            solo.run(&mut SimClock).unwrap();
            assert_eq!(
                resumed.snapshot(&spec.id).unwrap(),
                solo.snapshot(),
                "tenant '{}' diverged across kill/resume",
                spec.id
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn derived_populations_are_heterogeneous_and_valid() {
        let specs = derive_tenants(12, 9, Some(6));
        assert_eq!(specs.len(), 12);
        let mut ids: Vec<_> = specs.iter().map(|s| s.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 12, "duplicate derived ids");
        let keys: std::collections::BTreeSet<_> = specs
            .iter()
            .map(|s| s.config.scenario_key.clone())
            .collect();
        assert!(keys.len() >= 5, "population not heterogeneous: {keys:?}");
        assert!(specs.iter().any(|s| s.config.overload.is_active()));
        assert!(specs.iter().any(|s| s.config.ingest_bound > 0));
        assert!(specs
            .iter()
            .any(|s| s.config.workload_faults != FeedFaults::none()));
        assert!(specs.iter().any(|s| s.config.backend.is_some()));
        // Every derived config must actually build.
        for spec in &specs {
            Stepper::new(spec.config.clone())
                .unwrap_or_else(|e| panic!("derived tenant '{}' does not build: {e}", spec.id));
        }
        // And the derivation is a pure function of its inputs.
        let again = derive_tenants(12, 9, Some(6));
        for (a, b) in specs.iter().zip(&again) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.config.scenario_key, b.config.scenario_key);
            assert_eq!(a.config.seed, b.config.seed);
        }
    }

    #[test]
    fn status_board_tracks_progress_and_renders_json() {
        let mut manager = TenantManager::new(ManagerConfig::default());
        manager
            .add_tenant(TenantSpec::max_speed("solo", short("smoothing", 2012, 8)))
            .unwrap();
        let board = manager.status_board();
        assert_eq!(board.statuses().len(), 1);
        assert!(!board.statuses()[0].finished);
        manager.run().unwrap();
        let statuses = board.statuses();
        assert!(statuses[0].finished);
        assert_eq!(statuses[0].step, 8);
        let json = board.render_json();
        assert!(json.contains("\"id\":\"solo\""), "{json}");
        assert!(json.contains("\"finished\":true"), "{json}");
        // Detail rendering: known id yields the same object, unknown is None.
        let detail = board.render_tenant_json("solo").unwrap();
        assert!(detail.contains("\"id\":\"solo\""), "{detail}");
        assert!(detail.contains("\"shed_workload\":"), "{detail}");
        assert!(detail.contains("\"shed_price\":"), "{detail}");
        assert!(board.render_tenant_json("nope").is_none());
        // No checkpoint root configured: never checkpointed.
        assert_eq!(statuses[0].last_checkpoint_step, None);
    }

    #[test]
    fn status_board_reports_checkpoint_progress() {
        let root = tmpdir("status-checkpoint");
        let mut manager = TenantManager::new(ManagerConfig {
            checkpoint_root: Some(root.clone()),
            ..ManagerConfig::default()
        });
        manager
            .add_tenant(TenantSpec {
                checkpoint_every: 4,
                ..TenantSpec::max_speed("ckpt", short("smoothing", 2012, 10))
            })
            .unwrap();
        let board = manager.status_board();
        assert_eq!(board.status_of("ckpt").unwrap().last_checkpoint_step, None);
        manager.run().unwrap();
        // The final checkpoint lands at the last step.
        assert_eq!(
            board.status_of("ckpt").unwrap().last_checkpoint_step,
            Some(10)
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
