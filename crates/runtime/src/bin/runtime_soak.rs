//! Soak test for the online runtime.
//!
//! # Single-tenant mode (default)
//!
//! Replays a full simulated day (288 five-minute periods of the noisy
//! diurnal scenario) through the online stepper and asserts, via
//! `idc-testkit`'s equivalence oracles, that
//!
//! 1. the fault-free online run matches the batch simulator's final
//!    accumulated cost and per-IDC power trajectory to 1e-9 (they are in
//!    fact bit-identical, which is also asserted);
//! 2. killing the run at an arbitrary step and restarting from its
//!    checkpoint reproduces the uninterrupted trajectory bit for bit,
//!    through a real serialize→disk→parse round trip;
//! 3. a run with injected feed faults (drops and delays on both feeds)
//!    completes, degrades at least once, and keeps the accounting finite.
//!
//! `--scenario`, `--seed`, `--steps` and `--kill-step` parameterize the
//! checks; the defaults reproduce the classic invocation exactly.
//!
//! # Multi-tenant mode (`--tenants N`)
//!
//! Hosts `N` heterogeneous tenants (mixed fleet sizes, solver backends,
//! fault and overload plans from [`derive_tenants`]) on the shared worker
//! pool at maximum clock speed, covering weeks of simulated control time
//! in aggregate. Unless `--resume` is given, the soak first runs with a
//! deterministic mid-soak kill (`--kill-after`, default half the total
//! step budget — the in-process `kill -9`), then resumes every tenant
//! from its checkpoint lineage and completes. It then asserts:
//!
//! * every tenant's final snapshot is byte-identical to an uninterrupted
//!   solo run of the same spec (kill, resume and 99 neighbours included);
//! * tenants without transport faults never degraded;
//! * every overloaded tenant shed observations (backpressure engaged).
//!
//! With `--resume` the fresh/kill phase is skipped and the soak resumes
//! whatever a previous (externally killed) invocation left under
//! `--checkpoint-root` — the CI SIGKILL job uses this. Either way the
//! soak writes `BENCH_runtime.json` (see `--bench-out`) with aggregate
//! steps/sec, p50/p99 step latencies and per-tenant rows for
//! `bench_diff`.
//!
//! Exits non-zero with a description on the first failed assertion.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use idc_core::clock::SimClock;
use idc_core::policy::MpcPolicy;
use idc_core::simulation::Simulator;
use idc_runtime::feed::FeedFaults;
use idc_runtime::metrics::MetricsRegistry;
use idc_runtime::registry::scenario_by_key;
use idc_runtime::snapshot::RuntimeSnapshot;
use idc_runtime::stepper::{Stepper, StepperConfig};
use idc_runtime::tenant::{derive_tenants, ManagerConfig, SoakReport, TenantManager, TenantSpec};
use idc_testkit::equivalence::{bitwise_f64, exact_u64, within_tolerance_f64, Mismatch};

#[derive(Debug)]
struct Args {
    scenario: String,
    seed: u64,
    steps: Option<usize>,
    kill_step: u64,
    tenants: usize,
    workers: usize,
    checkpoint_root: Option<PathBuf>,
    resume: bool,
    kill_after: Option<u64>,
    bench_out: PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scenario: "noisy_day".to_string(),
            seed: 2012,
            steps: None,
            kill_step: 97,
            tenants: 0,
            workers: 0,
            checkpoint_root: None,
            resume: false,
            kill_after: None,
            bench_out: PathBuf::from("BENCH_runtime.json"),
        }
    }
}

const USAGE: &str = "\
runtime_soak: soak test for the online runtime

USAGE: runtime_soak [OPTIONS]

OPTIONS:
  --scenario KEY         single-tenant scenario (default: noisy_day)
  --seed N               base seed (default: 2012)
  --steps N              per-run step override (default: scenario length,
                         or 288 in multi-tenant mode)
  --kill-step N          single-tenant checkpoint/kill step (default: 97)
  --tenants N            multi-tenant soak with N derived tenants
  --workers N            worker threads (default: one per CPU, capped at 8)
  --checkpoint-root DIR  tenant checkpoint lineages (default: a temp dir)
  --resume               resume an externally killed soak from
                         --checkpoint-root instead of the fresh+kill phase
  --kill-after M         in-process kill after M total steps
                         (default: half the budget; 0 disables the kill)
  --bench-out PATH       BENCH_runtime.json destination (multi-tenant)
  --help                 print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    fn parsed<T: std::str::FromStr>(
        it: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        value(it, flag)?.parse().map_err(|e| format!("{flag}: {e}"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scenario" => args.scenario = value(&mut it, "--scenario")?,
            "--seed" => args.seed = parsed(&mut it, "--seed")?,
            "--steps" => args.steps = Some(parsed(&mut it, "--steps")?),
            "--kill-step" => args.kill_step = parsed(&mut it, "--kill-step")?,
            "--tenants" => args.tenants = parsed(&mut it, "--tenants")?,
            "--workers" => args.workers = parsed(&mut it, "--workers")?,
            "--checkpoint-root" => {
                args.checkpoint_root = Some(PathBuf::from(value(&mut it, "--checkpoint-root")?));
            }
            "--resume" => args.resume = true,
            "--kill-after" => args.kill_after = Some(parsed(&mut it, "--kill-after")?),
            "--bench-out" => args.bench_out = PathBuf::from(value(&mut it, "--bench-out")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (see --help)")),
        }
    }
    if scenario_by_key(&args.scenario, 0, None).is_none() {
        return Err(format!("unknown scenario '{}'", args.scenario));
    }
    if args.resume && args.tenants == 0 {
        return Err("--resume needs --tenants N".to_string());
    }
    if args.resume && args.checkpoint_root.is_none() {
        return Err("--resume needs --checkpoint-root DIR".to_string());
    }
    Ok(args)
}

fn check(label: &str, mismatch: Option<Mismatch>) -> Result<(), String> {
    match mismatch {
        None => {
            println!("runtime_soak: {label}: ok");
            Ok(())
        }
        Some(m) => Err(format!("{label}: {m}")),
    }
}

fn batch_vs_online(args: &Args) -> Result<(), String> {
    let config = StepperConfig {
        num_steps: args.steps,
        ..StepperConfig::fault_free(&args.scenario, args.seed)
    };
    let mut online = Stepper::new(config).map_err(|e| e.to_string())?;
    online.run(&mut SimClock).map_err(|e| e.to_string())?;
    if online.degraded_steps() != 0 {
        return Err(format!(
            "fault-free run degraded {} times",
            online.degraded_steps()
        ));
    }

    let scenario = scenario_by_key(&args.scenario, args.seed, args.steps).expect("known key");
    let mut policy = MpcPolicy::paper_tuned(&scenario).map_err(|e| e.to_string())?;
    let batch = Simulator::new()
        .run(&scenario, &mut policy)
        .map_err(|e| e.to_string())?;

    check(
        "batch vs online: accumulated cost (1e-9)",
        within_tolerance_f64(
            "cost_cumulative",
            online.cost_cumulative(),
            batch.cost_cumulative(),
            1e-9,
        ),
    )?;
    for j in 0..batch.num_idcs() {
        check(
            &format!("batch vs online: power[{j}] (1e-9)"),
            within_tolerance_f64(
                &format!("power_mw[{j}]"),
                online.power_mw(j),
                batch.power_mw(j),
                1e-9,
            ),
        )?;
        // The equivalence is in fact exact, and the checkpoint guarantees
        // depend on that — hold the stronger line too.
        check(
            &format!("batch vs online: power[{j}] (bitwise)"),
            bitwise_f64(
                &format!("power_mw[{j}]"),
                online.power_mw(j),
                batch.power_mw(j),
            ),
        )?;
        check(
            &format!("batch vs online: servers[{j}]"),
            exact_u64(
                &format!("servers[{j}]"),
                online.servers(j),
                batch.servers(j),
            ),
        )?;
    }
    check(
        "batch vs online: cost (bitwise)",
        bitwise_f64(
            "cost_cumulative",
            online.cost_cumulative(),
            batch.cost_cumulative(),
        ),
    )
}

fn faulted_config(args: &Args) -> StepperConfig {
    StepperConfig {
        workload_faults: FeedFaults::new(41, 0.10, 2),
        price_faults: FeedFaults::new(43, 0.10, 2),
        max_staleness_ticks: 1,
        num_steps: args.steps,
        ..StepperConfig::fault_free(&args.scenario, args.seed)
    }
}

fn kill_and_restart(args: &Args) -> Result<(), String> {
    // The uninterrupted faulted run is the truth...
    let mut uninterrupted = Stepper::new(faulted_config(args)).map_err(|e| e.to_string())?;
    uninterrupted
        .run(&mut SimClock)
        .map_err(|e| e.to_string())?;

    // ...then "kill" a second instance at the kill step, checkpoint
    // through an actual file, restore and finish.
    let mut killed = Stepper::new(faulted_config(args)).map_err(|e| e.to_string())?;
    for _ in 0..args.kill_step.min(uninterrupted.num_steps()) {
        killed.step_once().map_err(|e| e.to_string())?;
    }
    let path = std::env::temp_dir().join(format!("runtime_soak_{}.json", std::process::id()));
    killed
        .snapshot()
        .write_atomic(&path)
        .map_err(|e| e.to_string())?;
    drop(killed);
    let snapshot = RuntimeSnapshot::read(&path).map_err(|e| e.to_string())?;
    let _ = std::fs::remove_file(&path);
    let mut restarted = Stepper::restore(&snapshot).map_err(|e| e.to_string())?;
    restarted.run(&mut SimClock).map_err(|e| e.to_string())?;

    check(
        "kill/restart: cost (bitwise)",
        bitwise_f64(
            "cost_cumulative",
            restarted.cost_cumulative(),
            uninterrupted.cost_cumulative(),
        ),
    )?;
    for j in 0..restarted.scenario().fleet().num_idcs() {
        check(
            &format!("kill/restart: power[{j}] (bitwise)"),
            bitwise_f64(
                &format!("power_mw[{j}]"),
                restarted.power_mw(j),
                uninterrupted.power_mw(j),
            ),
        )?;
        check(
            &format!("kill/restart: servers[{j}]"),
            exact_u64(
                &format!("servers[{j}]"),
                restarted.servers(j),
                uninterrupted.servers(j),
            ),
        )?;
    }
    if restarted.degraded_steps() != uninterrupted.degraded_steps() {
        return Err(format!(
            "kill/restart: degraded steps {} vs {}",
            restarted.degraded_steps(),
            uninterrupted.degraded_steps()
        ));
    }
    if restarted.snapshot() != uninterrupted.snapshot() {
        return Err("kill/restart: final snapshots differ".into());
    }
    println!(
        "runtime_soak: kill/restart at step {}: byte-identical \
         ({} degraded steps replayed)",
        args.kill_step,
        uninterrupted.degraded_steps()
    );
    Ok(())
}

fn faulted_run_stays_sane(args: &Args) -> Result<(), String> {
    let mut stepper = Stepper::new(faulted_config(args)).map_err(|e| e.to_string())?;
    stepper.run(&mut SimClock).map_err(|e| e.to_string())?;
    if stepper.degraded_steps() == 0 {
        return Err("faulted run never degraded — fault injection inert?".into());
    }
    if !stepper.accumulated_cost().is_finite() || stepper.accumulated_cost() <= 0.0 {
        return Err(format!(
            "faulted run cost not finite-positive: {}",
            stepper.accumulated_cost()
        ));
    }
    println!(
        "runtime_soak: faulted run: {} / {} steps degraded, cost {:.2} $, latency ok {:.4}",
        stepper.degraded_steps(),
        stepper.num_steps(),
        stepper.accumulated_cost(),
        stepper.latency_ok_fraction()
    );
    Ok(())
}

/// Builds a tenant manager over `specs` sharing `registry`.
fn build_manager(
    specs: &[TenantSpec],
    args: &Args,
    root: &Path,
    registry: &Arc<MetricsRegistry>,
    resume: bool,
    kill_after: Option<u64>,
) -> Result<TenantManager, String> {
    let mut manager = TenantManager::new(ManagerConfig {
        workers: args.workers,
        checkpoint_root: Some(root.to_path_buf()),
        resume,
        stop_after_total_steps: kill_after,
        ..ManagerConfig::default()
    });
    manager.attach_metrics(Arc::clone(registry));
    for spec in specs {
        manager
            .add_tenant(spec.clone())
            .map_err(|e| format!("admitting '{}': {e}", spec.id))?;
    }
    Ok(manager)
}

/// Renders BENCH_runtime.json: aggregate throughput/latency plus one row
/// per tenant, in the keyed-table shape `bench_diff` consumes.
fn bench_json(report: &SoakReport, total_steps: u64, elapsed_seconds: f64) -> String {
    let shed: u64 = report
        .tenants
        .iter()
        .map(|t| t.shed_workload + t.shed_price)
        .sum();
    let degraded: u64 = report.tenants.iter().map(|t| t.degraded_steps).sum();
    let aggregate = serde::Value::Object(vec![
        (
            "tenants".to_string(),
            serde::Value::Number(report.tenants.len() as f64),
        ),
        (
            "total_steps".to_string(),
            serde::Value::Number(total_steps as f64),
        ),
        (
            "elapsed_seconds".to_string(),
            serde::Value::Number(elapsed_seconds),
        ),
        (
            "steps_per_sec".to_string(),
            serde::Value::Number(if elapsed_seconds > 0.0 {
                total_steps as f64 / elapsed_seconds
            } else {
                0.0
            }),
        ),
        (
            "p50_step_ms".to_string(),
            serde::Value::Number(report.p50_step_ms),
        ),
        (
            "p99_step_ms".to_string(),
            serde::Value::Number(report.p99_step_ms),
        ),
        (
            "shed_observations".to_string(),
            serde::Value::Number(shed as f64),
        ),
        (
            "degraded_steps".to_string(),
            serde::Value::Number(degraded as f64),
        ),
        ("killed".to_string(), serde::Value::Bool(report.killed)),
    ]);
    let rows = report
        .tenants
        .iter()
        .map(|t| {
            serde::Value::Object(vec![
                ("tenant".to_string(), serde::Value::String(t.id.clone())),
                (
                    "scenario".to_string(),
                    serde::Value::String(t.scenario_key.clone()),
                ),
                (
                    "backend".to_string(),
                    match &t.backend {
                        Some(b) => serde::Value::String(b.clone()),
                        None => serde::Value::Null,
                    },
                ),
                ("steps".to_string(), serde::Value::Number(t.steps as f64)),
                (
                    "p50_step_ms".to_string(),
                    serde::Value::Number(t.p50_step_ms),
                ),
                (
                    "p99_step_ms".to_string(),
                    serde::Value::Number(t.p99_step_ms),
                ),
                (
                    "degraded_steps".to_string(),
                    serde::Value::Number(t.degraded_steps as f64),
                ),
                (
                    "shed_workload".to_string(),
                    serde::Value::Number(t.shed_workload as f64),
                ),
                (
                    "shed_price".to_string(),
                    serde::Value::Number(t.shed_price as f64),
                ),
                (
                    "cost_dollars".to_string(),
                    serde::Value::Number(t.cost_dollars),
                ),
                ("finished".to_string(), serde::Value::Bool(t.finished)),
            ])
        })
        .collect();
    let root = serde::Value::Object(vec![
        (
            "schema".to_string(),
            serde::Value::String("bench.runtime.v1".to_string()),
        ),
        ("aggregate".to_string(), aggregate),
        ("runtime".to_string(), serde::Value::Array(rows)),
    ]);
    serde_json::to_string(&root).expect("bench report is finite")
}

/// The multi-tenant soak (see the module docs).
fn multi_soak(args: &Args) -> Result<(), String> {
    let steps = args.steps.unwrap_or(288);
    let specs = derive_tenants(args.tenants, args.seed, Some(steps));
    let expected_total = (args.tenants * steps) as u64;
    let temp_root;
    let root = match &args.checkpoint_root {
        Some(root) => root,
        None => {
            temp_root =
                std::env::temp_dir().join(format!("runtime_soak_tenants_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&temp_root);
            &temp_root
        }
    };
    let registry = Arc::new(MetricsRegistry::new());
    let mut total_steps = 0u64;
    let mut elapsed = 0.0f64;

    if !args.resume {
        let kill_after = match args.kill_after {
            Some(0) => None,
            Some(m) => Some(m),
            None => Some(expected_total / 2),
        };
        let mut fresh = build_manager(&specs, args, root, &registry, false, kill_after)?;
        let t0 = Instant::now();
        let report = fresh.run().map_err(|e| e.to_string())?;
        elapsed += t0.elapsed().as_secs_f64();
        total_steps += report.total_steps;
        if let Some(m) = kill_after {
            if m < expected_total && !report.killed {
                return Err(format!(
                    "kill switch at {m}/{expected_total} steps never fired"
                ));
            }
            println!(
                "runtime_soak: killed mid-soak after {} of {expected_total} steps",
                report.total_steps
            );
        }
        drop(fresh); // the "killed" process: only the lineages survive
    }

    // Resume every tenant from its newest restorable checkpoint and run
    // to completion.
    let mut manager = build_manager(&specs, args, root, &registry, true, None)?;
    let t0 = Instant::now();
    let report = manager.run().map_err(|e| e.to_string())?;
    elapsed += t0.elapsed().as_secs_f64();
    total_steps += report.total_steps;
    if report.killed {
        return Err("resumed soak hit the kill switch".to_string());
    }
    if let Some(unfinished) = report.tenants.iter().find(|t| !t.finished) {
        return Err(format!(
            "tenant '{}' unfinished at {}/{}",
            unfinished.id, unfinished.steps, unfinished.num_steps
        ));
    }

    // Byte-identity: every tenant must match an uninterrupted solo run of
    // its own spec — kill, resume and neighbours included.
    let mut simulated_hours = 0.0f64;
    for spec in &specs {
        let mut solo = Stepper::new(spec.config.clone()).map_err(|e| e.to_string())?;
        solo.run(&mut SimClock).map_err(|e| e.to_string())?;
        simulated_hours += solo.num_steps() as f64 * solo.scenario().ts_hours();
        if manager.snapshot(&spec.id) != Some(solo.snapshot()) {
            return Err(format!(
                "tenant '{}' final snapshot differs from its solo run",
                spec.id
            ));
        }
    }
    println!(
        "runtime_soak: {} tenants byte-identical to solo runs across kill/resume",
        specs.len()
    );

    // Fault-free tenants must never degrade; overloaded tenants must shed.
    for (spec, tenant) in specs.iter().zip(&report.tenants) {
        let fault_free = spec.config.workload_faults == FeedFaults::none()
            && spec.config.price_faults == FeedFaults::none();
        if fault_free && tenant.degraded_steps != 0 {
            return Err(format!(
                "fault-free tenant '{}' degraded {} times",
                tenant.id, tenant.degraded_steps
            ));
        }
        if spec.config.overload.is_active() && tenant.shed_workload + tenant.shed_price == 0 {
            return Err(format!(
                "overloaded tenant '{}' never shed — backpressure inert?",
                tenant.id
            ));
        }
    }
    println!("runtime_soak: degradations explained, overload backpressure engaged");
    println!(
        "runtime_soak: {total_steps} steps / {:.1} simulated days in {elapsed:.1}s \
         ({:.0} steps/sec, p50 {:.3} ms, p99 {:.3} ms)",
        simulated_hours / 24.0,
        total_steps as f64 / elapsed.max(1e-9),
        report.p50_step_ms,
        report.p99_step_ms
    );

    std::fs::write(&args.bench_out, bench_json(&report, total_steps, elapsed))
        .map_err(|e| format!("writing {}: {e}", args.bench_out.display()))?;
    println!("runtime_soak: wrote {}", args.bench_out.display());
    if args.checkpoint_root.is_none() {
        let _ = std::fs::remove_dir_all(root);
    }
    Ok(())
}

type Check = fn(&Args) -> Result<(), String>;

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("runtime_soak: error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.tenants > 0 {
        return match multi_soak(&args) {
            Ok(()) => {
                println!("runtime_soak: all checks passed");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("runtime_soak: FAIL [multi_tenant]: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let checks: [(&str, Check); 3] = [
        ("batch_vs_online", batch_vs_online),
        ("kill_and_restart", kill_and_restart),
        ("faulted_run", faulted_run_stays_sane),
    ];
    for (name, run) in checks {
        if let Err(msg) = run(&args) {
            eprintln!("runtime_soak: FAIL [{name}]: {msg}");
            return ExitCode::FAILURE;
        }
    }
    println!("runtime_soak: all checks passed");
    ExitCode::SUCCESS
}
