//! Soak test for the online runtime: replays a full simulated day (288
//! five-minute periods of the noisy diurnal scenario) through the online
//! stepper and asserts, via `idc-testkit`'s equivalence oracles, that
//!
//! 1. the fault-free online run matches the batch simulator's final
//!    accumulated cost and per-IDC power trajectory to 1e-9 (they are in
//!    fact bit-identical, which is also asserted);
//! 2. killing the run at an arbitrary step and restarting from its
//!    checkpoint reproduces the uninterrupted trajectory bit for bit,
//!    through a real serialize→disk→parse round trip;
//! 3. a run with injected feed faults (drops and delays on both feeds)
//!    completes, degrades at least once, and keeps the accounting finite.
//!
//! Exits non-zero with a description on the first failed assertion.

use std::process::ExitCode;

use idc_core::clock::SimClock;
use idc_core::policy::MpcPolicy;
use idc_core::simulation::Simulator;
use idc_runtime::feed::FeedFaults;
use idc_runtime::registry::scenario_by_key;
use idc_runtime::snapshot::RuntimeSnapshot;
use idc_runtime::stepper::{Stepper, StepperConfig};
use idc_testkit::equivalence::{bitwise_f64, exact_u64, within_tolerance_f64, Mismatch};

const SCENARIO: &str = "noisy_day";
const SEED: u64 = 2012;
const KILL_STEP: u64 = 97;

fn check(label: &str, mismatch: Option<Mismatch>) -> Result<(), String> {
    match mismatch {
        None => {
            println!("runtime_soak: {label}: ok");
            Ok(())
        }
        Some(m) => Err(format!("{label}: {m}")),
    }
}

fn batch_vs_online() -> Result<(), String> {
    let mut online =
        Stepper::new(StepperConfig::fault_free(SCENARIO, SEED)).map_err(|e| e.to_string())?;
    online.run(&mut SimClock).map_err(|e| e.to_string())?;
    if online.degraded_steps() != 0 {
        return Err(format!(
            "fault-free run degraded {} times",
            online.degraded_steps()
        ));
    }

    let scenario = scenario_by_key(SCENARIO, SEED, None).expect("known key");
    let mut policy = MpcPolicy::paper_tuned(&scenario).map_err(|e| e.to_string())?;
    let batch = Simulator::new()
        .run(&scenario, &mut policy)
        .map_err(|e| e.to_string())?;

    check(
        "batch vs online: accumulated cost (1e-9)",
        within_tolerance_f64(
            "cost_cumulative",
            online.cost_cumulative(),
            batch.cost_cumulative(),
            1e-9,
        ),
    )?;
    for j in 0..batch.num_idcs() {
        check(
            &format!("batch vs online: power[{j}] (1e-9)"),
            within_tolerance_f64(
                &format!("power_mw[{j}]"),
                online.power_mw(j),
                batch.power_mw(j),
                1e-9,
            ),
        )?;
        // The equivalence is in fact exact, and the checkpoint guarantees
        // depend on that — hold the stronger line too.
        check(
            &format!("batch vs online: power[{j}] (bitwise)"),
            bitwise_f64(
                &format!("power_mw[{j}]"),
                online.power_mw(j),
                batch.power_mw(j),
            ),
        )?;
        check(
            &format!("batch vs online: servers[{j}]"),
            exact_u64(
                &format!("servers[{j}]"),
                online.servers(j),
                batch.servers(j),
            ),
        )?;
    }
    check(
        "batch vs online: cost (bitwise)",
        bitwise_f64(
            "cost_cumulative",
            online.cost_cumulative(),
            batch.cost_cumulative(),
        ),
    )
}

fn faulted_config() -> StepperConfig {
    StepperConfig {
        workload_faults: FeedFaults::new(41, 0.10, 2),
        price_faults: FeedFaults::new(43, 0.10, 2),
        max_staleness_ticks: 1,
        ..StepperConfig::fault_free(SCENARIO, SEED)
    }
}

fn kill_and_restart() -> Result<(), String> {
    // The uninterrupted faulted run is the truth...
    let mut uninterrupted = Stepper::new(faulted_config()).map_err(|e| e.to_string())?;
    uninterrupted
        .run(&mut SimClock)
        .map_err(|e| e.to_string())?;

    // ...then "kill" a second instance at KILL_STEP, checkpoint through an
    // actual file, restore and finish.
    let mut killed = Stepper::new(faulted_config()).map_err(|e| e.to_string())?;
    for _ in 0..KILL_STEP {
        killed.step_once().map_err(|e| e.to_string())?;
    }
    let path = std::env::temp_dir().join(format!("runtime_soak_{}.json", std::process::id()));
    killed
        .snapshot()
        .write_atomic(&path)
        .map_err(|e| e.to_string())?;
    drop(killed);
    let snapshot = RuntimeSnapshot::read(&path).map_err(|e| e.to_string())?;
    let _ = std::fs::remove_file(&path);
    let mut restarted = Stepper::restore(&snapshot).map_err(|e| e.to_string())?;
    restarted.run(&mut SimClock).map_err(|e| e.to_string())?;

    check(
        "kill/restart: cost (bitwise)",
        bitwise_f64(
            "cost_cumulative",
            restarted.cost_cumulative(),
            uninterrupted.cost_cumulative(),
        ),
    )?;
    for j in 0..3 {
        check(
            &format!("kill/restart: power[{j}] (bitwise)"),
            bitwise_f64(
                &format!("power_mw[{j}]"),
                restarted.power_mw(j),
                uninterrupted.power_mw(j),
            ),
        )?;
        check(
            &format!("kill/restart: servers[{j}]"),
            exact_u64(
                &format!("servers[{j}]"),
                restarted.servers(j),
                uninterrupted.servers(j),
            ),
        )?;
    }
    if restarted.degraded_steps() != uninterrupted.degraded_steps() {
        return Err(format!(
            "kill/restart: degraded steps {} vs {}",
            restarted.degraded_steps(),
            uninterrupted.degraded_steps()
        ));
    }
    if restarted.snapshot() != uninterrupted.snapshot() {
        return Err("kill/restart: final snapshots differ".into());
    }
    println!(
        "runtime_soak: kill/restart at step {KILL_STEP}: byte-identical \
         ({} degraded steps replayed)",
        uninterrupted.degraded_steps()
    );
    Ok(())
}

fn faulted_run_stays_sane() -> Result<(), String> {
    let mut stepper = Stepper::new(faulted_config()).map_err(|e| e.to_string())?;
    stepper.run(&mut SimClock).map_err(|e| e.to_string())?;
    if stepper.degraded_steps() == 0 {
        return Err("faulted run never degraded — fault injection inert?".into());
    }
    if !stepper.accumulated_cost().is_finite() || stepper.accumulated_cost() <= 0.0 {
        return Err(format!(
            "faulted run cost not finite-positive: {}",
            stepper.accumulated_cost()
        ));
    }
    println!(
        "runtime_soak: faulted run: {} / {} steps degraded, cost {:.2} $, latency ok {:.4}",
        stepper.degraded_steps(),
        stepper.num_steps(),
        stepper.accumulated_cost(),
        stepper.latency_ok_fraction()
    );
    Ok(())
}

type Check = fn() -> Result<(), String>;

fn main() -> ExitCode {
    let checks: [(&str, Check); 3] = [
        ("batch_vs_online", batch_vs_online),
        ("kill_and_restart", kill_and_restart),
        ("faulted_run", faulted_run_stays_sane),
    ];
    for (name, run) in checks {
        if let Err(msg) = run() {
            eprintln!("runtime_soak: FAIL [{name}]: {msg}");
            return ExitCode::FAILURE;
        }
    }
    println!("runtime_soak: all checks passed");
    ExitCode::SUCCESS
}
