//! `idc-daemon`: the online two-time-scale control daemon.
//!
//! Replays a registered scenario as a long-running process: streaming
//! workload/price feeds (optionally faulty), the MPC fast loop and the
//! eq. 35 slow loop paced by a wall clock at a configurable real-time
//! speedup, periodic atomic checkpoints, and a Prometheus/JSON metrics
//! endpoint. SIGTERM/SIGINT trigger a final checkpoint and a clean exit;
//! `--resume` restarts from the checkpoint bit-for-bit.
//!
//! ```text
//! idc-daemon --scenario noisy_day --speedup 0 --listen 127.0.0.1:9184 \
//!            --snapshot /tmp/idc.snap --snapshot-interval 50
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use idc_core::clock::{Clock, WallClock};
use idc_runtime::feed::{FeedFaults, OverloadFaults};
use idc_runtime::http::MetricsServer;
use idc_runtime::metrics::MetricsRegistry;
use idc_runtime::registry::{scenario_by_key, SCENARIO_KEYS};
use idc_runtime::snapshot::RuntimeSnapshot;
use idc_runtime::stepper::{Stepper, StepperConfig};
use idc_runtime::tenant::{derive_tenants, ManagerConfig, TenantManager};

/// Set by the signal handler; checked between steps.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGINT (2) and SIGTERM (15) via the libc
/// `signal(2)` symbol — declared by hand because the workspace vendors no
/// `libc` crate. Storing to an atomic is async-signal-safe.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(2, on_signal as *const () as usize);
        signal(15, on_signal as *const () as usize);
    }
}

#[derive(Debug)]
struct Args {
    scenario: String,
    seed: u64,
    steps: Option<usize>,
    speedup: f64,
    listen: Option<String>,
    snapshot: Option<PathBuf>,
    snapshot_interval: u64,
    resume: bool,
    max_staleness: u64,
    fault_seed: u64,
    workload_drop: f64,
    workload_delay: u64,
    price_drop: f64,
    price_delay: u64,
    backend: Option<String>,
    ingest_bound: usize,
    trace_capacity: Option<usize>,
    anomaly_log: Option<PathBuf>,
    tenants: usize,
    workers: usize,
    checkpoint_root: Option<PathBuf>,
    keep_last: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scenario: "noisy_day".to_string(),
            seed: 2012,
            steps: None,
            speedup: 0.0,
            listen: None,
            snapshot: None,
            snapshot_interval: 50,
            resume: false,
            max_staleness: 3,
            fault_seed: 7,
            workload_drop: 0.0,
            workload_delay: 0,
            price_drop: 0.0,
            price_delay: 0,
            backend: None,
            ingest_bound: 0,
            trace_capacity: None,
            anomaly_log: None,
            tenants: 0,
            workers: 0,
            checkpoint_root: None,
            keep_last: 4,
        }
    }
}

const USAGE: &str = "\
idc-daemon: online two-time-scale IDC control daemon

USAGE: idc-daemon [OPTIONS]

OPTIONS:
  --scenario KEY         scenario to run (default: noisy_day)
  --seed N               workload-noise seed (default: 2012)
  --steps N              run length override in sampling periods
  --speedup X            real-time speedup; 0 = as fast as possible (default: 0)
  --listen ADDR          serve /metrics, /metrics.json, /healthz on ADDR
  --snapshot PATH        checkpoint file (written atomically)
  --snapshot-interval N  checkpoint every N steps (default: 50)
  --resume               restore from --snapshot instead of starting fresh
  --max-staleness N      feed staleness budget in ticks (default: 3)
  --fault-seed N         seed for the fault schedules (default: 7)
  --workload-drop P      workload-feed drop probability in [0,1] (default: 0)
  --workload-delay N     workload-feed max delivery delay in ticks (default: 0)
  --price-drop P         price-feed drop probability in [0,1] (default: 0)
  --price-delay N        price-feed max delivery delay in ticks (default: 0)
  --backend LABEL        solver backend: dense | banded | sharded[N]
                         (default: dense)
  --ingest-bound N       per-tick, per-feed admission bound; overflow is
                         shed and counted (default: 0 = unbounded)
  --tenants N            multi-tenant mode: host N heterogeneous control
                         loops on a shared worker pool (default: 0 = the
                         classic single-fleet loop)
  --workers N            worker threads in multi-tenant mode
                         (default: 0 = one per available CPU, capped at 8)
  --checkpoint-root DIR  per-tenant checkpoint lineages under DIR/<tenant>/
                         (multi-tenant mode; implies periodic checkpoints)
  --keep-last K          checkpoints retained per tenant lineage (default: 4)
  --trace-capacity N     enable the span flight recorder, keeping the last
                         N spans (served at /debug/trace as a Chrome trace)
  --anomaly-log PATH     append JSONL anomaly records (solver failures,
                         fallback degradations, iteration spikes) to PATH
  --help                 print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scenario" => args.scenario = value(&mut it, "--scenario")?,
            "--seed" => {
                args.seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--steps" => {
                args.steps = Some(
                    value(&mut it, "--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                );
            }
            "--speedup" => {
                args.speedup = value(&mut it, "--speedup")?
                    .parse()
                    .map_err(|e| format!("--speedup: {e}"))?;
            }
            "--listen" => args.listen = Some(value(&mut it, "--listen")?),
            "--snapshot" => args.snapshot = Some(PathBuf::from(value(&mut it, "--snapshot")?)),
            "--snapshot-interval" => {
                args.snapshot_interval = value(&mut it, "--snapshot-interval")?
                    .parse()
                    .map_err(|e| format!("--snapshot-interval: {e}"))?;
            }
            "--resume" => args.resume = true,
            "--max-staleness" => {
                args.max_staleness = value(&mut it, "--max-staleness")?
                    .parse()
                    .map_err(|e| format!("--max-staleness: {e}"))?;
            }
            "--fault-seed" => {
                args.fault_seed = value(&mut it, "--fault-seed")?
                    .parse()
                    .map_err(|e| format!("--fault-seed: {e}"))?;
            }
            "--workload-drop" => {
                args.workload_drop = value(&mut it, "--workload-drop")?
                    .parse()
                    .map_err(|e| format!("--workload-drop: {e}"))?;
            }
            "--workload-delay" => {
                args.workload_delay = value(&mut it, "--workload-delay")?
                    .parse()
                    .map_err(|e| format!("--workload-delay: {e}"))?;
            }
            "--price-drop" => {
                args.price_drop = value(&mut it, "--price-drop")?
                    .parse()
                    .map_err(|e| format!("--price-drop: {e}"))?;
            }
            "--price-delay" => {
                args.price_delay = value(&mut it, "--price-delay")?
                    .parse()
                    .map_err(|e| format!("--price-delay: {e}"))?;
            }
            "--backend" => args.backend = Some(value(&mut it, "--backend")?),
            "--ingest-bound" => {
                args.ingest_bound = value(&mut it, "--ingest-bound")?
                    .parse()
                    .map_err(|e| format!("--ingest-bound: {e}"))?;
            }
            "--tenants" => {
                args.tenants = value(&mut it, "--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
            }
            "--workers" => {
                args.workers = value(&mut it, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--checkpoint-root" => {
                args.checkpoint_root = Some(PathBuf::from(value(&mut it, "--checkpoint-root")?));
            }
            "--keep-last" => {
                args.keep_last = value(&mut it, "--keep-last")?
                    .parse()
                    .map_err(|e| format!("--keep-last: {e}"))?;
            }
            "--trace-capacity" => {
                args.trace_capacity = Some(
                    value(&mut it, "--trace-capacity")?
                        .parse()
                        .map_err(|e| format!("--trace-capacity: {e}"))?,
                );
            }
            "--anomaly-log" => {
                args.anomaly_log = Some(PathBuf::from(value(&mut it, "--anomaly-log")?));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (see --help)")),
        }
    }
    if scenario_by_key(&args.scenario, 0, None).is_none() {
        return Err(format!(
            "unknown scenario '{}'; known: {} or scaled_<n>x<c>",
            args.scenario,
            SCENARIO_KEYS.join(", ")
        ));
    }
    if args.resume && args.snapshot.is_none() && args.checkpoint_root.is_none() {
        return Err(
            "--resume needs --snapshot PATH (or --checkpoint-root in multi-tenant mode)"
                .to_string(),
        );
    }
    if args.tenants > 0 && args.resume && args.checkpoint_root.is_none() {
        return Err("--resume with --tenants needs --checkpoint-root DIR".to_string());
    }
    Ok(args)
}

fn build_stepper(args: &Args) -> Result<Stepper, String> {
    if args.resume {
        let path = args.snapshot.as_deref().expect("validated in parse_args");
        let snapshot = RuntimeSnapshot::read(path)
            .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?;
        eprintln!(
            "idc-daemon: resuming '{}' at step {}/{} from {}",
            snapshot.scenario_key,
            snapshot.step,
            snapshot.num_steps,
            path.display()
        );
        Stepper::restore(&snapshot).map_err(|e| e.to_string())
    } else {
        Stepper::new(StepperConfig {
            scenario_key: args.scenario.clone(),
            seed: args.seed,
            num_steps: args.steps,
            max_staleness_ticks: args.max_staleness,
            workload_faults: FeedFaults::new(
                args.fault_seed,
                args.workload_drop,
                args.workload_delay,
            ),
            price_faults: FeedFaults::new(
                args.fault_seed.wrapping_add(1),
                args.price_drop,
                args.price_delay,
            ),
            backend: args.backend.clone(),
            ingest_bound: args.ingest_bound,
            overload: OverloadFaults::none(),
        })
        .map_err(|e| e.to_string())
    }
}

fn write_snapshot(
    stepper: &Stepper,
    path: &std::path::Path,
    m: &MetricsRegistry,
) -> Result<(), String> {
    stepper
        .snapshot()
        .write_atomic(path)
        .map_err(|e| format!("checkpoint to {}: {e}", path.display()))?;
    m.inc_counter("idc_snapshots_written_total", 1);
    Ok(())
}

fn summary_json(stepper: &Stepper, interrupted: bool) -> String {
    use serde::Value;
    let per_idc_power = Value::Array(
        stepper
            .scenario()
            .fleet()
            .idcs()
            .iter()
            .enumerate()
            .map(|(j, idc)| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(idc.name().to_string())),
                    (
                        "final_power_mw".to_string(),
                        Value::Number(stepper.power_mw(j).last().copied().unwrap_or(0.0)),
                    ),
                ])
            })
            .collect(),
    );
    let root = Value::Object(vec![
        (
            "scenario".to_string(),
            Value::String(stepper.scenario().name().to_string()),
        ),
        (
            "steps_done".to_string(),
            Value::Number(stepper.step() as f64),
        ),
        (
            "steps_total".to_string(),
            Value::Number(stepper.num_steps() as f64),
        ),
        ("interrupted".to_string(), Value::Bool(interrupted)),
        (
            "accumulated_cost_dollars".to_string(),
            Value::Number(stepper.accumulated_cost()),
        ),
        (
            "degraded_steps".to_string(),
            Value::Number(stepper.degraded_steps() as f64),
        ),
        (
            "latency_ok_fraction".to_string(),
            Value::Number(stepper.latency_ok_fraction()),
        ),
        ("per_idc".to_string(), per_idc_power),
    ]);
    serde_json::to_string(&root).expect("summary is finite")
}

/// The multi-tenant daemon path: host `--tenants N` derived control loops
/// on the shared worker pool, serve per-tenant metrics plus `/tenants`
/// status, checkpoint into per-tenant lineages and resume from them.
fn run_multi(args: &Args) -> Result<(), String> {
    let mut manager = TenantManager::new(ManagerConfig {
        workers: args.workers,
        checkpoint_root: args.checkpoint_root.clone(),
        keep_last: args.keep_last,
        resume: args.resume,
        ..ManagerConfig::default()
    });
    let metrics = Arc::new(MetricsRegistry::new());
    manager.attach_metrics(Arc::clone(&metrics));
    let mut resumed = 0usize;
    for mut spec in derive_tenants(args.tenants, args.seed, args.steps) {
        spec.speedup = args.speedup;
        if manager.add_tenant(spec).map_err(|e| e.to_string())? {
            resumed += 1;
        }
    }
    eprintln!(
        "idc-daemon: hosting {} tenants ({resumed} resumed from checkpoints)",
        manager.num_tenants()
    );

    let server = match &args.listen {
        Some(addr) => {
            let board = manager.status_board();
            let s = MetricsServer::start_with_status(
                addr,
                Arc::clone(&metrics),
                Arc::new(move |id: &str| {
                    if id.is_empty() {
                        Some(board.render_json())
                    } else {
                        board.render_tenant_json(id)
                    }
                }),
            )
            .map_err(|e| e.to_string())?;
            eprintln!(
                "idc-daemon: metrics on http://{}/metrics (/tenants for status)",
                s.addr()
            );
            Some(s)
        }
        None => None,
    };

    let report = manager.run_until(&SHUTDOWN).map_err(|e| e.to_string())?;
    if let Some(server) = server {
        server.shutdown();
    }
    println!(
        "{}",
        serde_json::to_string(&report).expect("report serializes")
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    install_signal_handlers();
    if let Some(capacity) = args.trace_capacity {
        idc_obs::install_global_recorder(capacity);
        eprintln!("idc-daemon: flight recorder enabled ({capacity} spans, /debug/trace)");
    }
    if let Some(path) = &args.anomaly_log {
        idc_obs::set_anomaly_log(path)
            .map_err(|e| format!("cannot open anomaly log {}: {e}", path.display()))?;
    }
    if args.tenants > 0 {
        return run_multi(&args);
    }

    let mut stepper = build_stepper(&args)?;
    let metrics = Arc::new(MetricsRegistry::new());
    stepper.attach_metrics(Arc::clone(&metrics));

    let server = match &args.listen {
        Some(addr) => {
            let s = MetricsServer::start(addr, Arc::clone(&metrics)).map_err(|e| e.to_string())?;
            eprintln!("idc-daemon: metrics on http://{}/metrics", s.addr());
            Some(s)
        }
        None => None,
    };

    let mut clock = WallClock::new(stepper.scenario().ts_hours(), args.speedup);
    let mut interrupted = false;
    while !stepper.is_finished() {
        if SHUTDOWN.load(Ordering::SeqCst) {
            interrupted = true;
            break;
        }
        clock.wait_for_step(stepper.step());
        stepper.step_once().map_err(|e| e.to_string())?;
        if let Some(path) = &args.snapshot {
            let k = stepper.step();
            if args.snapshot_interval > 0 && k.is_multiple_of(args.snapshot_interval) {
                write_snapshot(&stepper, path, &metrics)?;
            }
        }
    }

    // Final checkpoint: on clean completion *and* on SIGTERM/SIGINT, so a
    // restart with --resume continues (or confirms completion) either way.
    if let Some(path) = &args.snapshot {
        write_snapshot(&stepper, path, &metrics)?;
        eprintln!("idc-daemon: checkpoint written to {}", path.display());
    }
    if let Some(server) = server {
        server.shutdown();
    }
    println!("{}", summary_json(&stepper, interrupted));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("idc-daemon: error: {msg}");
            ExitCode::FAILURE
        }
    }
}
