//! Scenario registry: stable string keys for the canned scenarios, so a
//! snapshot can identify its scenario without serializing the whole fleet,
//! and the daemon can select one from the command line.

use idc_core::scenario::{self, PricingSpec, Scenario};
use idc_market::fault::{FaultyTracePricing, PriceFault};
use idc_market::rtp::TracePricing;

/// The registry's keys, in presentation order.
pub const SCENARIO_KEYS: [&str; 10] = [
    "smoothing",
    "smoothing_table_ii",
    "peak_shaving",
    "smoothing_faulty_price",
    "noisy_day",
    "diurnal_day",
    "mmpp_hour",
    "storage_peak_shaving",
    "demand_charge",
    "storage_plus_shifting",
];

/// The smoothing scenario with market-*value* faults layered under the
/// runtime's transport faults: Michigan's feed spikes 3× just after the
/// 7H flip and Wisconsin's drops out (hold-last-value) across it. Runs
/// with transport-level [`crate::feed::FeedFaults`] on top exercise both
/// failure layers at once.
fn smoothing_faulty_price_scenario() -> Scenario {
    let pricing = FaultyTracePricing::new(
        TracePricing::new(idc_core::config::paper_price_traces()),
        vec![
            PriceFault::spike(0, 7.05, 0.1, 3.0),
            PriceFault::dropout(2, 6.97, 0.1),
        ],
    )
    .expect("faults are in range for the paper traces");
    scenario::smoothing_scenario()
        .with_pricing(PricingSpec::FaultyTrace(pricing))
        .expect("region count unchanged")
        .with_name("power-demand-smoothing, faulty market feed")
}

/// Parses a parametric `scaled_<n>x<c>` key into `(idcs, portals)`.
/// Dimensions are capped at 64 each so a typo cannot request a fleet
/// that exhausts memory.
fn parse_scaled_key(key: &str) -> Option<(usize, usize)> {
    let body = key.strip_prefix("scaled_")?;
    let (n, c) = body.split_once('x')?;
    let n: usize = n.parse().ok()?;
    let c: usize = c.parse().ok()?;
    if n == 0 || c == 0 || n > 64 || c > 64 {
        return None;
    }
    Some((n, c))
}

/// Builds the canned scenario named `key`, with the workload-noise seed
/// overridden to `seed` (a no-op for noise-free scenarios beyond recording
/// the seed) and optionally truncated/extended to `steps` sampling
/// periods. Besides the fixed [`SCENARIO_KEYS`], parametric
/// `scaled_<n>x<c>` keys (e.g. `scaled_5x4`) build an `n`-IDC,
/// `c`-portal fleet via [`scenario::scaled_fleet_scenario`]. Returns
/// `None` for an unknown key.
pub fn scenario_by_key(key: &str, seed: u64, steps: Option<usize>) -> Option<Scenario> {
    let base = match key {
        "smoothing" => scenario::smoothing_scenario(),
        "smoothing_table_ii" => scenario::smoothing_scenario_table_ii(),
        "peak_shaving" => scenario::peak_shaving_scenario(),
        "smoothing_faulty_price" => smoothing_faulty_price_scenario(),
        "noisy_day" => scenario::noisy_day_scenario(seed),
        "diurnal_day" => scenario::diurnal_day_scenario(seed),
        "mmpp_hour" => scenario::mmpp_hour_scenario(seed),
        "storage_peak_shaving" => scenario::storage_peak_shaving_scenario(),
        "demand_charge" => scenario::demand_charge_scenario(seed),
        "storage_plus_shifting" => scenario::storage_plus_shifting_scenario(seed),
        _ => {
            let (n, c) = parse_scaled_key(key)?;
            scenario::scaled_fleet_scenario(n, c, seed)
        }
    };
    let noise = base.workload_noise_std();
    let seeded = base.with_workload_noise(noise, seed);
    Some(match steps {
        Some(n) => seeded.with_num_steps(n),
        None => seeded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_resolves() {
        for key in SCENARIO_KEYS {
            let s = scenario_by_key(key, 2012, None).unwrap();
            assert!(s.num_steps() >= 1, "{key}");
            assert_eq!(s.seed(), 2012, "{key}");
        }
        assert!(scenario_by_key("nope", 2012, None).is_none());
    }

    #[test]
    fn scaled_keys_parse_and_build_matching_fleets() {
        let s = scenario_by_key("scaled_5x4", 7, Some(12)).unwrap();
        assert_eq!(s.fleet().num_idcs(), 5);
        assert_eq!(s.fleet().num_portals(), 4);
        assert_eq!(s.num_steps(), 12);
        assert_eq!(s.seed(), 7);
        for bad in [
            "scaled_0x4",
            "scaled_5x0",
            "scaled_65x2",
            "scaled_5",
            "scaled_x",
            "scaled_ax2",
        ] {
            assert!(scenario_by_key(bad, 7, None).is_none(), "{bad}");
        }
    }

    #[test]
    fn steps_override_truncates() {
        let s = scenario_by_key("noisy_day", 7, Some(10)).unwrap();
        assert_eq!(s.num_steps(), 10);
        assert_eq!(s.seed(), 7);
    }

    #[test]
    fn faulty_price_scenario_perturbs_the_market_layer() {
        let clean = scenario_by_key("smoothing", 2012, None).unwrap();
        let faulty = scenario_by_key("smoothing_faulty_price", 2012, None).unwrap();
        let zeros = [0.0; 3];
        // Inside the spike window Michigan's price is 3× the clean one...
        let clean_p = clean.pricing().prices(7.1, &zeros);
        let faulty_p = faulty.pricing().prices(7.1, &zeros);
        assert!((faulty_p[0] - 3.0 * clean_p[0]).abs() < 1e-12);
        // ...and during the dropout Wisconsin holds its pre-window value.
        let held = faulty.pricing().prices(7.0, &zeros)[2];
        let pre = clean.pricing().prices(6.97, &zeros)[2];
        assert_eq!(held, pre);
    }

    #[test]
    fn default_seed_matches_canned_scenario() {
        // Rebuilding with the canned default seed must reproduce the canned
        // scenario exactly — the restore path depends on it.
        let canned = scenario::noisy_day_scenario(2012);
        let rebuilt = scenario_by_key("noisy_day", 2012, None).unwrap();
        assert_eq!(canned.num_steps(), rebuilt.num_steps());
        assert_eq!(canned.seed(), rebuilt.seed());
        assert_eq!(canned.workload_noise_std(), rebuilt.workload_noise_std());
    }
}
