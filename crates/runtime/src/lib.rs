//! `idc-runtime`: the online two-time-scale control daemon.
//!
//! Everything below the batch simulator in this workspace answers "what
//! would the controller have done over that window?". This crate answers
//! the operational question instead: it runs the *same* controller as a
//! long-lived process fed by streaming inputs, with the failure modes a
//! real deployment has — late and lost feed samples, process restarts —
//! and the observability one needs (a Prometheus/JSON metrics endpoint).
//!
//! The pieces:
//!
//! * [`feed`] — trace-backed [`idc_core::feed`] adapters with a
//!   deterministic fault-injection schedule (drops, delays, reordering).
//! * [`stepper`] — the event-driven stepper: batch-bit-identical dynamics
//!   over held-last-value feed state, degrading to the policy fallback
//!   when the feeds go stale.
//! * [`snapshot`] — the checkpoint format, written atomically; restore
//!   resumes the run bit-for-bit.
//! * [`lineage`] — per-tenant checkpoint directories with keep-last-K
//!   compaction and startup GC of torn/corrupt files.
//! * [`tenant`] — the multi-tenant manager: N independent control loops
//!   scheduled over a thread-per-shard worker pool off a time-ordered
//!   ready queue, with admission control and per-tenant histograms.
//! * [`metrics`] / [`http`] — an embedded metrics registry served over
//!   hand-rolled HTTP/1.1.
//! * [`registry`] — stable string keys for the canned scenarios.
//!
//! Deliberately std-only: threads, `std::sync::mpsc`-style signalling via
//! atomics, and `std::net` — no async runtime.

#![warn(missing_docs)]

pub mod error;
pub mod feed;
pub mod http;
pub mod lineage;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod stepper;
pub mod tenant;

pub use error::Error;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
