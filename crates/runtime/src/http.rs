//! A minimal HTTP/1.1 responder for the metrics endpoint, hand-rolled on
//! [`std::net::TcpListener`] (the environment vendors no HTTP crates).
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition format
//! * `GET /metrics.json` — the same registry as JSON
//! * `GET /healthz` — `ok` once the server is up
//! * `GET /debug/trace` — the flight recorder as Chrome trace-event JSON
//!   (open in Perfetto or `chrome://tracing`; empty unless the daemon ran
//!   with `--trace-capacity`)
//! * `GET /tenants` — per-tenant status JSON array, when the server was
//!   started with [`MetricsServer::start_with_status`] (404 otherwise)
//! * `GET /tenants/<id>` — one tenant's status object (step count, last
//!   checkpoint step, shed counters); 404 for an unknown id
//!
//! Everything else is a 404. Connections are served one at a time from a
//! single background thread (the scrape rate of a control daemon is a few
//! requests per minute); requests are read until the header terminator and
//! the connection is closed after each response.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::MetricsRegistry;
use crate::Result;

/// Renders tenant status JSON on demand: called with `""` for the board
/// listing and with a tenant id for the detail route; `None` means the
/// id is unknown (served as a 404).
pub type StatusRenderer = dyn Fn(&str) -> Option<String> + Send + Sync;

/// A running metrics endpoint. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) detaches the serving thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `listen` (use port 0 for an ephemeral port) and starts serving
    /// `registry` on a background thread.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Io`] when the address cannot be bound.
    pub fn start(listen: &str, registry: Arc<MetricsRegistry>) -> Result<Self> {
        Self::serve(listen, registry, None)
    }

    /// Like [`start`](Self::start), plus `/tenants` and `/tenants/<id>`
    /// routes whose bodies are produced by `status` on every request: it
    /// is called with `""` for the board listing and with the tenant id
    /// for the detail route, and returns `None` for an unknown id (a 404).
    /// The multi-tenant daemon passes the status board's JSON renderers.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Io`] when the address cannot be bound.
    pub fn start_with_status(
        listen: &str,
        registry: Arc<MetricsRegistry>,
        status: Arc<StatusRenderer>,
    ) -> Result<Self> {
        Self::serve(listen, registry, Some(status))
    }

    fn serve(
        listen: &str,
        registry: Arc<MetricsRegistry>,
        status: Option<Arc<StatusRenderer>>,
    ) -> Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // A slow or dead scraper must not wedge the daemon.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = serve_one(stream, &registry, status.as_deref());
                }
            }
        });
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on its next connection;
        // poke it with one.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Reads one request head and writes one response.
fn serve_one(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    status: Option<&StatusRenderer>,
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 16 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            registry.render_prometheus(),
        ),
        "/metrics.json" => ("200 OK", "application/json", registry.render_json()),
        "/debug/trace" => ("200 OK", "application/json", idc_obs::export_global_trace()),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        p if p == "/tenants" || p.starts_with("/tenants/") => {
            let id = p.strip_prefix("/tenants/").unwrap_or("");
            match status.and_then(|render| render(id)) {
                Some(body) => ("200 OK", "application/json", body),
                None if status.is_none() => (
                    "404 Not Found",
                    "text/plain",
                    "no tenant manager\n".to_string(),
                ),
                None => (
                    "404 Not Found",
                    "text/plain",
                    "no such tenant\n".to_string(),
                ),
            }
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.inc_counter("idc_steps_total", 42);
        registry.set_gauge("idc_accumulated_cost_dollars", 3.5);
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("idc_steps_total 42"), "{body}");

        let (status, body) = get(addr, "/metrics.json");
        assert!(status.contains("200"));
        assert!(body.contains("\"idc_steps_total\":42"), "{body}");

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"));
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/debug/trace");
        assert!(status.contains("200"), "{status}");
        // No global recorder installed in tests: a valid empty trace.
        assert!(body.contains("\"traceEvents\":["), "{body}");

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        // No status callback wired: /tenants is a 404.
        let (status, _) = get(addr, "/tenants");
        assert!(status.contains("404"), "{status}");

        server.shutdown();
    }

    #[test]
    fn serves_tenant_status_when_wired() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = MetricsServer::start_with_status(
            "127.0.0.1:0",
            registry,
            Arc::new(|id: &str| match id {
                "" => Some("[{\"id\":\"t-000\"}]".to_string()),
                "t-000" => Some("{\"id\":\"t-000\"}".to_string()),
                _ => None,
            }),
        )
        .unwrap();
        let (status, body) = get(server.addr(), "/tenants");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "[{\"id\":\"t-000\"}]");

        let (status, body) = get(server.addr(), "/tenants/t-000");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "{\"id\":\"t-000\"}");

        let (status, body) = get(server.addr(), "/tenants/t-999");
        assert!(status.contains("404"), "{status}");
        assert_eq!(body, "no such tenant\n");
        server.shutdown();
    }
}
