//! Embedded metrics registry: counters, gauges and histograms rendered in
//! Prometheus text format and JSON.
//!
//! Hand-rolled and std-only by design (the build environment vendors no
//! metrics crates). Thread-safe behind a single mutex — the write rates
//! here are one control step per sampling period, not a hot path. Metric
//! keys may carry a Prometheus label suffix directly in the name (e.g.
//! `idc_power_mw{idc="Michigan"}`); the renderer emits one `# TYPE` line
//! per base name.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Cumulative histogram with static bucket bounds.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the bucket containing the target rank — the same estimator
    /// Prometheus' `histogram_quantile` uses. Returns `None` when the
    /// histogram is empty or `q` is out of range.
    ///
    /// The lowest bucket interpolates from 0 to its bound; a rank landing
    /// in the overflow bucket is clamped to the highest finite bound (there
    /// is no upper edge to interpolate toward).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || self.bounds.is_empty() {
            return None;
        }
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cumulative;
            cumulative += c;
            if (cumulative as f64) >= rank {
                if i == self.bounds.len() {
                    // Overflow bucket: no finite upper edge.
                    return Some(self.bounds[self.bounds.len() - 1]);
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                if c == 0 {
                    return Some(upper);
                }
                let frac = (rank - prev as f64) / c as f64;
                return Some(lower + (upper - lower) * frac.clamp(0.0, 1.0));
            }
        }
        Some(self.bounds[self.bounds.len() - 1])
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// `# HELP` text per metric *base* name (labels stripped).
    help: BTreeMap<String, String>,
}

/// The runtime's metrics registry. Cheap to share: wrap in an
/// `Arc<MetricsRegistry>` and hand clones to the stepper and the HTTP
/// responder.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// The base name of a possibly-labelled metric key.
fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `key`, creating it at zero first.
    pub fn inc_counter(&self, key: &str, v: u64) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        *inner.counters.entry(key.to_string()).or_insert(0) += v;
    }

    /// Sets the counter `key` to an absolute cumulative value (for
    /// counters whose source is itself cumulative, e.g. solver totals).
    pub fn set_counter(&self, key: &str, v: u64) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        inner.counters.insert(key.to_string(), v);
    }

    /// Sets the gauge `key`.
    pub fn set_gauge(&self, key: &str, v: f64) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        inner.gauges.insert(key.to_string(), v);
    }

    /// Registers `# HELP` text for the metric base name `base` (pass the
    /// name without labels), rendered ahead of the `# TYPE` line.
    pub fn describe(&self, base: &str, help: &str) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        inner.help.insert(base.to_string(), help.to_string());
    }

    /// Records `v` into the histogram `key`, creating it with `bounds` on
    /// first use (later calls ignore `bounds`).
    pub fn observe(&self, key: &str, bounds: &[f64], v: f64) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        inner
            .histograms
            .entry(key.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(v);
    }

    /// Current value of a counter, if present.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.inner
            .lock()
            .expect("metrics mutex")
            .counters
            .get(key)
            .copied()
    }

    /// Estimated `q`-quantile of the histogram `key`, if it exists and is
    /// non-empty (see [`Histogram::quantile`]).
    pub fn histogram_quantile(&self, key: &str, q: f64) -> Option<f64> {
        self.inner
            .lock()
            .expect("metrics mutex")
            .histograms
            .get(key)
            .and_then(|h| h.quantile(q))
    }

    /// `(count, sum)` of the histogram `key`, if present.
    pub fn histogram_stats(&self, key: &str) -> Option<(u64, f64)> {
        self.inner
            .lock()
            .expect("metrics mutex")
            .histograms
            .get(key)
            .map(|h| (h.count(), h.sum()))
    }

    /// Current value of a gauge, if present.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("metrics mutex")
            .gauges
            .get(key)
            .copied()
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics mutex");
        let mut out = String::new();
        let mut typed: Option<&str> = None;
        let type_line = |out: &mut String, key: &str, kind: &str, typed: &mut Option<&str>| {
            let base = base_name(key);
            if *typed != Some(base) {
                if let Some(help) = inner.help.get(base) {
                    out.push_str(&format!("# HELP {base} {help}\n"));
                }
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
        };
        for (key, v) in &inner.counters {
            type_line(&mut out, key, "counter", &mut typed);
            typed = Some(base_name(key));
            out.push_str(&format!("{key} {v}\n"));
        }
        typed = None;
        for (key, v) in &inner.gauges {
            type_line(&mut out, key, "gauge", &mut typed);
            typed = Some(base_name(key));
            out.push_str(&format!("{key} {v}\n"));
        }
        for (key, h) in &inner.histograms {
            if let Some(help) = inner.help.get(base_name(key)) {
                out.push_str(&format!("# HELP {key} {help}\n"));
            }
            out.push_str(&format!("# TYPE {key} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &bound) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                out.push_str(&format!("{key}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{key}_bucket{{le=\"+Inf\"}} {}\n{key}_sum {}\n{key}_count {}\n",
                h.count, h.sum, h.count
            ));
        }
        out
    }

    /// Renders the registry as a JSON object
    /// (`{"counters": .., "gauges": .., "histograms": ..}`).
    pub fn render_json(&self) -> String {
        use serde::Value;
        let inner = self.inner.lock().expect("metrics mutex");
        let counters = Value::Object(
            inner
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), Value::Number(v as f64)))
                .collect(),
        );
        let gauges = Value::Object(
            inner
                .gauges
                .iter()
                .map(|(k, &v)| (k.clone(), Value::Number(v)))
                .collect(),
        );
        let histograms = Value::Object(
            inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Value::Array(
                        h.bounds
                            .iter()
                            .zip(&h.counts)
                            .map(|(&b, &c)| {
                                Value::Array(vec![Value::Number(b), Value::Number(c as f64)])
                            })
                            .collect(),
                    );
                    let quant = |q: f64| match h.quantile(q) {
                        Some(v) => Value::Number(v),
                        None => Value::Null,
                    };
                    (
                        k.clone(),
                        Value::Object(vec![
                            ("sum".to_string(), Value::Number(h.sum)),
                            ("count".to_string(), Value::Number(h.count as f64)),
                            ("p50".to_string(), quant(0.5)),
                            ("p90".to_string(), quant(0.9)),
                            ("p99".to_string(), quant(0.99)),
                            ("buckets".to_string(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        let root = Value::Object(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
        ]);
        serde_json::to_string(&root).expect("metric values are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let m = MetricsRegistry::new();
        m.inc_counter("idc_steps_total", 1);
        m.inc_counter("idc_steps_total", 2);
        m.set_gauge("idc_accumulated_cost_dollars", 12.5);
        m.set_gauge("idc_power_mw{idc=\"Michigan\"}", 2.14);
        assert_eq!(m.counter("idc_steps_total"), Some(3));
        assert_eq!(m.gauge("idc_accumulated_cost_dollars"), Some(12.5));
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE idc_steps_total counter"));
        assert!(text.contains("idc_steps_total 3"));
        assert!(text.contains("# TYPE idc_power_mw gauge"));
        assert!(text.contains("idc_power_mw{idc=\"Michigan\"} 2.14"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = MetricsRegistry::new();
        let bounds = [0.001, 0.01, 0.1];
        for v in [0.0005, 0.005, 0.005, 0.05, 5.0] {
            m.observe("idc_step_duration_seconds", &bounds, v);
        }
        let text = m.render_prometheus();
        assert!(text.contains("idc_step_duration_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("idc_step_duration_seconds_bucket{le=\"0.01\"} 3"));
        assert!(text.contains("idc_step_duration_seconds_bucket{le=\"0.1\"} 4"));
        assert!(text.contains("idc_step_duration_seconds_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("idc_step_duration_seconds_count 5"));
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let m = MetricsRegistry::new();
        let bounds = [1.0, 2.0, 4.0];
        // 10 observations in (1, 2]: ranks spread linearly across the bucket.
        for _ in 0..10 {
            m.observe("h", &bounds, 1.5);
        }
        let inner = m.inner.lock().unwrap();
        let h = inner.histograms.get("h").unwrap();
        // p50 → rank 5 of 10 within (1, 2] → 1 + (5/10)·1 = 1.5.
        assert!((h.quantile(0.5).unwrap() - 1.5).abs() < 1e-12);
        // p90 → rank 9 of 10 → 1.9; p100 clamps to the bucket edge.
        assert!((h.quantile(0.9).unwrap() - 1.9).abs() < 1e-12);
        assert_eq!(h.quantile(1.0), Some(2.0));
        assert_eq!(h.quantile(1.5), None);
        drop(inner);

        // Overflow-bucket ranks clamp to the highest finite bound.
        let m2 = MetricsRegistry::new();
        m2.observe("h", &bounds, 100.0);
        let inner = m2.inner.lock().unwrap();
        assert_eq!(inner.histograms.get("h").unwrap().quantile(0.5), Some(4.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn help_lines_render_before_type() {
        let m = MetricsRegistry::new();
        m.describe("idc_steps_total", "Control steps completed.");
        m.describe("idc_power_mw", "Per-IDC electric power draw.");
        m.describe("idc_step_duration_seconds", "Wall-clock step duration.");
        m.inc_counter("idc_steps_total", 3);
        m.set_gauge("idc_power_mw{idc=\"Michigan\"}", 2.0);
        m.set_gauge("idc_power_mw{idc=\"Ohio\"}", 1.0);
        m.observe("idc_step_duration_seconds", &[0.1], 0.05);
        let text = m.render_prometheus();
        assert!(text.contains(
            "# HELP idc_steps_total Control steps completed.\n# TYPE idc_steps_total counter"
        ));
        assert!(text.contains(
            "# HELP idc_power_mw Per-IDC electric power draw.\n# TYPE idc_power_mw gauge"
        ));
        // One HELP line per base name even with several labelled series.
        assert_eq!(text.matches("# HELP idc_power_mw").count(), 1);
        assert!(text.contains("# HELP idc_step_duration_seconds Wall-clock step duration."));
    }

    #[test]
    fn json_histograms_carry_quantiles() {
        let m = MetricsRegistry::new();
        for _ in 0..10 {
            m.observe("h", &[1.0, 2.0], 1.5);
        }
        let v: serde::Value = serde_json::from_str(&m.render_json()).unwrap();
        let h = v.get("histograms").unwrap().get("h").unwrap();
        let serde::Value::Number(p50) = h.get("p50").unwrap() else {
            panic!("p50 missing")
        };
        assert!((p50 - 1.5).abs() < 1e-12);
        assert!(h.get("p90").is_some());
        assert!(h.get("p99").is_some());
    }

    #[test]
    fn json_rendering_is_parseable() {
        let m = MetricsRegistry::new();
        m.inc_counter("a_total", 7);
        m.set_gauge("b", 1.25);
        m.observe("h", &[1.0], 0.5);
        let json = m.render_json();
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let serde::Value::Object(fields) = v else {
            panic!("not an object")
        };
        let keys: Vec<_> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["counters", "gauges", "histograms"]);
    }
}
