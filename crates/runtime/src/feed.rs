//! Trace-backed feed adapters with deterministic fault injection.
//!
//! These implement [`idc_core::feed`]'s traits on top of a
//! [`Scenario`](idc_core::scenario::Scenario): the workload feed *publishes*
//! one sample per fast tick (drawing workload noise at publish time, in the
//! exact RNG order of the batch simulator), and the price feed publishes the
//! scenario pricing evaluated at the consumer's own last power draw. A
//! [`FeedFaults`] schedule then decides, per published sample, whether it is
//! delivered on time, `d` ticks late, or never — a deterministic pure
//! function of `(fault seed, tick)`, so a checkpointed run replays the same
//! fault pattern after restore.
//!
//! Price faults compose with `idc-market`'s tariff-level faults: a scenario
//! whose [`PricingSpec`](idc_core::scenario::PricingSpec) wraps
//! `idc_market::fault::FaultyTracePricing` corrupts the price *values*,
//! while [`FeedFaults`] corrupts their *delivery* — the two layers model
//! market-side and transport-side failures respectively.

use idc_core::feed::{Observation, PriceFeed, WorkloadFeed};
use idc_core::scenario::{PricingSpec, Scenario, WorkloadProfile};
use idc_timeseries::standard_normal;
use rand::{rngs::StdRng, RngCore, SeedableRng};

use crate::snapshot::{FeedCursorSnap, FeedFaultsSnap, OverloadSnap, PendingSnap};

/// An [`RngCore`] wrapper that counts `next_u64` draws, so a checkpoint can
/// record "how far into the stream we are" and a restore can fast-forward a
/// freshly seeded generator to the exact same point.
#[derive(Debug, Clone)]
pub struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R: RngCore> RngCore for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

impl CountingRng<StdRng> {
    /// A freshly seeded generator with zero draws consumed.
    pub fn seeded(seed: u64) -> Self {
        CountingRng {
            inner: StdRng::seed_from_u64(seed),
            draws: 0,
        }
    }

    /// A generator fast-forwarded to `draws` consumed words — the restore
    /// counterpart of [`Self::draws`].
    pub fn fast_forward(seed: u64, draws: u64) -> Self {
        let mut rng = Self::seeded(seed);
        for _ in 0..draws {
            rng.next_u64();
        }
        rng
    }

    /// Number of 64-bit words drawn so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fault-schedule seeds are clamped to 53 bits: they live inside JSON
/// checkpoints whose number space is f64, and a wider seed would not
/// survive the serialize→parse round trip bit-for-bit.
const SEED_MASK: u64 = (1 << 53) - 1;

/// SplitMix64 finalizer: a well-mixed pure function of the input word.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic per-tick delivery schedule: each published sample is
/// independently dropped with probability `drop_per_mille / 1000`, and
/// surviving samples are delayed by `0..=max_delay_ticks` ticks. Both
/// outcomes are pure functions of `(seed, tick)`, so the schedule is
/// reproducible across checkpoint/restore and across machines.
///
/// Delays produce genuine out-of-order delivery: tick 5 delayed by 3
/// arrives after tick 6 delivered on time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedFaults {
    seed: u64,
    drop_per_mille: u16,
    max_delay_ticks: u64,
}

impl FeedFaults {
    /// The fault-free schedule: every sample delivered at its own tick.
    pub fn none() -> Self {
        FeedFaults {
            seed: 0,
            drop_per_mille: 0,
            max_delay_ticks: 0,
        }
    }

    /// A schedule dropping each sample with probability `drop_prob`
    /// (clamped to `[0, 1]`) and delaying survivors by up to
    /// `max_delay_ticks`.
    pub fn new(seed: u64, drop_prob: f64, max_delay_ticks: u64) -> Self {
        FeedFaults {
            seed: seed & SEED_MASK,
            drop_per_mille: (drop_prob.clamp(0.0, 1.0) * 1000.0).round() as u16,
            max_delay_ticks,
        }
    }

    /// Whether this schedule can ever perturb a delivery.
    pub fn is_active(&self) -> bool {
        self.drop_per_mille > 0 || self.max_delay_ticks > 0
    }

    /// The delivery tick for the sample published at `tick`: `None` means
    /// dropped, `Some(d)` means it arrives at tick `d ≥ tick`.
    pub fn delivery(&self, tick: u64) -> Option<u64> {
        if !self.is_active() {
            return Some(tick);
        }
        let h = mix(self.seed ^ tick.wrapping_mul(SPLITMIX_GAMMA));
        if h % 1000 < u64::from(self.drop_per_mille) {
            return None;
        }
        Some(tick + (h >> 10) % (self.max_delay_ticks + 1))
    }

    /// Serializable form for checkpointing.
    pub fn state(&self) -> FeedFaultsSnap {
        FeedFaultsSnap {
            seed: self.seed,
            drop_per_mille: u64::from(self.drop_per_mille),
            max_delay_ticks: self.max_delay_ticks,
        }
    }

    /// Rebuilds a schedule from a [`state`](Self::state) export. Returns
    /// `None` when the drop rate is out of range.
    pub fn from_state(state: &FeedFaultsSnap) -> Option<Self> {
        if state.drop_per_mille > 1000 {
            return None;
        }
        Some(FeedFaults {
            seed: state.seed,
            drop_per_mille: state.drop_per_mille as u16,
            max_delay_ticks: state.max_delay_ticks,
        })
    }
}

/// A deterministic burst-arrival schedule modeling a tenant that floods
/// its host's feed ingest: on roughly `burst_per_mille / 1000` of ticks,
/// `burst_factor` duplicates of the tick's newest-stamped observation are
/// appended *after* the genuine arrivals. Like [`FeedFaults`], each tick's
/// outcome is a pure function of `(seed, tick)`, so the burst pattern is
/// identical across checkpoint/restore, across machines, and across solo
/// vs multi-tenant hosting of the same loop.
///
/// Because duplicates trail the genuine arrivals and carry an
/// already-seen stamp, a prefix-keeping [`idc_core::feed::BoundedIngest`]
/// sheds only duplicates whenever the genuine batch fits the bound — the
/// held values (and therefore the control trajectory) are unchanged while
/// the shed counters record the overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadFaults {
    seed: u64,
    burst_per_mille: u16,
    burst_factor: u16,
}

impl OverloadFaults {
    /// The quiet schedule: no tick ever bursts.
    pub fn none() -> Self {
        OverloadFaults {
            seed: 0,
            burst_per_mille: 0,
            burst_factor: 0,
        }
    }

    /// A schedule bursting each tick with probability
    /// `burst_per_mille / 1000` (clamped to 1000), appending
    /// `burst_factor` duplicates when it does.
    pub fn new(seed: u64, burst_per_mille: u16, burst_factor: u16) -> Self {
        OverloadFaults {
            seed: seed & SEED_MASK,
            burst_per_mille: burst_per_mille.min(1000),
            burst_factor,
        }
    }

    /// Whether any tick can burst.
    pub fn is_active(&self) -> bool {
        self.burst_per_mille > 0 && self.burst_factor > 0
    }

    /// Number of duplicate observations to append at `tick` (0 on quiet
    /// ticks). Deterministic in `(seed, tick)`.
    pub fn burst_at(&self, tick: u64) -> u16 {
        if !self.is_active() {
            return 0;
        }
        // Salt differently from FeedFaults so an overloaded faulty feed
        // does not burst exactly on its drop ticks.
        let h = mix(self.seed ^ tick.wrapping_mul(SPLITMIX_GAMMA) ^ 0x4F56_4552_4C4F_4144);
        if h % 1000 < u64::from(self.burst_per_mille) {
            self.burst_factor
        } else {
            0
        }
    }

    /// Appends the tick's duplicates to `batch`: copies of the
    /// newest-stamped observation already in it. An empty batch stays
    /// empty — bursts amplify arrivals, they cannot invent data.
    pub fn amplify(&self, tick: u64, batch: &mut Vec<Observation<Vec<f64>>>) {
        let dup = self.burst_at(tick);
        if dup == 0 {
            return;
        }
        let Some(newest) = batch.iter().max_by_key(|o| o.tick).cloned() else {
            return;
        };
        for _ in 0..dup {
            batch.push(newest.clone());
        }
    }

    /// Serializable form for checkpointing.
    pub fn state(&self) -> OverloadSnap {
        OverloadSnap {
            seed: self.seed,
            burst_per_mille: u64::from(self.burst_per_mille),
            burst_factor: u64::from(self.burst_factor),
        }
    }

    /// Rebuilds a schedule from a [`state`](Self::state) export. Returns
    /// `None` when a rate or factor is out of range.
    pub fn from_state(state: &OverloadSnap) -> Option<Self> {
        if state.burst_per_mille > 1000 || state.burst_factor > u64::from(u16::MAX) {
            return None;
        }
        Some(OverloadFaults {
            seed: state.seed,
            burst_per_mille: state.burst_per_mille as u16,
            burst_factor: state.burst_factor as u16,
        })
    }
}

/// One published-but-not-yet-delivered sample.
#[derive(Debug, Clone, PartialEq)]
struct Pending {
    deliver_tick: u64,
    obs: Observation<Vec<f64>>,
}

fn drain_due(pending: &mut Vec<Pending>, tick: u64) -> Vec<Observation<Vec<f64>>> {
    let mut out = Vec::new();
    pending.retain(|p| {
        if p.deliver_tick <= tick {
            out.push(p.obs.clone());
            false
        } else {
            true
        }
    });
    out
}

fn pending_state(pending: &[Pending]) -> Vec<PendingSnap> {
    pending
        .iter()
        .map(|p| PendingSnap {
            deliver_tick: p.deliver_tick,
            tick: p.obs.tick,
            value: p.obs.value.clone(),
        })
        .collect()
}

fn pending_from_state(snaps: &[PendingSnap]) -> Vec<Pending> {
    snaps
        .iter()
        .map(|s| Pending {
            deliver_tick: s.deliver_tick,
            obs: Observation {
                tick: s.tick,
                value: s.value.clone(),
            },
        })
        .collect()
}

/// The scenario-backed workload feed: publishes the same noisy offered
/// workload the batch simulator would conjure at each tick (identical RNG
/// stream), then routes the sample through a [`FeedFaults`] schedule.
#[derive(Debug, Clone)]
pub struct TraceWorkloadFeed {
    base: Vec<f64>,
    profile: WorkloadProfile,
    noise_std: f64,
    start_hour: f64,
    ts_hours: f64,
    seed: u64,
    rng: CountingRng<StdRng>,
    faults: FeedFaults,
    /// Next tick to publish (samples are generated in tick order whatever
    /// the delivery order, so the RNG stream matches the batch simulator).
    published: u64,
    pending: Vec<Pending>,
}

impl TraceWorkloadFeed {
    /// A feed replaying `scenario`'s workload process under `faults`.
    pub fn new(scenario: &Scenario, faults: FeedFaults) -> Self {
        TraceWorkloadFeed {
            base: scenario.fleet().offered_workloads(),
            profile: scenario.workload_profile().clone(),
            noise_std: scenario.workload_noise_std(),
            start_hour: scenario.start_hour(),
            ts_hours: scenario.ts_hours(),
            seed: scenario.seed(),
            rng: CountingRng::seeded(scenario.seed()),
            faults,
            published: 0,
            pending: Vec::new(),
        }
    }

    /// Generates the sample for tick `k` — the exact expression (and RNG
    /// consumption) of the batch simulator's per-step workload draw.
    fn generate(&mut self, k: u64) -> Vec<f64> {
        let hour = self.start_hour + k as f64 * self.ts_hours;
        let factor = self.profile.factor_at_step(k as usize, hour);
        let noise_std = self.noise_std;
        let rng = &mut self.rng;
        self.base
            .iter()
            .map(|&l| {
                let mut v = l * factor;
                if noise_std > 0.0 {
                    v *= 1.0 + noise_std * standard_normal(rng);
                }
                v.max(0.0)
            })
            .collect()
    }

    /// Serializable cursor for checkpointing.
    pub fn state(&self) -> FeedCursorSnap {
        FeedCursorSnap {
            published: self.published,
            rng_draws: self.rng.draws(),
            pending: pending_state(&self.pending),
        }
    }

    /// Rebuilds the feed at a checkpointed cursor: re-seeds from the
    /// scenario, fast-forwards the RNG and restores the in-flight backlog.
    pub fn from_state(scenario: &Scenario, faults: FeedFaults, state: &FeedCursorSnap) -> Self {
        let mut feed = Self::new(scenario, faults);
        feed.rng = CountingRng::fast_forward(feed.seed, state.rng_draws);
        feed.published = state.published;
        feed.pending = pending_from_state(&state.pending);
        feed
    }
}

impl WorkloadFeed for TraceWorkloadFeed {
    fn poll(&mut self, tick: u64) -> Vec<Observation<Vec<f64>>> {
        while self.published <= tick {
            let k = self.published;
            let value = self.generate(k);
            if let Some(deliver_tick) = self.faults.delivery(k) {
                self.pending.push(Pending {
                    deliver_tick: deliver_tick.max(k),
                    obs: Observation { tick: k, value },
                });
            }
            self.published += 1;
        }
        drain_due(&mut self.pending, tick)
    }
}

/// The scenario-backed price feed: publishes
/// `pricing.prices(hour, last_power)` once per tick — closing the
/// demand-responsive feedback loop exactly like the batch simulator — then
/// routes the sample through a [`FeedFaults`] schedule. Late samples carry
/// the value computed at their *publish* tick, which is precisely what a
/// delayed market signal looks like to the consumer.
#[derive(Debug, Clone)]
pub struct TracePriceFeed {
    pricing: PricingSpec,
    faults: FeedFaults,
    published: u64,
    pending: Vec<Pending>,
}

impl TracePriceFeed {
    /// A feed replaying `scenario`'s pricing under `faults`.
    pub fn new(scenario: &Scenario, faults: FeedFaults) -> Self {
        TracePriceFeed {
            pricing: scenario.pricing().clone(),
            faults,
            published: 0,
            pending: Vec::new(),
        }
    }

    /// Serializable cursor for checkpointing.
    pub fn state(&self) -> FeedCursorSnap {
        FeedCursorSnap {
            published: self.published,
            rng_draws: 0,
            pending: pending_state(&self.pending),
        }
    }

    /// Rebuilds the feed at a checkpointed cursor.
    pub fn from_state(scenario: &Scenario, faults: FeedFaults, state: &FeedCursorSnap) -> Self {
        let mut feed = Self::new(scenario, faults);
        feed.published = state.published;
        feed.pending = pending_from_state(&state.pending);
        feed
    }
}

impl PriceFeed for TracePriceFeed {
    fn poll(&mut self, tick: u64, hour: f64, last_power_mw: &[f64]) -> Vec<Observation<Vec<f64>>> {
        // Prices depend on the consumer's *current* power draw, so only the
        // present tick can be published (there is no future to pre-draw).
        if self.published == tick {
            let value = self.pricing.prices(hour, last_power_mw);
            if let Some(deliver_tick) = self.faults.delivery(tick) {
                self.pending.push(Pending {
                    deliver_tick: deliver_tick.max(tick),
                    obs: Observation { tick, value },
                });
            }
            self.published += 1;
        }
        drain_due(&mut self.pending, tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idc_core::scenario::smoothing_scenario;

    #[test]
    fn counting_rng_matches_plain_stdrng_and_fast_forwards() {
        let mut plain = StdRng::seed_from_u64(99);
        let mut counted = CountingRng::seeded(99);
        for _ in 0..40 {
            assert_eq!(plain.next_u64(), counted.next_u64());
        }
        assert_eq!(counted.draws(), 40);
        let mut ff = CountingRng::fast_forward(99, 40);
        for _ in 0..10 {
            assert_eq!(counted.next_u64(), ff.next_u64());
        }
    }

    #[test]
    fn faultless_schedule_delivers_everything_on_time() {
        let f = FeedFaults::none();
        assert!(!f.is_active());
        for t in 0..100 {
            assert_eq!(f.delivery(t), Some(t));
        }
    }

    #[test]
    fn fault_schedule_is_deterministic_and_plausible() {
        let f = FeedFaults::new(7, 0.2, 3);
        let a: Vec<_> = (0..500).map(|t| f.delivery(t)).collect();
        let b: Vec<_> = (0..500).map(|t| f.delivery(t)).collect();
        assert_eq!(a, b);
        let drops = a.iter().filter(|d| d.is_none()).count();
        assert!((50..350).contains(&drops), "drops {drops}");
        assert!(a
            .iter()
            .enumerate()
            .all(|(t, d)| d.is_none_or(|d| d >= t as u64 && d <= t as u64 + 3)));
        // Round-trips through its serializable form.
        assert_eq!(FeedFaults::from_state(&f.state()), Some(f));
        let mut bad = f.state();
        bad.drop_per_mille = 2000;
        assert_eq!(FeedFaults::from_state(&bad), None);
    }

    #[test]
    fn faultless_workload_feed_delivers_one_obs_per_tick() {
        let scenario = smoothing_scenario();
        let mut feed = TraceWorkloadFeed::new(&scenario, FeedFaults::none());
        for t in 0..10 {
            let obs = feed.poll(t);
            assert_eq!(obs.len(), 1);
            assert_eq!(obs[0].tick, t);
            assert_eq!(obs[0].value, scenario.fleet().offered_workloads());
        }
    }

    #[test]
    fn workload_feed_cursor_roundtrip_continues_identically() {
        let scenario = idc_core::scenario::noisy_day_scenario(2012).with_num_steps(40);
        let faults = FeedFaults::new(3, 0.1, 2);
        let mut live = TraceWorkloadFeed::new(&scenario, faults);
        for t in 0..20 {
            live.poll(t);
        }
        let snap = live.state();
        let mut resumed = TraceWorkloadFeed::from_state(&scenario, faults, &snap);
        for t in 20..40 {
            let a = live.poll(t);
            let b = resumed.poll(t);
            assert_eq!(a, b, "tick {t}");
        }
    }

    #[test]
    fn overload_bursts_are_deterministic_and_trail_genuine_arrivals() {
        let ov = OverloadFaults::new(42, 300, 6);
        assert!(ov.is_active());
        let a: Vec<u16> = (0..500).map(|t| ov.burst_at(t)).collect();
        assert_eq!(a, (0..500).map(|t| ov.burst_at(t)).collect::<Vec<_>>());
        let bursts = a.iter().filter(|&&d| d > 0).count();
        assert!((80..300).contains(&bursts), "bursts {bursts}");
        assert!(a.iter().all(|&d| d == 0 || d == 6));

        // Duplicates copy the newest stamp and are appended at the tail.
        let burst_tick = (0..500).find(|&t| ov.burst_at(t) > 0).unwrap();
        let mut batch = vec![
            Observation {
                tick: 3,
                value: vec![1.0],
            },
            Observation {
                tick: 7,
                value: vec![2.0],
            },
        ];
        ov.amplify(burst_tick, &mut batch);
        assert_eq!(batch.len(), 8);
        assert_eq!(batch[0].tick, 3);
        assert!(batch[2..].iter().all(|o| o.tick == 7 && o.value == [2.0]));

        // An empty tick stays empty: bursts cannot invent observations.
        let mut empty: Vec<Observation<Vec<f64>>> = Vec::new();
        ov.amplify(burst_tick, &mut empty);
        assert!(empty.is_empty());

        // Round-trips through its serializable form.
        assert_eq!(OverloadFaults::from_state(&ov.state()), Some(ov));
        let mut bad = ov.state();
        bad.burst_per_mille = 1500;
        assert_eq!(OverloadFaults::from_state(&bad), None);

        // The quiet schedule never bursts.
        assert!((0..500).all(|t| OverloadFaults::none().burst_at(t) == 0));
    }

    #[test]
    fn dropped_price_ticks_are_never_delivered() {
        let scenario = smoothing_scenario();
        // Drop everything: the consumer must hold its last value forever.
        let mut feed = TracePriceFeed::new(&scenario, FeedFaults::new(1, 1.0, 0));
        for t in 0..10 {
            assert!(feed.poll(t, 7.0, &[0.0; 3]).is_empty());
        }
    }

    #[test]
    fn delayed_samples_arrive_late_with_original_stamp() {
        let scenario = smoothing_scenario();
        // Delay-only schedule: nothing dropped, delays in 0..=2.
        let faults = FeedFaults::new(11, 0.0, 2);
        let mut feed = TraceWorkloadFeed::new(&scenario, faults);
        let mut seen = Vec::new();
        for t in 0..25 {
            for obs in feed.poll(t) {
                assert!(obs.tick <= t);
                assert!(t - obs.tick <= 2);
                seen.push(obs.tick);
            }
        }
        // Everything published by tick 22 must have arrived by tick 24.
        let mut arrived = seen.clone();
        arrived.sort_unstable();
        for t in 0..=22u64 {
            assert!(arrived.contains(&t), "tick {t} lost by delay-only faults");
        }
    }
}
