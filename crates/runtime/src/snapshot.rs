//! Checkpoint format and atomic persistence for the online runtime.
//!
//! A [`RuntimeSnapshot`] captures *everything* the stepper needs to resume
//! a run bit-for-bit: the scenario identity (registry key + seed + length,
//! never the bulky scenario itself), the step cursor, feed cursors (RNG
//! draw counts and in-flight backlogs), the held last-value observations,
//! the plant accounting (accumulated cost, shed volume, trajectories) and
//! the full [`MpcPolicySnapshot`](idc_core::snapshot::MpcPolicySnapshot).
//!
//! Snapshots are written atomically: serialize to `<path>.tmp`, fsync,
//! rename over `<path>`. A reader therefore sees either the previous
//! complete snapshot or the new complete snapshot, never a torn one; a
//! truncated or corrupt file is rejected with a clean [`Error`], never a
//! panic.
//!
//! NOTE: this module must not import a one-generic `Result` alias — the
//! serde derives expand `Result<Self, ::serde::Error>`.

use std::fs;
use std::path::Path;

use idc_core::snapshot::MpcPolicySnapshot;
use serde::{Deserialize, Serialize};

use crate::error::Error;

/// Format version; bump on any incompatible change.
/// * v2 — multi-tenant daemon: solver-backend label, bounded-ingest
///   admission state (bound + per-feed shed counters) and the
///   burst-overload schedule joined the stepper's resume state.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Serializable [`crate::feed::OverloadFaults`] parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadSnap {
    /// Burst-schedule seed.
    pub seed: u64,
    /// Burst probability in per-mille (0..=1000).
    pub burst_per_mille: u64,
    /// Duplicates appended on a burst tick.
    pub burst_factor: u64,
}

/// Serializable [`crate::feed::FeedFaults`] parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedFaultsSnap {
    /// Schedule seed.
    pub seed: u64,
    /// Drop probability in per-mille (0..=1000).
    pub drop_per_mille: u64,
    /// Maximum delivery delay in ticks.
    pub max_delay_ticks: u64,
}

/// One in-flight (published, not yet delivered) feed sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingSnap {
    /// Tick at which the sample will arrive.
    pub deliver_tick: u64,
    /// Tick the sample describes.
    pub tick: u64,
    /// The sample payload.
    pub value: Vec<f64>,
}

/// A feed's resume cursor: how much has been published, how much of the
/// RNG stream is consumed, and what is still in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedCursorSnap {
    /// Next tick to publish.
    pub published: u64,
    /// 64-bit words drawn from the feed's RNG so far (0 for RNG-free feeds).
    pub rng_draws: u64,
    /// Published samples not yet delivered.
    pub pending: Vec<PendingSnap>,
}

/// A held last-value observation: the newest value the consumer has seen
/// and the tick it describes (`None` = nothing ever arrived, the value is
/// the scenario's initialization default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeldSnap {
    /// The held payload.
    pub value: Vec<f64>,
    /// Stamp of the newest arrived observation, if any.
    pub updated_tick: Option<u64>,
}

/// The complete resume state of a [`crate::stepper::Stepper`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Scenario registry key (see [`crate::registry::scenario_by_key`]).
    pub scenario_key: String,
    /// Workload-noise seed the scenario was built with.
    pub seed: u64,
    /// Total steps of the run.
    pub num_steps: u64,
    /// Next step to execute (steps `0..step` are already accounted).
    pub step: u64,
    /// Staleness ceiling in ticks before degrading to the fallback plan.
    pub max_staleness_ticks: u64,
    /// Solver-backend label (`None` = the paper-tuned default backend).
    /// See [`crate::stepper::parse_backend`] for the accepted labels.
    pub backend: Option<String>,
    /// Per-tick, per-feed admission bound (0 = unbounded).
    pub ingest_bound: u64,
    /// Observations shed by the workload feed's admission control.
    pub workload_shed: u64,
    /// Observations shed by the price feed's admission control.
    pub price_shed: u64,
    /// Burst-overload schedule applied to both feeds.
    pub overload: OverloadSnap,
    /// Workload-feed fault schedule.
    pub workload_faults: FeedFaultsSnap,
    /// Price-feed fault schedule.
    pub price_faults: FeedFaultsSnap,
    /// Workload-feed cursor.
    pub workload_feed: FeedCursorSnap,
    /// Price-feed cursor.
    pub price_feed: FeedCursorSnap,
    /// Held offered-workload observation.
    pub held_offered: HeldSnap,
    /// Held price observation.
    pub held_prices: HeldSnap,
    /// Previous step's per-IDC power (the pricing feedback input).
    pub last_power_mw: Vec<f64>,
    /// Accumulated electricity cost ($).
    pub accumulated_cost: f64,
    /// Count of (IDC, step) pairs that met the latency bound.
    pub latency_ok: u64,
    /// Total offered request volume seen.
    pub offered_volume: f64,
    /// Request volume shed by admission control.
    pub shed_volume: f64,
    /// Steps served by the degraded fallback path.
    pub degraded_steps: u64,
    /// `[idc][step]` power trajectory so far (MW).
    pub power_mw: Vec<Vec<f64>>,
    /// `[idc][step]` server trajectory so far.
    pub servers: Vec<Vec<u64>>,
    /// Cumulative cost after each step so far.
    pub cost_cumulative: Vec<f64>,
    /// The controller's complete evolving state.
    pub policy: MpcPolicySnapshot,
}

impl RuntimeSnapshot {
    /// Structural sanity checks that need no scenario: trajectory lengths
    /// consistent with the step cursor, version supported.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] describing the first inconsistency.
    pub fn validate(&self) -> std::result::Result<(), Error> {
        if self.version != SNAPSHOT_VERSION {
            return Err(Error::Snapshot(format!(
                "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                self.version
            )));
        }
        if self.step > self.num_steps {
            return Err(Error::Snapshot(format!(
                "step cursor {} past the end of the {}-step run",
                self.step, self.num_steps
            )));
        }
        let k = self.step as usize;
        if self.cost_cumulative.len() != k {
            return Err(Error::Snapshot(format!(
                "cost trajectory has {} entries for step cursor {k}",
                self.cost_cumulative.len()
            )));
        }
        if self.power_mw.len() != self.servers.len()
            || self.power_mw.len() != self.last_power_mw.len()
        {
            return Err(Error::Snapshot("per-IDC trajectory counts disagree".into()));
        }
        for series in self.power_mw.iter() {
            if series.len() != k {
                return Err(Error::Snapshot(format!(
                    "power trajectory has {} entries for step cursor {k}",
                    series.len()
                )));
            }
        }
        for series in self.servers.iter() {
            if series.len() != k {
                return Err(Error::Snapshot(format!(
                    "server trajectory has {} entries for step cursor {k}",
                    series.len()
                )));
            }
        }
        let all_finite = self
            .last_power_mw
            .iter()
            .chain(self.held_offered.value.iter())
            .chain(self.held_prices.value.iter())
            .chain(self.cost_cumulative.iter())
            .chain(self.power_mw.iter().flatten())
            .all(|v| v.is_finite());
        if !all_finite || !self.accumulated_cost.is_finite() {
            return Err(Error::Snapshot("non-finite value in snapshot".into()));
        }
        Ok(())
    }

    /// Serializes to a JSON string (bit-exact for every finite `f64`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] if the state contains a non-finite
    /// number, which the JSON encoding rejects.
    pub fn to_json(&self) -> std::result::Result<String, Error> {
        serde_json::to_string(self).map_err(|e| Error::Snapshot(e.to_string()))
    }

    /// Parses and validates a snapshot from JSON text. Truncated or
    /// corrupt input yields a clean error, never a panic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on malformed JSON, a shape mismatch or
    /// a failed [`validate`](Self::validate).
    pub fn from_json(text: &str) -> std::result::Result<Self, Error> {
        let snapshot: RuntimeSnapshot =
            serde_json::from_str(text).map_err(|e| Error::Snapshot(e.to_string()))?;
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Writes the snapshot atomically: serialize to `<path>.tmp`, fsync,
    /// then rename over `path`. Readers never observe a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on serialization failure and
    /// [`Error::Io`] on filesystem failure.
    pub fn write_atomic(&self, path: &Path) -> std::result::Result<(), Error> {
        let json = self.to_json()?;
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write as _;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a snapshot from disk.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the file cannot be read and
    /// [`Error::Snapshot`] when its contents are corrupt.
    pub fn read(path: &Path) -> std::result::Result<Self, Error> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}
