//! Integration tests for checkpoint/restore and the metrics endpoint.
//!
//! The property tests run the 25-step smoothing scenario (cheap enough for
//! proptest's case counts) and assert that snapshotting at an *arbitrary*
//! step — through a full JSON round trip — restores a stepper whose
//! remaining trajectory is bit-for-bit the uninterrupted one, under
//! arbitrary fault schedules. Corrupt and truncated snapshots must be
//! rejected with a clean error, never a panic.

use std::sync::Arc;

use idc_runtime::feed::FeedFaults;
use idc_runtime::http::MetricsServer;
use idc_runtime::metrics::MetricsRegistry;
use idc_runtime::snapshot::RuntimeSnapshot;
use idc_runtime::stepper::{Stepper, StepperConfig};
use idc_testkit::equivalence::bitwise_f64;
use proptest::prelude::*;

fn config(drop_pm: u64, delay: u64, staleness: u64) -> StepperConfig {
    StepperConfig {
        workload_faults: FeedFaults::new(11, drop_pm as f64 / 1000.0, delay),
        price_faults: FeedFaults::new(13, drop_pm as f64 / 1000.0, delay),
        max_staleness_ticks: staleness,
        ..StepperConfig::fault_free("smoothing", 2012)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot at step k → JSON → restore reproduces the uninterrupted
    /// trajectory bit for bit, whatever the kill point and fault mix.
    #[test]
    fn restore_at_any_step_is_bit_identical(
        kill_step in 0u64..25,
        drop_pm in 0u64..400,
        delay in 0u64..3,
        staleness in 0u64..4,
    ) {
        let cfg = config(drop_pm, delay, staleness);
        let mut live = Stepper::new(cfg.clone()).unwrap();
        for _ in 0..kill_step {
            live.step_once().unwrap();
        }
        let json = live.snapshot().to_json().unwrap();
        let snapshot = RuntimeSnapshot::from_json(&json).unwrap();
        let mut resumed = Stepper::restore(&snapshot).unwrap();
        while live.step_once().unwrap() {
            prop_assert!(resumed.step_once().unwrap());
        }
        prop_assert!(!resumed.step_once().unwrap());
        prop_assert_eq!(
            live.accumulated_cost().to_bits(),
            resumed.accumulated_cost().to_bits()
        );
        for j in 0..3 {
            prop_assert_eq!(
                bitwise_f64("power", live.power_mw(j), resumed.power_mw(j)),
                None
            );
            prop_assert_eq!(live.servers(j), resumed.servers(j));
        }
        prop_assert_eq!(live.degraded_steps(), resumed.degraded_steps());
        prop_assert_eq!(live.snapshot(), resumed.snapshot());
    }

    /// Any prefix truncation of a valid snapshot is rejected cleanly (an
    /// `Err`, never a panic), and so is arbitrary corruption of one byte.
    #[test]
    fn truncated_or_corrupt_snapshots_are_rejected(
        steps in 1u64..10,
        cut in 0usize..4096,
        flip in 0usize..4096,
    ) {
        let mut stepper = Stepper::new(config(100, 1, 2)).unwrap();
        for _ in 0..steps {
            stepper.step_once().unwrap();
        }
        let json = stepper.snapshot().to_json().unwrap();

        let cut = cut.min(json.len().saturating_sub(1));
        prop_assert!(RuntimeSnapshot::from_json(&json[..cut]).is_err());

        let mut bytes = json.clone().into_bytes();
        let flip = flip.min(bytes.len() - 1);
        bytes[flip] = if bytes[flip] == b'!' { b'?' } else { b'!' };
        if let Ok(text) = String::from_utf8(bytes) {
            // Corruption may still parse (e.g. inside the scenario key
            // string); then restore must catch it instead.
            if let Ok(snap) = RuntimeSnapshot::from_json(&text) {
                if snap != stepper.snapshot() {
                    prop_assert!(Stepper::restore(&snap).is_err());
                }
            }
        }
    }
}

/// A stepper wired to a registry and served over HTTP exposes the expected
/// keys with values consistent with the stepper's own accounting.
#[test]
fn metrics_endpoint_reflects_stepper_state() {
    let mut stepper = Stepper::new(StepperConfig::fault_free("smoothing", 2012)).unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    stepper.attach_metrics(Arc::clone(&registry));
    for _ in 0..5 {
        stepper.step_once().unwrap();
    }
    let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let addr = server.addr();

    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    server.shutdown();

    assert!(response.contains("idc_steps_total 5"), "{response}");
    for key in [
        "idc_degraded_steps_total",
        "idc_fallback_steps_total",
        "idc_solver_warm_solves_total",
        "idc_solver_cold_solves_total",
        "idc_accumulated_cost_dollars",
        "idc_power_mw{idc=\"Michigan\"}",
        "idc_step_duration_seconds_count 5",
        "idc_policy_phase_ns_total{phase=\"solve\"}",
    ] {
        assert!(response.contains(key), "missing {key} in:\n{response}");
    }
    let cost_line = response
        .lines()
        .find(|l| l.starts_with("idc_accumulated_cost_dollars"))
        .unwrap();
    let cost: f64 = cost_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(cost, stepper.accumulated_cost());
}
