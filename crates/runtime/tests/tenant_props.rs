//! Property tests for the multi-tenant manager and checkpoint lineages.
//!
//! The scheduling properties pin the tentpole invariant of the tenant
//! manager: every tenant's trajectory is a pure function of its own
//! `StepperConfig`, so the final snapshots are byte-identical whatever
//! the worker-thread count and identical to running each loop solo. The
//! lineage properties pin compaction safety: whatever the retention
//! depth and whichever files a kill tears, the newest restorable
//! snapshot survives and restores byte-identically.

use std::fs;
use std::path::PathBuf;

use idc_runtime::lineage::CheckpointLineage;
use idc_runtime::stepper::{Stepper, StepperConfig};
use idc_runtime::tenant::{derive_tenants, ManagerConfig, TenantManager};
use proptest::prelude::*;

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "idc-tenant-props-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs every spec solo to completion and returns the final snapshots.
fn solo_snapshots(
    specs: &[idc_runtime::tenant::TenantSpec],
) -> Vec<idc_runtime::snapshot::RuntimeSnapshot> {
    specs
        .iter()
        .map(|spec| {
            let mut stepper = Stepper::new(spec.config.clone()).unwrap();
            while stepper.step_once().unwrap() {}
            stepper.snapshot()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Hosting N heterogeneous tenants on 1, 2 or 4 worker threads — and
    /// running each of their configs solo — always produces the same
    /// final snapshot per tenant, byte for byte. Scheduling order,
    /// slicing and thread interleaving must never leak into any
    /// tenant's trajectory.
    #[test]
    fn final_snapshots_ignore_worker_count(
        n in 2usize..6,
        base_seed in 0u64..1_000_000,
        steps in 16usize..40,
        slice_steps in 1u64..12,
    ) {
        let specs = derive_tenants(n, base_seed, Some(steps));
        let solo = solo_snapshots(&specs);
        for workers in [1usize, 2, 4] {
            let mut manager = TenantManager::new(ManagerConfig {
                workers,
                slice_steps,
                ..ManagerConfig::default()
            });
            for spec in &specs {
                manager.add_tenant(spec.clone()).unwrap();
            }
            let report = manager.run().unwrap();
            prop_assert_eq!(report.tenants.len(), n);
            for (spec, solo_snap) in specs.iter().zip(&solo) {
                let hosted = manager.snapshot(&spec.id).unwrap();
                prop_assert_eq!(
                    &hosted,
                    solo_snap,
                    "tenant {} diverged on {} workers",
                    &spec.id,
                    workers
                );
            }
        }
    }

    /// Compaction never deletes the newest restorable snapshot: after
    /// recording an arbitrary run under an arbitrary retention depth and
    /// tearing an arbitrary suffix of the retained files (simulating a
    /// kill mid-write plus disk corruption), `latest_restorable` returns
    /// the newest intact snapshot, byte-identical to the in-memory one,
    /// and GCs the torn stragglers.
    #[test]
    fn compaction_and_gc_never_lose_the_newest_restorable(
        case in 0u64..u64::MAX,
        records in 2usize..9,
        keep_last in 1usize..5,
        torn in 0usize..3,
    ) {
        let dir = tmpdir("lineage", case);
        let lineage = CheckpointLineage::open(&dir, keep_last).unwrap();
        let mut stepper = Stepper::new(StepperConfig::fault_free("smoothing", 2012)).unwrap();
        let mut snaps = vec![stepper.snapshot()];
        lineage.record(&snaps[0]).unwrap();
        for _ in 1..records {
            stepper.step_once().unwrap();
            let snap = stepper.snapshot();
            lineage.record(&snap).unwrap();
            snaps.push(snap);
        }
        // Retention: exactly the newest keep_last steps remain on disk.
        let expect_kept: Vec<u64> =
            (records.saturating_sub(keep_last)..records).map(|s| s as u64).collect();
        prop_assert_eq!(lineage.steps().unwrap(), expect_kept);

        // Tear the newest `torn` retained files plus a `.tmp` partial.
        let kept = lineage.steps().unwrap();
        let torn = torn.min(kept.len() - 1);
        for &step in kept.iter().rev().take(torn) {
            let path = lineage.path_for(step);
            let text = fs::read_to_string(&path).unwrap();
            fs::write(&path, &text[..text.len() / 3]).unwrap();
        }
        fs::write(dir.join("ckpt-99999999999999999999.tmp"), b"{\"torn\":").unwrap();

        // Reopening GCs the partial; the newest intact snapshot restores
        // byte-identically to the in-memory stepper at that step.
        let reopened = CheckpointLineage::open(&dir, keep_last).unwrap();
        prop_assert!(!dir.join("ckpt-99999999999999999999.tmp").exists());
        let survivor = records - 1 - torn;
        let (step, snap) = reopened.latest_restorable().unwrap().unwrap();
        prop_assert_eq!(step, survivor as u64);
        prop_assert_eq!(&snap, &snaps[survivor]);
        let mut resumed = Stepper::restore(&snap).unwrap();
        let mut reference = Stepper::restore(&snaps[survivor]).unwrap();
        for _ in 0..3 {
            prop_assert_eq!(resumed.step_once().unwrap(), reference.step_once().unwrap());
        }
        prop_assert_eq!(resumed.snapshot(), reference.snapshot());
        // The torn files were GC'd by the failed restore attempts.
        prop_assert_eq!(
            reopened.steps().unwrap().last().copied(),
            Some(survivor as u64)
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// An overload-faulted tenant hosted next to quiet tenants sheds bursts
/// (backpressure engages) while every quiet tenant's snapshot stays
/// byte-identical to its solo run — noisy neighbours are isolated.
#[test]
fn overload_tenant_sheds_without_touching_neighbours() {
    // derive_tenants gives every fifth tenant an overload schedule, so a
    // population of 5 has exactly one (t-004).
    let specs = derive_tenants(5, 2012, Some(96));
    assert!(specs[4].config.overload.is_active());
    let solo = solo_snapshots(&specs);

    let mut manager = TenantManager::new(ManagerConfig::default());
    for spec in &specs {
        manager.add_tenant(spec.clone()).unwrap();
    }
    let report = manager.run().unwrap();
    for (spec, solo_snap) in specs.iter().zip(&solo) {
        assert_eq!(
            &manager.snapshot(&spec.id).unwrap(),
            solo_snap,
            "tenant {} diverged from solo",
            spec.id
        );
    }
    let overloaded = report
        .tenants
        .iter()
        .find(|t| t.id == "t-004")
        .expect("t-004 hosted");
    assert!(
        overloaded.shed_workload > 0,
        "overload tenant never shed: {overloaded:?}"
    );
    for quiet in report.tenants.iter().filter(|t| t.id != "t-004") {
        assert_eq!(quiet.shed_workload, 0, "{quiet:?}");
    }
}
