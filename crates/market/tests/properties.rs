//! Property-based tests for the market substrate.

use idc_market::region::Region;
use idc_market::rtp::{DemandResponsivePricing, PricingModel, TracePricing};
use idc_market::stochastic::{BidStackModel, OrnsteinUhlenbeck};
use idc_market::tariff::{PeakTariff, PowerBudget};
use idc_market::trace::PriceTrace;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hour lookup always lands on the step value of the containing hour
    /// and wraps cleanly.
    #[test]
    fn price_trace_lookup_is_a_step_function(
        hourly in prop::collection::vec(-50.0f64..150.0, 24),
        hour in -48.0f64..72.0,
    ) {
        let trace = PriceTrace::new(Region::new(0, "t"), hourly.clone()).unwrap();
        let h = hour.rem_euclid(24.0) as usize;
        prop_assert_eq!(trace.price_at_hour(hour), hourly[h.min(23)]);
        prop_assert_eq!(trace.price_at_hour(hour), trace.price_at_hour(hour + 24.0));
    }

    /// Budget clamp is idempotent, dominated by both arguments, and
    /// violations vanish exactly after clamping.
    #[test]
    fn budget_clamp_properties(
        budgets in prop::collection::vec(0.0f64..20.0, 1..5),
        power_scale in prop::collection::vec(0.0f64..3.0, 1..5),
    ) {
        let n = budgets.len().min(power_scale.len());
        let budgets = PowerBudget::new(budgets[..n].to_vec()).unwrap();
        let power: Vec<f64> = (0..n).map(|j| budgets.budget_mw(j) * power_scale[j]).collect();
        let clamped = budgets.clamp(&power);
        for j in 0..n {
            prop_assert!(clamped[j] <= budgets.budget_mw(j));
            prop_assert!(clamped[j] <= power[j]);
        }
        prop_assert_eq!(budgets.clamp(&clamped.clone()), clamped.clone());
        prop_assert!(budgets.violations(&clamped).iter().all(|&v| v == 0.0));
    }

    /// Peak-tariff cost is continuous at the budget boundary and weakly
    /// increasing in the drawn power.
    #[test]
    fn tariff_cost_is_monotone_and_continuous(
        budget in 1.0f64..20.0,
        price in 1.0f64..100.0,
        mult in 1.0f64..5.0,
    ) {
        let t = PeakTariff::new(mult).unwrap();
        let below = t.interval_cost(budget - 1e-9, budget, price, 1.0);
        let at = t.interval_cost(budget, budget, price, 1.0);
        prop_assert!((below - at).abs() < 1e-5);
        let mut prev = 0.0;
        for k in 0..20 {
            let p = budget * 0.15 * k as f64;
            let c = t.interval_cost(p, budget, price, 1.0);
            prop_assert!(c >= prev - 1e-9);
            prev = c;
        }
    }

    /// Demand-responsive prices are affine in the consumer's own load with
    /// slope γ.
    #[test]
    fn demand_response_is_affine(gamma in 0.0f64..10.0, load in 0.0f64..50.0) {
        let base = TracePricing::new(idc_market::trace::miso_oct3_2011());
        let dr = DemandResponsivePricing::new(base.clone(), gamma).unwrap();
        for region in 0..3 {
            let p0 = dr.price(region, 12.0, 0.0);
            let p = dr.price(region, 12.0, load);
            prop_assert!((p - p0 - gamma * load).abs() < 1e-9);
            prop_assert_eq!(p0, base.price(region, 12.0, 0.0));
        }
    }

    /// OU paths with zero volatility decay monotonically toward the target.
    #[test]
    fn ou_noiseless_decay_is_monotone(
        kappa in 0.1f64..5.0,
        x0 in -10.0f64..10.0,
        theta in -5.0f64..5.0,
    ) {
        let ou = OrnsteinUhlenbeck::new(kappa, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut x = x0;
        let mut dist = (x - theta).abs();
        for _ in 0..20 {
            x = ou.step(&mut rng, x, theta, 0.3);
            let d = (x - theta).abs();
            prop_assert!(d <= dist + 1e-12);
            dist = d;
        }
    }

    /// Bid-stack prices are positive and increase with injected demand.
    #[test]
    fn bid_stack_prices_respond_to_demand(region in 0usize..3, extra in 0.0f64..1.0) {
        let m = BidStackModel::paper_like(region);
        prop_assert!(m.price() > 0.0);
        prop_assert!(m.price_with_extra_demand(extra) >= m.price());
    }
}
