//! Round-trip tests for the market-layer serde derives.

use idc_market::region::{Region, RegionId};
use idc_market::tariff::{PeakTariff, PowerBudget};
use idc_market::trace::{miso_oct3_2011, PriceTrace};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn region_roundtrips() {
    let r = Region::new(2, "Wisconsin");
    assert_eq!(roundtrip(&r), r);
    assert_eq!(roundtrip(&RegionId(7)), RegionId(7));
}

#[test]
fn price_trace_roundtrips_with_exact_values() {
    for trace in miso_oct3_2011() {
        let back: PriceTrace = roundtrip(&trace);
        assert_eq!(back, trace);
        assert_eq!(back.price_at_hour(7.0), trace.price_at_hour(7.0));
    }
}

#[test]
fn budget_and_tariff_roundtrip() {
    let b = PowerBudget::paper_section_v_c();
    assert_eq!(roundtrip(&b), b);
    let t = PeakTariff::new(3.0).unwrap();
    assert_eq!(roundtrip(&t), t);
}

#[test]
fn negative_prices_survive_the_wire() {
    // Wisconsin's Fig. 2 dip must not be lost to any serialization quirk.
    let wi = miso_oct3_2011().remove(2);
    let back: PriceTrace = roundtrip(&wi);
    let min = back.hourly().iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(min < 0.0);
}
