//! Forward contracts: pricing the value of *predictable* demand.
//!
//! The paper's introduction argues that volatile power demand prevents IDC
//! operators from "qualify\[ing\] for price rebates by signing up
//! advance-contracts with the power retailer or hedg\[ing\] against
//! uncertainty". This module makes that argument computable: a
//! [`ForwardContract`] buys a *baseline* MW block at a discounted strike
//! price; consumption above the baseline pays a deviation premium over
//! spot, consumption below still pays for the contracted block
//! (take-or-pay). Smooth demand sized near its mean wins; spiky demand
//! pays both ways.

use serde::{Deserialize, Serialize};

/// A take-or-pay forward contract for a baseline power block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForwardContract {
    /// Contracted baseline power (MW).
    baseline_mw: f64,
    /// Discount on the reference spot price for the contracted block
    /// (0–1; e.g. 0.1 = strike is 90 % of reference spot).
    discount: f64,
    /// Premium multiplier on spot for consumption above baseline (≥ 1).
    deviation_multiplier: f64,
}

impl ForwardContract {
    /// Creates a contract. Returns `None` for a negative baseline,
    /// a discount outside `[0, 1)` or a multiplier below 1.
    pub fn new(baseline_mw: f64, discount: f64, deviation_multiplier: f64) -> Option<Self> {
        if !(baseline_mw >= 0.0)
            || !(0.0..1.0).contains(&discount)
            || !(deviation_multiplier >= 1.0)
            || !baseline_mw.is_finite()
            || !deviation_multiplier.is_finite()
        {
            return None;
        }
        Some(ForwardContract {
            baseline_mw,
            discount,
            deviation_multiplier,
        })
    }

    /// Contracted baseline (MW).
    pub fn baseline_mw(&self) -> f64 {
        self.baseline_mw
    }

    /// Strike discount fraction.
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Above-baseline premium multiplier.
    pub fn deviation_multiplier(&self) -> f64 {
        self.deviation_multiplier
    }

    /// Cost ($) of drawing `power_mw` for `hours` at spot
    /// `price_per_mwh`:
    ///
    /// * the full baseline is charged at `(1 − discount)·spot`
    ///   (take-or-pay — unused baseline is not refunded);
    /// * power above baseline is charged at `multiplier·spot`.
    ///
    /// Negative spot prices flow through unchanged (the consumer is paid),
    /// which matches how negative LMPs settle.
    pub fn interval_cost(&self, power_mw: f64, price_per_mwh: f64, hours: f64) -> f64 {
        let excess = (power_mw.max(0.0) - self.baseline_mw).max(0.0);
        (self.baseline_mw * (1.0 - self.discount) + excess * self.deviation_multiplier)
            * price_per_mwh
            * hours
    }

    /// Cost ($) of a whole power trajectory sampled every `step_hours`
    /// against a matching spot-price series.
    ///
    /// # Panics
    ///
    /// Panics if the series lengths differ.
    pub fn trajectory_cost(&self, power_mw: &[f64], prices: &[f64], step_hours: f64) -> f64 {
        assert_eq!(power_mw.len(), prices.len(), "one price per power sample");
        power_mw
            .iter()
            .zip(prices)
            .map(|(&p, &pr)| self.interval_cost(p, pr, step_hours))
            .sum()
    }

    /// Sizes a contract at the mean of a demand trajectory — the natural
    /// choice for an operator who can predict (because they control) their
    /// demand. Returns `None` for an empty trajectory or invalid terms.
    pub fn sized_at_mean(
        power_mw: &[f64],
        discount: f64,
        deviation_multiplier: f64,
    ) -> Option<Self> {
        if power_mw.is_empty() {
            return None;
        }
        let mean = power_mw.iter().sum::<f64>() / power_mw.len() as f64;
        ForwardContract::new(mean, discount, deviation_multiplier)
    }
}

/// Plain spot cost of a trajectory (the no-contract comparator).
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn spot_trajectory_cost(power_mw: &[f64], prices: &[f64], step_hours: f64) -> f64 {
    assert_eq!(power_mw.len(), prices.len(), "one price per power sample");
    power_mw
        .iter()
        .zip(prices)
        .map(|(&p, &pr)| p * pr * step_hours)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(ForwardContract::new(-1.0, 0.1, 2.0).is_none());
        assert!(ForwardContract::new(1.0, 1.0, 2.0).is_none());
        assert!(ForwardContract::new(1.0, -0.1, 2.0).is_none());
        assert!(ForwardContract::new(1.0, 0.1, 0.5).is_none());
        assert!(ForwardContract::new(1.0, 0.1, 2.0).is_some());
    }

    #[test]
    fn exact_baseline_consumption_gets_the_full_discount() {
        let c = ForwardContract::new(10.0, 0.2, 2.0).unwrap();
        // 10 MW for 1 h at 50 $/MWh: 10 · 0.8 · 50 = 400.
        assert_eq!(c.interval_cost(10.0, 50.0, 1.0), 400.0);
        // vs spot 500 — the rebate.
        assert!(c.interval_cost(10.0, 50.0, 1.0) < 500.0);
    }

    #[test]
    fn take_or_pay_charges_unused_baseline() {
        let c = ForwardContract::new(10.0, 0.2, 2.0).unwrap();
        // Only 4 MW drawn, but the full 10 MW block is paid.
        assert_eq!(c.interval_cost(4.0, 50.0, 1.0), 400.0);
    }

    #[test]
    fn excess_pays_the_premium() {
        let c = ForwardContract::new(10.0, 0.2, 2.0).unwrap();
        // 12 MW: 400 (block) + 2 · 2 · 50 = 600.
        assert_eq!(c.interval_cost(12.0, 50.0, 1.0), 600.0);
    }

    #[test]
    fn smooth_demand_beats_spot_spiky_does_not() {
        // Same mean (10 MW), same prices.
        let smooth = vec![10.0; 8];
        let spiky = vec![2.0, 18.0, 2.0, 18.0, 2.0, 18.0, 2.0, 18.0];
        let prices = vec![50.0; 8];
        let contract_smooth = ForwardContract::sized_at_mean(&smooth, 0.15, 2.0).unwrap();
        let contract_spiky = ForwardContract::sized_at_mean(&spiky, 0.15, 2.0).unwrap();
        let spot = spot_trajectory_cost(&smooth, &prices, 1.0);
        assert_eq!(spot, spot_trajectory_cost(&spiky, &prices, 1.0));

        let smooth_cost = contract_smooth.trajectory_cost(&smooth, &prices, 1.0);
        let spiky_cost = contract_spiky.trajectory_cost(&spiky, &prices, 1.0);
        // The smooth consumer banks the rebate; the spiky one pays extra.
        assert!(smooth_cost < spot, "{smooth_cost} !< {spot}");
        assert!(spiky_cost > spot, "{spiky_cost} !> {spot}");
    }

    #[test]
    fn sizing_at_mean_matches_hand_computation() {
        let c = ForwardContract::sized_at_mean(&[1.0, 3.0], 0.1, 1.5).unwrap();
        assert_eq!(c.baseline_mw(), 2.0);
        assert!(ForwardContract::sized_at_mean(&[], 0.1, 1.5).is_none());
    }

    #[test]
    fn negative_prices_flow_through() {
        let c = ForwardContract::new(5.0, 0.1, 2.0).unwrap();
        assert!(c.interval_cost(5.0, -20.0, 1.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "one price per power sample")]
    fn trajectory_lengths_are_validated() {
        let c = ForwardContract::new(1.0, 0.1, 2.0).unwrap();
        c.trajectory_cost(&[1.0], &[1.0, 2.0], 1.0);
    }
}
